//! Signature checkpoints: crash-resumable analysis state.
//!
//! A checkpoint captures everything an [`IncrementalAnalyzer`] has
//! accumulated — per-worker counters, communication matrices, loop
//! registries, and the full signature memory of each worker's detector —
//! plus the replay cursor (event offset) and a configuration echo. Restoring
//! it and streaming the remaining events produces a report **byte-identical**
//! to an uninterrupted run: worker routing is deterministic, every
//! accumulated quantity is commutative, and the signature dumps are exact
//! (sparse but lossless for both the asymmetric Bloom/slot state and the
//! perfect baseline's maps).
//!
//! ## File format (`checkpoint.lccp`, version 1)
//!
//! ```text
//! "LCCP" | version u32 | crc32 u32 | body
//! ```
//!
//! All integers little-endian. The CRC covers the whole body; a mismatch
//! (torn write, bit rot) is detected at load and the caller falls back to a
//! from-scratch run — never a silently wrong resume. The body is a
//! configuration echo (detector kind, jobs, thread count, signature
//! geometry, loop capacity), the cursor (`frames`, `events`), then one
//! [`WorkerState`] per worker.
//!
//! ## Atomicity
//!
//! [`Checkpoint::write_atomic`] (and the reusable
//! [`write_atomic_blob`]) write to `<path>.tmp`, flush, `fsync`, then
//! `rename(2)` — so a crash at any instruction leaves either the previous
//! checkpoint or the new one, never a torn file the loader would trust.
//! Every byte passes through the [`FaultSite::CheckpointWrite`] seam when an
//! injector is armed, which is how the crash-recovery fault matrix drives
//! `panic` / `io_error` / `short_write` / `bit_flip` through this exact
//! code path.

use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use lc_faults::{FaultInjector, FaultSite, FaultyWriter};
use lc_sigmem::{SignatureConfig, SlotRouter, WriterMap};
use lc_trace::{crc32, LoopId};

use crate::ingest::{DetectorKind, IncrementalAnalyzer, Workers};
use crate::matrix::DenseMatrix;
use crate::profiler::{AsymmetricProfiler, PerfectProfiler, ProfilerConfig};
use crate::raw::{AsymmetricDetector, PerfectDetector};
use crate::shards::AccumConfig;

/// Checkpoint file magic: "LCCP".
const CP_MAGIC: [u8; 4] = *b"LCCP";
/// Current checkpoint format version.
const CP_VERSION: u32 = 1;
/// Fixed prelude: magic, version, crc.
const CP_HEADER_BYTES: usize = 4 + 4 + 4;

/// Well-known checkpoint file name inside a `--checkpoint` directory.
pub fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join("checkpoint.lccp")
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// One worker's exact detector state, sparsely serialized.
#[derive(Clone, Debug, PartialEq)]
pub enum DetectorState {
    /// Asymmetric signature memory: allocated, non-empty Bloom filters
    /// (slot → filter words) and occupied write-signature slots
    /// (slot → raw `tid+1` value).
    Asymmetric {
        /// Non-empty read-signature filters, slot-ascending.
        filters: Vec<(u64, Vec<u64>)>,
        /// Occupied write-signature slots, slot-ascending.
        write_slots: Vec<(u64, u32)>,
    },
    /// Perfect baseline: exact reader bitmasks and last-writer records.
    Perfect {
        /// `(addr, reader bitmask)`, addr-ascending.
        readers: Vec<(u64, u128)>,
        /// `(addr, last writer tid)`, addr-ascending.
        writers: Vec<(u64, u32)>,
    },
}

/// One worker's accumulated analysis state.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerState {
    /// Accesses observed by this worker.
    pub accesses: u64,
    /// Dependences recorded by this worker.
    pub dependencies: u64,
    /// This worker's share of the global communication matrix.
    pub global: DenseMatrix,
    /// Per-loop matrices, loop-id-ascending.
    pub loops: Vec<(LoopId, DenseMatrix)>,
    /// Exact signature memory.
    pub detector: DetectorState,
}

/// A complete, restorable snapshot of an [`IncrementalAnalyzer`].
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Which detector the analyzer runs.
    pub kind: DetectorKind,
    /// Worker count (the routing fan-out — must match on resume).
    pub jobs: usize,
    /// Signature geometry (asymmetric only).
    pub sig: Option<SignatureConfig>,
    /// Application thread count (matrix dimension).
    pub threads: usize,
    /// Whether per-loop attribution was enabled.
    pub track_nested: bool,
    /// Loop-registry capacity the run was provisioned with.
    pub loop_capacity: usize,
    /// Frames analyzed before this checkpoint.
    pub frames: u64,
    /// Replay cursor: events analyzed before this checkpoint. Resume
    /// continues from exactly this event offset.
    pub events: u64,
    /// Per-worker state, worker-index order.
    pub workers: Vec<WorkerState>,
}

impl Checkpoint {
    /// Capture the analyzer's full state. Must be called between frames
    /// (no concurrent `on_frame`); flushes each worker's pending deltas so
    /// the matrices are exact.
    pub fn capture(analyzer: &IncrementalAnalyzer) -> Self {
        let workers = match &analyzer.workers {
            Workers::Asymmetric { profilers, .. } => profilers
                .iter()
                .map(|p| {
                    let r = p.report();
                    worker_state(
                        r,
                        DetectorState::Asymmetric {
                            filters: p.detector().read_sig().snapshot_filters(),
                            write_slots: p.detector().write_sig().snapshot_slots(),
                        },
                    )
                })
                .collect(),
            Workers::Perfect { profilers } => profilers
                .iter()
                .map(|p| {
                    let r = p.report();
                    worker_state(
                        r,
                        DetectorState::Perfect {
                            readers: p.detector().read_sig().snapshot(),
                            writers: p.detector().write_sig().snapshot(),
                        },
                    )
                })
                .collect(),
        };
        Self {
            kind: analyzer.kind(),
            jobs: analyzer.jobs,
            sig: analyzer.sig,
            threads: analyzer.prof.threads,
            track_nested: analyzer.prof.track_nested,
            loop_capacity: analyzer.accum.loop_capacity,
            frames: analyzer.frames,
            events: analyzer.events,
            workers,
        }
    }

    /// Rebuild a live analyzer from this snapshot. `accum` supplies the
    /// runtime tuning (flush epochs, delta slots); the semantically
    /// significant `loop_capacity` is taken from the checkpoint so resumed
    /// attribution can never overflow differently than the original run.
    pub fn restore(&self, mut accum: AccumConfig) -> io::Result<IncrementalAnalyzer> {
        accum.loop_capacity = self.loop_capacity;
        let prof = ProfilerConfig {
            threads: self.threads,
            track_nested: self.track_nested,
            phase_window: None,
        };
        if self.workers.len() != self.jobs {
            return Err(bad_data(format!(
                "checkpoint has {} worker states for {} jobs",
                self.workers.len(),
                self.jobs
            )));
        }
        let workers = match self.kind {
            DetectorKind::Asymmetric => {
                let sig = self.sig.ok_or_else(|| {
                    bad_data("asymmetric checkpoint lacks signature config".into())
                })?;
                let mut profilers = Vec::with_capacity(self.jobs);
                for w in &self.workers {
                    let DetectorState::Asymmetric {
                        filters,
                        write_slots,
                    } = &w.detector
                    else {
                        return Err(bad_data("mixed detector states in checkpoint".into()));
                    };
                    let det = AsymmetricDetector::asymmetric(sig);
                    for (slot, words) in filters {
                        det.read_sig().restore_filter(*slot as usize, words);
                    }
                    for (slot, raw) in write_slots {
                        det.write_sig().restore_slot_raw(*slot as usize, *raw);
                    }
                    let p = AsymmetricProfiler::from_detector_with(det, prof, accum);
                    p.restore_accumulators(w.accesses, w.dependencies, &w.global, &w.loops);
                    profilers.push(p);
                }
                Workers::Asymmetric {
                    router: SlotRouter::new(sig.n_slots),
                    profilers,
                }
            }
            DetectorKind::Perfect => {
                let mut profilers = Vec::with_capacity(self.jobs);
                for w in &self.workers {
                    let DetectorState::Perfect { readers, writers } = &w.detector else {
                        return Err(bad_data("mixed detector states in checkpoint".into()));
                    };
                    let det = PerfectDetector::perfect();
                    for (addr, mask) in readers {
                        det.read_sig().restore_mask(*addr, *mask);
                    }
                    for (addr, tid) in writers {
                        det.write_sig().record(*addr, *tid);
                    }
                    let p = PerfectProfiler::from_detector_with(det, prof, accum);
                    p.restore_accumulators(w.accesses, w.dependencies, &w.global, &w.loops);
                    profilers.push(p);
                }
                Workers::Perfect { profilers }
            }
        };
        Ok(IncrementalAnalyzer {
            workers,
            jobs: self.jobs,
            scratch: (0..self.jobs).map(|_| Vec::new()).collect(),
            frames: self.frames,
            events: self.events,
            sig: self.sig,
            prof,
            accum,
            fused: Some(crate::fused::FusedConfig::default()),
            fused_scratch: Vec::new(),
        })
    }

    /// Serialize to the versioned, CRC-framed byte form.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        b.push(match self.kind {
            DetectorKind::Asymmetric => 0u8,
            DetectorKind::Perfect => 1,
        });
        push_u32(&mut b, self.jobs as u32);
        push_u32(&mut b, self.threads as u32);
        b.push(self.track_nested as u8);
        match &self.sig {
            Some(sig) => {
                b.push(1);
                push_u64(&mut b, sig.n_slots as u64);
                push_u32(&mut b, sig.threads as u32);
                push_u64(&mut b, sig.fp_rate.to_bits());
            }
            None => b.push(0),
        }
        push_u64(&mut b, self.loop_capacity as u64);
        push_u64(&mut b, self.frames);
        push_u64(&mut b, self.events);
        for w in &self.workers {
            push_u64(&mut b, w.accesses);
            push_u64(&mut b, w.dependencies);
            push_matrix(&mut b, &w.global);
            push_u32(&mut b, w.loops.len() as u32);
            for (id, m) in &w.loops {
                push_u32(&mut b, id.0);
                push_matrix(&mut b, m);
            }
            match &w.detector {
                DetectorState::Asymmetric {
                    filters,
                    write_slots,
                } => {
                    let words_per = filters.first().map_or(0, |(_, w)| w.len());
                    push_u32(&mut b, words_per as u32);
                    push_u64(&mut b, filters.len() as u64);
                    for (slot, words) in filters {
                        push_u64(&mut b, *slot);
                        for w in words {
                            push_u64(&mut b, *w);
                        }
                    }
                    push_u64(&mut b, write_slots.len() as u64);
                    for (slot, raw) in write_slots {
                        push_u64(&mut b, *slot);
                        push_u32(&mut b, *raw);
                    }
                }
                DetectorState::Perfect { readers, writers } => {
                    push_u64(&mut b, readers.len() as u64);
                    for (addr, mask) in readers {
                        push_u64(&mut b, *addr);
                        push_u64(&mut b, *mask as u64);
                        push_u64(&mut b, (*mask >> 64) as u64);
                    }
                    push_u64(&mut b, writers.len() as u64);
                    for (addr, tid) in writers {
                        push_u64(&mut b, *addr);
                        push_u32(&mut b, *tid);
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(CP_HEADER_BYTES + b.len());
        out.extend_from_slice(&CP_MAGIC);
        out.extend_from_slice(&CP_VERSION.to_le_bytes());
        out.extend_from_slice(&crc32(&b).to_le_bytes());
        out.extend_from_slice(&b);
        out
    }

    /// Parse and CRC-verify a serialized checkpoint.
    pub fn decode(bytes: &[u8]) -> io::Result<Self> {
        if bytes.len() < CP_HEADER_BYTES || bytes[0..4] != CP_MAGIC {
            return Err(bad_data("not a loopcomm checkpoint (bad magic)".into()));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != CP_VERSION {
            return Err(bad_data(format!(
                "unsupported checkpoint version {version} (expected {CP_VERSION})"
            )));
        }
        let want_crc = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        let body = &bytes[CP_HEADER_BYTES..];
        let got_crc = crc32(body);
        if want_crc != got_crc {
            return Err(bad_data(format!(
                "checkpoint CRC mismatch (stored {want_crc:#010x}, computed {got_crc:#010x})"
            )));
        }
        let mut d = Dec { b: body, pos: 0 };
        let kind = match d.u8()? {
            0 => DetectorKind::Asymmetric,
            1 => DetectorKind::Perfect,
            k => return Err(bad_data(format!("unknown detector kind {k}"))),
        };
        let jobs = d.u32()? as usize;
        let threads = d.u32()? as usize;
        if jobs == 0 || jobs > 1 << 16 || threads == 0 || threads > 1 << 12 {
            return Err(bad_data(format!(
                "implausible checkpoint shape: jobs={jobs} threads={threads}"
            )));
        }
        let track_nested = d.u8()? != 0;
        let sig = match d.u8()? {
            0 => None,
            _ => Some(SignatureConfig {
                n_slots: d.u64()? as usize,
                threads: d.u32()? as usize,
                fp_rate: f64::from_bits(d.u64()?),
            }),
        };
        if kind == DetectorKind::Asymmetric && sig.is_none() {
            return Err(bad_data(
                "asymmetric checkpoint lacks signature config".into(),
            ));
        }
        let loop_capacity = d.u64()? as usize;
        let frames = d.u64()?;
        let events = d.u64()?;
        let mut workers = Vec::with_capacity(jobs);
        for _ in 0..jobs {
            let accesses = d.u64()?;
            let dependencies = d.u64()?;
            let global = d.matrix(threads)?;
            let n_loops = d.u32()? as usize;
            if n_loops > loop_capacity.max(1 << 20) {
                return Err(bad_data(format!("implausible loop count {n_loops}")));
            }
            let mut loops = Vec::with_capacity(n_loops);
            for _ in 0..n_loops {
                let id = LoopId(d.u32()?);
                loops.push((id, d.matrix(threads)?));
            }
            let detector = match kind {
                DetectorKind::Asymmetric => {
                    let sig = sig.as_ref().unwrap();
                    let words_per = d.u32()? as usize;
                    let n_filters = d.u64()? as usize;
                    if n_filters > sig.n_slots || words_per > 1 << 20 {
                        return Err(bad_data(format!(
                            "implausible filter dump: {n_filters} filters × {words_per} words"
                        )));
                    }
                    let mut filters = Vec::with_capacity(n_filters);
                    for _ in 0..n_filters {
                        let slot = d.u64()?;
                        if slot >= sig.n_slots as u64 {
                            return Err(bad_data(format!("filter slot {slot} out of range")));
                        }
                        let mut words = Vec::with_capacity(words_per);
                        for _ in 0..words_per {
                            words.push(d.u64()?);
                        }
                        filters.push((slot, words));
                    }
                    let n_wslots = d.u64()? as usize;
                    if n_wslots > sig.n_slots {
                        return Err(bad_data(format!("implausible write-slot count {n_wslots}")));
                    }
                    let mut write_slots = Vec::with_capacity(n_wslots);
                    for _ in 0..n_wslots {
                        let slot = d.u64()?;
                        if slot >= sig.n_slots as u64 {
                            return Err(bad_data(format!("write slot {slot} out of range")));
                        }
                        write_slots.push((slot, d.u32()?));
                    }
                    DetectorState::Asymmetric {
                        filters,
                        write_slots,
                    }
                }
                DetectorKind::Perfect => {
                    let n_readers = d.u64()? as usize;
                    let mut readers = Vec::with_capacity(n_readers.min(1 << 20));
                    for _ in 0..n_readers {
                        let addr = d.u64()?;
                        let lo = d.u64()? as u128;
                        let hi = d.u64()? as u128;
                        readers.push((addr, lo | (hi << 64)));
                    }
                    let n_writers = d.u64()? as usize;
                    let mut writers = Vec::with_capacity(n_writers.min(1 << 20));
                    for _ in 0..n_writers {
                        writers.push((d.u64()?, d.u32()?));
                    }
                    DetectorState::Perfect { readers, writers }
                }
            };
            workers.push(WorkerState {
                accesses,
                dependencies,
                global,
                loops,
                detector,
            });
        }
        if d.pos != d.b.len() {
            return Err(bad_data(format!(
                "{} trailing bytes after checkpoint body",
                d.b.len() - d.pos
            )));
        }
        Ok(Self {
            kind,
            jobs,
            sig,
            threads,
            track_nested,
            loop_capacity,
            frames,
            events,
            workers,
        })
    }

    /// Write this checkpoint to `path` atomically (temp + fsync + rename),
    /// routing every byte through the [`FaultSite::CheckpointWrite`] seam
    /// when an injector is armed.
    pub fn write_atomic(&self, path: &Path, faults: Option<&Arc<FaultInjector>>) -> io::Result<()> {
        write_atomic_blob(path, &self.encode(), FaultSite::CheckpointWrite, faults)
    }

    /// Load and verify a checkpoint file.
    pub fn load(path: &Path) -> io::Result<Self> {
        Self::decode(&std::fs::read(path)?)
    }
}

/// Turn one worker's flushed report into serialization form, sorting the
/// loop map into the deterministic id-ascending order the byte format
/// requires.
fn worker_state(r: crate::profiler::ProfileReport, detector: DetectorState) -> WorkerState {
    let mut loops: Vec<(LoopId, DenseMatrix)> = r.per_loop.into_iter().collect();
    loops.sort_unstable_by_key(|(id, _)| id.0);
    WorkerState {
        accesses: r.accesses,
        dependencies: r.dependencies,
        global: r.global,
        loops,
        detector,
    }
}

/// Publication clock: a facade-atomic bump between the durable temp write
/// and the rename. Outside a simulation this is a free counter; inside the
/// deterministic scheduler it is the decision point that lets the
/// `checkpoint` scenario interleave a reader with the publish step.
/// (`LazyLock`: the facade atomic registers with the simulation context at
/// creation, so its constructor is not `const`.)
static PUBLISH_CLOCK: std::sync::LazyLock<crate::sync::AtomicU64> =
    std::sync::LazyLock::new(|| crate::sync::AtomicU64::new(0));

/// Write `bytes` to `path` atomically: `<path>.tmp`, flush, `fsync`,
/// `rename(2)`. All bytes pass through `site` when `faults` is armed, so a
/// crash (or injected fault) at any point leaves the previous file intact —
/// the loader never sees a torn blob it would trust.
pub fn write_atomic_blob(
    path: &Path,
    bytes: &[u8],
    site: FaultSite,
    faults: Option<&Arc<FaultInjector>>,
) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    #[cfg(feature = "sched")]
    if lc_sched::mutant_active("checkpoint-torn-write") {
        // Mutant: publish in place, non-atomically, in two halves with a
        // scheduling point between them — the bug the atomic temp+rename
        // protocol exists to rule out. A simulated reader interleaved at
        // the torn window observes a half-old half-new file.
        let mut f = File::create(path)?;
        let mid = bytes.len() / 2;
        f.write_all(&bytes[..mid])?;
        PUBLISH_CLOCK.fetch_add(1, crate::sync::Ordering::SeqCst);
        f.write_all(&bytes[mid..])?;
        return Ok(());
    }
    let mut tmp = path.to_path_buf().into_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let file = File::create(&tmp)?;
    match faults {
        Some(inj) => {
            let mut w = FaultyWriter::with_site(file, Arc::clone(inj), site);
            w.write_all(bytes)?;
            w.flush()?;
            w.get_ref().sync_all()?;
        }
        None => {
            let mut w = &file;
            w.write_all(bytes)?;
            file.sync_all()?;
        }
    }
    PUBLISH_CLOCK.fetch_add(1, crate::sync::Ordering::SeqCst);
    std::fs::rename(&tmp, path)
}

fn push_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn push_matrix(b: &mut Vec<u8>, m: &DenseMatrix) {
    for &v in m.data() {
        push_u64(b, v);
    }
}

struct Dec<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Dec<'_> {
    fn take(&mut self, n: usize) -> io::Result<&[u8]> {
        if self.b.len() - self.pos < n {
            return Err(bad_data("truncated checkpoint body".into()));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn matrix(&mut self, t: usize) -> io::Result<DenseMatrix> {
        let mut data = Vec::with_capacity(t * t);
        for _ in 0..t * t {
            data.push(self.u64()?);
        }
        Ok(DenseMatrix::from_rows(t, data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::canonical_report;
    use lc_trace::{AccessEvent, AccessKind, FuncId, StampedEvent};

    fn events(n: u64) -> Vec<StampedEvent> {
        (0..n)
            .map(|i| {
                let addr = 0x1000 + (i % 97) * 8;
                let kind = if i % 3 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                let tid = if kind == AccessKind::Write {
                    (i % 2) as u32
                } else {
                    (i % 4) as u32
                };
                StampedEvent {
                    seq: i,
                    event: AccessEvent {
                        tid,
                        addr,
                        size: 8,
                        kind,
                        loop_id: LoopId((i % 6) as u32 + 1),
                        parent_loop: LoopId::NONE,
                        func: FuncId::NONE,
                        site: 0,
                    },
                }
            })
            .collect()
    }

    fn analyzer(kind: DetectorKind, jobs: usize) -> IncrementalAnalyzer {
        IncrementalAnalyzer::new(
            kind,
            SignatureConfig::paper_default(1 << 9, 4),
            ProfilerConfig::nested(4),
            AccumConfig::default(),
            jobs,
        )
    }

    fn run_with_checkpoint(
        kind: DetectorKind,
        jobs: usize,
        evs: &[StampedEvent],
        split: usize,
        frame: usize,
    ) -> String {
        let mut a = analyzer(kind, jobs);
        for chunk in evs[..split].chunks(frame) {
            a.on_frame(chunk);
        }
        let cp = Checkpoint::capture(&a);
        drop(a);
        let decoded = Checkpoint::decode(&cp.encode()).unwrap();
        assert_eq!(decoded, cp);
        let mut b = decoded.restore(AccumConfig::default()).unwrap();
        assert_eq!(b.events(), split as u64);
        for chunk in evs[split..].chunks(frame) {
            b.on_frame(chunk);
        }
        canonical_report(&b.report(), b.events())
    }

    #[test]
    fn checkpoint_restore_is_byte_identical_both_detectors() {
        let evs = events(4000);
        for kind in [DetectorKind::Asymmetric, DetectorKind::Perfect] {
            for jobs in [1usize, 3] {
                let mut straight = analyzer(kind, jobs);
                for chunk in evs.chunks(64) {
                    straight.on_frame(chunk);
                }
                let want = canonical_report(&straight.report(), straight.events());
                for split in [0usize, 64, 1024, 3968, 4000] {
                    let got = run_with_checkpoint(kind, jobs, &evs, split, 64);
                    assert_eq!(
                        got, want,
                        "resume at {split} diverged ({kind:?}, jobs={jobs})"
                    );
                }
            }
        }
    }

    #[test]
    fn corrupt_checkpoint_is_rejected() {
        let mut a = analyzer(DetectorKind::Asymmetric, 2);
        let evs = events(500);
        for chunk in evs.chunks(50) {
            a.on_frame(chunk);
        }
        let bytes = Checkpoint::capture(&a).encode();
        // Flip one bit anywhere in the body: CRC must catch it.
        for at in [CP_HEADER_BYTES, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            assert!(Checkpoint::decode(&bad).is_err(), "flip at {at} accepted");
        }
        // Truncation too.
        assert!(Checkpoint::decode(&bytes[..bytes.len() - 3]).is_err());
        assert!(Checkpoint::decode(&bytes[..8]).is_err());
    }

    #[test]
    fn atomic_write_round_trips_on_disk() {
        let dir = std::env::temp_dir().join("lc_cp_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = checkpoint_path(&dir);
        let mut a = analyzer(DetectorKind::Perfect, 2);
        let evs = events(800);
        for chunk in evs.chunks(100) {
            a.on_frame(chunk);
        }
        let cp = Checkpoint::capture(&a);
        cp.write_atomic(&path, None).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), cp);
        // No temp file left behind.
        assert!(!path.with_extension("lccp.tmp").exists());
    }

    #[test]
    fn restore_rejects_worker_mismatch() {
        let mut a = analyzer(DetectorKind::Perfect, 2);
        a.on_frame(&events(100));
        let mut cp = Checkpoint::capture(&a);
        cp.jobs = 3;
        assert!(cp.restore(AccumConfig::default()).is_err());
    }

    #[test]
    fn capture_is_resumable_mid_loop_nesting() {
        // Loops present in the prefix but not the suffix (and vice versa)
        // must both survive the round trip.
        let mut evs = events(1000);
        for (i, e) in evs.iter_mut().enumerate() {
            e.event.loop_id = if i < 500 { LoopId(1) } else { LoopId(9) };
        }
        let mut straight = analyzer(DetectorKind::Asymmetric, 2);
        for chunk in evs.chunks(32) {
            straight.on_frame(chunk);
        }
        let want = canonical_report(&straight.report(), 1000);
        let got = run_with_checkpoint(DetectorKind::Asymmetric, 2, &evs, 500, 32);
        assert_eq!(got, want);
    }
}
