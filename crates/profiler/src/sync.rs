//! Sync-primitive facade for the shard flush path.
//!
//! With the `sched` feature the accumulation layer's atomics and the
//! per-shard buffer mutex come from [`lc_sched::sync`], whose operations
//! are scheduler decision points inside a deterministic simulation and
//! delegate to the real primitives otherwise. Without the feature this is
//! exactly the std atomics + `parking_lot::Mutex` the code always used.

#[cfg(feature = "sched")]
pub use lc_sched::sync::{
    AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Mutex, MutexGuard, Ordering,
};

#[cfg(not(feature = "sched"))]
pub use parking_lot::{Mutex, MutexGuard};
#[cfg(not(feature = "sched"))]
pub use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
