//! Algorithm 1 — RAW thread-dependence detection over asymmetric
//! signature memory.
//!
//! ```text
//! for all memory access a in the program do
//!   if Type(a) is read access then
//!     if a in write signature then
//!       if a not in read signature & lastWrite.tid != a.tid then
//!         add RAW dependency to comm. matrix;
//!     else {a not in write signature}
//!       insert a to read signature;
//!   else {a is write access}
//!     clear correspondent bloom filter in read signature;
//!     insert a to write signature;
//! ```
//!
//! **Documented deviation:** as printed, a read that *hits* the write
//! signature is never inserted into the read signature, so every later read
//! of the same address by the same thread would be re-counted — directly
//! contradicting §V-A5: "only first time access by a thread is counted as a
//! communication between relevant threads". We therefore insert the reader
//! into the read signature after the dependence check, which makes the
//! first-read-only semantics hold (and is what the read signature exists
//! for — it stores "the list of all threads which have accessed the
//! correspondent memory location", §IV-D2).

use lc_sigmem::{
    PerfectReaderSet, PerfectWriterMap, ReadSignature, ReaderSet, SignatureConfig, WriteSignature,
    WriterMap,
};
use lc_trace::AccessKind;

/// One detected inter-thread RAW dependence: `bytes` flowed from the thread
/// that last wrote the address (`src`) to the reading thread (`dst`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dependence {
    /// Producer (last writer) thread.
    pub src: u32,
    /// Consumer (reader) thread.
    pub dst: u32,
    /// Communicated volume in bytes.
    pub bytes: u64,
}

/// What one access observed inside Algorithm 1 — the telemetry layer's
/// view of a [`RawDetector::on_access_probed`] call. For writes both flags
/// stay `false`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessProbe {
    /// A read found a recorded last writer in the write signature.
    pub writer_hit: bool,
    /// The writer hit did not become a dependence: same thread, or the
    /// reader was already in the read signature (first-read-only rule).
    pub suppressed: bool,
}

/// Algorithm 1 over any read/write signature pair.
///
/// ```
/// use lc_profiler::{Dependence, PerfectDetector};
/// use lc_trace::AccessKind;
///
/// let d = PerfectDetector::perfect();
/// assert_eq!(d.on_access(0, 0x10, 8, AccessKind::Write), None);
/// // Thread 1's first read of thread 0's value is communication...
/// assert_eq!(
///     d.on_access(1, 0x10, 8, AccessKind::Read),
///     Some(Dependence { src: 0, dst: 1, bytes: 8 })
/// );
/// // ...and a repeated read is not (§V-A5 first-read-only semantics).
/// assert_eq!(d.on_access(1, 0x10, 8, AccessKind::Read), None);
/// ```
#[derive(Debug)]
pub struct RawDetector<R: ReaderSet, W: WriterMap> {
    read_sig: R,
    write_sig: W,
}

/// The paper's detector: approximate, bounded-memory signatures.
pub type AsymmetricDetector = RawDetector<ReadSignature, WriteSignature>;

/// The §V-A3 baseline: exact, footprint-proportional structures.
pub type PerfectDetector = RawDetector<PerfectReaderSet, PerfectWriterMap>;

impl AsymmetricDetector {
    /// Build from a signature configuration.
    pub fn asymmetric(cfg: SignatureConfig) -> Self {
        let (read_sig, write_sig) = cfg.build();
        Self {
            read_sig,
            write_sig,
        }
    }
}

impl PerfectDetector {
    /// Build the collision-free baseline detector.
    pub fn perfect() -> Self {
        Self {
            read_sig: PerfectReaderSet::new(),
            write_sig: PerfectWriterMap::new(),
        }
    }
}

impl<R: ReaderSet, W: WriterMap> RawDetector<R, W> {
    /// Build from explicit signature halves.
    pub fn from_parts(read_sig: R, write_sig: W) -> Self {
        Self {
            read_sig,
            write_sig,
        }
    }

    /// Process one access in program order; returns the RAW dependence the
    /// access completes, if any. Lock-free when the signatures are.
    #[inline]
    pub fn on_access(
        &self,
        tid: u32,
        addr: u64,
        size: u32,
        kind: AccessKind,
    ) -> Option<Dependence> {
        match kind {
            AccessKind::Read => {
                let dep = match self.write_sig.last_writer(addr) {
                    Some(writer) => {
                        if writer != tid && !self.read_sig.contains(addr, tid) {
                            Some(Dependence {
                                src: writer,
                                dst: tid,
                                bytes: size as u64,
                            })
                        } else {
                            None
                        }
                    }
                    None => None,
                };
                // First-read-only bookkeeping (see module docs).
                self.read_sig.insert(addr, tid);
                dep
            }
            AccessKind::Write => {
                // A new value invalidates the reader history: subsequent
                // reads are fresh communications from this writer.
                self.read_sig.clear_addr(addr);
                self.write_sig.record(addr, tid);
                None
            }
        }
    }

    /// [`Self::on_access`] with `h = fmix64(addr)` precomputed by the
    /// caller. The batched replay path hashes whole SoA address blocks via
    /// [`lc_sigmem::hash_block`] and feeds each event's hash to all of its
    /// signature consultations (last-writer probe, read-set membership,
    /// insert/clear/record) — one `fmix64` per event instead of up to
    /// three. Byte-identical to [`Self::on_access`]: the signatures'
    /// `*_hashed` entry points use the hash exactly where they would have
    /// computed it.
    #[inline]
    pub fn on_access_hashed(
        &self,
        tid: u32,
        addr: u64,
        h: u64,
        size: u32,
        kind: AccessKind,
    ) -> Option<Dependence> {
        debug_assert_eq!(h, lc_sigmem::murmur::fmix64(addr), "stale hash for addr");
        match kind {
            AccessKind::Read => {
                // Membership test and first-read bookkeeping in one
                // signature traversal (see module docs): `was_present` is
                // the pre-insert state, exactly what the old
                // `contains` + unconditional `insert` pair observed.
                let writer = self.write_sig.last_writer_hashed(addr, h);
                let was_present = self.read_sig.insert_contains_hashed(addr, h, tid);
                match writer {
                    Some(writer) if writer != tid && !was_present => Some(Dependence {
                        src: writer,
                        dst: tid,
                        bytes: size as u64,
                    }),
                    _ => None,
                }
            }
            AccessKind::Write => {
                // A new value invalidates the reader history: subsequent
                // reads are fresh communications from this writer.
                self.read_sig.clear_addr_hashed(addr, h);
                self.write_sig.record_hashed(addr, h, tid);
                None
            }
        }
    }

    /// Hint both signature halves that the slots for hash `h` are about to
    /// be consulted. Batched replay issues this a few events ahead so the
    /// slot lines are in flight when [`Self::on_access_hashed`] lands.
    #[inline]
    pub fn prefetch(&self, h: u64) {
        ReaderSet::prefetch(&self.read_sig, h);
        WriterMap::prefetch(&self.write_sig, h);
    }

    /// [`Self::on_access`] plus a probe describing what the signatures
    /// observed, for the telemetry layer. Kept as a separate body so the
    /// metrics-off hot path stays literally untouched (the zero-cost-when-off
    /// argument in DESIGN.md §8); the `telemetry_differential` test pins the
    /// two paths to identical dependence streams.
    #[inline]
    pub fn on_access_probed(
        &self,
        tid: u32,
        addr: u64,
        size: u32,
        kind: AccessKind,
    ) -> (Option<Dependence>, AccessProbe) {
        match kind {
            AccessKind::Read => {
                let mut probe = AccessProbe::default();
                let dep = match self.write_sig.last_writer(addr) {
                    Some(writer) => {
                        probe.writer_hit = true;
                        if writer != tid && !self.read_sig.contains(addr, tid) {
                            Some(Dependence {
                                src: writer,
                                dst: tid,
                                bytes: size as u64,
                            })
                        } else {
                            probe.suppressed = true;
                            None
                        }
                    }
                    None => None,
                };
                self.read_sig.insert(addr, tid);
                (dep, probe)
            }
            AccessKind::Write => {
                self.read_sig.clear_addr(addr);
                self.write_sig.record(addr, tid);
                (None, AccessProbe::default())
            }
        }
    }

    /// Combined heap footprint of both signatures.
    pub fn memory_bytes(&self) -> usize {
        self.read_sig.memory_bytes() + self.write_sig.memory_bytes()
    }

    /// The read half (diagnostics).
    pub fn read_sig(&self) -> &R {
        &self.read_sig
    }

    /// The write half (diagnostics).
    pub fn write_sig(&self) -> &W {
        &self.write_sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_trace::AccessKind::{Read, Write};

    fn perfect() -> PerfectDetector {
        PerfectDetector::perfect()
    }

    #[test]
    fn basic_raw_dependence() {
        let d = perfect();
        assert_eq!(d.on_access(0, 0x10, 8, Write), None);
        assert_eq!(
            d.on_access(1, 0x10, 8, Read),
            Some(Dependence {
                src: 0,
                dst: 1,
                bytes: 8
            })
        );
    }

    #[test]
    fn self_dependence_is_not_communication() {
        let d = perfect();
        d.on_access(2, 0x10, 8, Write);
        assert_eq!(d.on_access(2, 0x10, 8, Read), None);
    }

    #[test]
    fn repeated_reads_count_once() {
        // §V-A5: only the first read per thread after a write communicates.
        let d = perfect();
        d.on_access(0, 0x10, 8, Write);
        assert!(d.on_access(1, 0x10, 8, Read).is_some());
        assert_eq!(d.on_access(1, 0x10, 8, Read), None);
        assert_eq!(d.on_access(1, 0x10, 8, Read), None);
    }

    #[test]
    fn new_write_resets_reader_history() {
        let d = perfect();
        d.on_access(0, 0x10, 8, Write);
        assert!(d.on_access(1, 0x10, 8, Read).is_some());
        // Thread 2 writes a fresh value; thread 1's next read is a new
        // communication from thread 2.
        d.on_access(2, 0x10, 8, Write);
        assert_eq!(
            d.on_access(1, 0x10, 8, Read),
            Some(Dependence {
                src: 2,
                dst: 1,
                bytes: 8
            })
        );
    }

    #[test]
    fn read_before_any_write_is_silent() {
        let d = perfect();
        assert_eq!(d.on_access(1, 0x99, 8, Read), None);
        // ...and doesn't fabricate a dependence once someone writes later.
        d.on_access(0, 0x99, 8, Write);
        assert!(d.on_access(1, 0x99, 8, Read).is_some());
    }

    #[test]
    fn multiple_readers_each_get_an_edge() {
        let d = perfect();
        d.on_access(0, 0x20, 4, Write);
        for tid in 1..5u32 {
            assert_eq!(
                d.on_access(tid, 0x20, 4, Read),
                Some(Dependence {
                    src: 0,
                    dst: tid,
                    bytes: 4
                })
            );
        }
    }

    #[test]
    fn asymmetric_matches_perfect_on_collision_free_input() {
        // With ample slots and few addresses, the approximate detector must
        // agree with the exact one event-for-event.
        let asym = AsymmetricDetector::asymmetric(SignatureConfig::paper_default(1 << 16, 8));
        let perf = perfect();
        let script: Vec<(u32, u64, AccessKind)> = vec![
            (0, 0x100, Write),
            (1, 0x100, Read),
            (1, 0x100, Read),
            (2, 0x108, Write),
            (0, 0x108, Read),
            (2, 0x100, Read),
            (0, 0x100, Write),
            (1, 0x100, Read),
        ];
        for (tid, addr, kind) in script {
            assert_eq!(
                asym.on_access(tid, addr, 8, kind),
                perf.on_access(tid, addr, 8, kind),
                "divergence at tid={tid} addr={addr:#x} {kind:?}"
            );
        }
    }

    #[test]
    fn tiny_signature_produces_false_positives_not_negatives() {
        // One slot: addresses alias. The detector may claim extra deps but
        // must still flag the true one.
        let asym = AsymmetricDetector::asymmetric(SignatureConfig {
            n_slots: 1,
            threads: 4,
            fp_rate: 0.5,
        });
        asym.on_access(0, 0x10, 8, Write);
        let dep = asym.on_access(1, 0x10, 8, Read);
        assert_eq!(
            dep,
            Some(Dependence {
                src: 0,
                dst: 1,
                bytes: 8
            })
        );
    }

    #[test]
    fn probed_path_matches_plain_path_and_classifies() {
        // Two detectors fed the same script: the probed body must return the
        // exact dependences of the plain body, plus sensible probe flags.
        let plain = perfect();
        let probed = perfect();
        let script: Vec<(u32, u64, AccessKind)> = vec![
            (0, 0x10, Write),
            (1, 0x10, Read), // writer hit, dep
            (1, 0x10, Read), // writer hit, suppressed (already read)
            (0, 0x10, Read), // writer hit, suppressed (self)
            (2, 0x99, Read), // writer miss
            (3, 0x10, Write),
            (1, 0x10, Read), // fresh dep from 3
        ];
        let mut probes = Vec::new();
        for (tid, addr, kind) in script {
            let (dep, probe) = probed.on_access_probed(tid, addr, 8, kind);
            assert_eq!(dep, plain.on_access(tid, addr, 8, kind));
            probes.push(probe);
        }
        let hit = |w, s| AccessProbe {
            writer_hit: w,
            suppressed: s,
        };
        assert_eq!(
            probes,
            vec![
                hit(false, false), // write
                hit(true, false),
                hit(true, true),
                hit(true, true),
                hit(false, false), // miss
                hit(false, false), // write
                hit(true, false),
            ]
        );
    }

    #[test]
    fn hashed_path_matches_plain_path_on_both_detectors() {
        use lc_sigmem::murmur::fmix64;
        let script: Vec<(u32, u64, AccessKind)> = vec![
            (0, 0x100, Write),
            (1, 0x100, Read),
            (1, 0x100, Read),
            (2, 0x108, Write),
            (0, 0x108, Read),
            (2, 0x100, Read),
            (0, 0x100, Write),
            (1, 0x100, Read),
            (3, 0x110, Read),
        ];
        let plain_p = perfect();
        let hashed_p = perfect();
        let plain_a = AsymmetricDetector::asymmetric(SignatureConfig::paper_default(1 << 10, 4));
        let hashed_a = AsymmetricDetector::asymmetric(SignatureConfig::paper_default(1 << 10, 4));
        for (tid, addr, kind) in script {
            let h = fmix64(addr);
            assert_eq!(
                hashed_p.on_access_hashed(tid, addr, h, 8, kind),
                plain_p.on_access(tid, addr, 8, kind),
                "perfect divergence at tid={tid} addr={addr:#x} {kind:?}"
            );
            assert_eq!(
                hashed_a.on_access_hashed(tid, addr, h, 8, kind),
                plain_a.on_access(tid, addr, 8, kind),
                "asymmetric divergence at tid={tid} addr={addr:#x} {kind:?}"
            );
        }
    }

    #[test]
    fn memory_accounting_is_visible() {
        let asym = AsymmetricDetector::asymmetric(SignatureConfig::paper_default(1 << 10, 4));
        let before = asym.memory_bytes();
        for a in 0..100u64 {
            asym.on_access(0, a * 8, 8, Read);
        }
        assert!(asym.memory_bytes() >= before);
        assert!(asym.read_sig().allocated_filters() > 0);
        assert_eq!(asym.write_sig().n_slots(), 1 << 10);
    }
}
