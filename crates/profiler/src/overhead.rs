//! Runtime-overhead measurement (Figure 4 support).
//!
//! The paper measures per-application slowdown as instrumented time over
//! native time. Here "native" is the workload running with event delivery
//! to a [`lc_trace::NoopSink`] (the honest baseline: event *generation*
//! stays, analysis cost is what's measured) and "instrumented" is the same
//! workload with the full profiler attached.

use std::time::{Duration, Instant};

/// Time a closure once.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Best-of-`reps` timing (minimum is the standard noise-robust estimator
/// for short deterministic regions).
pub fn time_best_of(reps: usize, mut f: impl FnMut()) -> Duration {
    assert!(reps >= 1);
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let (_, d) = time_once(&mut f);
        best = best.min(d);
    }
    best
}

/// A native-vs-instrumented measurement.
#[derive(Clone, Copy, Debug)]
pub struct Slowdown {
    /// Baseline duration.
    pub native: Duration,
    /// Instrumented duration.
    pub instrumented: Duration,
}

impl Slowdown {
    /// Measure both sides with `reps` repetitions each.
    pub fn measure(reps: usize, mut native: impl FnMut(), mut instrumented: impl FnMut()) -> Self {
        // Interleave one warm-up of each to equalize cache state.
        native();
        instrumented();
        Self {
            native: time_best_of(reps, &mut native),
            instrumented: time_best_of(reps, &mut instrumented),
        }
    }

    /// Slowdown factor (≥ 0; 1.0 = no overhead).
    pub fn factor(&self) -> f64 {
        let n = self.native.as_secs_f64();
        if n == 0.0 {
            return f64::INFINITY;
        }
        self.instrumented.as_secs_f64() / n
    }
}

/// Geometric-mean-free average of slowdown factors, as the paper computes
/// it: "225× runtime slowdown which has been computed by computing the
/// average of the slowdown factors" (arithmetic mean).
pub fn average_slowdown(factors: &[f64]) -> f64 {
    if factors.is_empty() {
        return 0.0;
    }
    factors.iter().sum::<f64>() / factors.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_returns_value_and_duration() {
        let (v, d) = time_once(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn slowdown_factor_reflects_work_ratio() {
        let s = Slowdown {
            native: Duration::from_millis(10),
            instrumented: Duration::from_millis(250),
        };
        assert!((s.factor() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn measure_detects_heavier_side() {
        let work = |n: u64| {
            // black_box each step so the optimizer cannot close-form the loop.
            let mut acc = 0u64;
            for i in 0..n {
                acc = std::hint::black_box(acc.wrapping_mul(6364136223846793005).wrapping_add(i));
            }
            std::hint::black_box(acc);
        };
        let s = Slowdown::measure(3, || work(10_000), || work(400_000));
        assert!(s.factor() > 2.0, "factor = {}", s.factor());
    }

    #[test]
    fn average_is_arithmetic_mean() {
        assert_eq!(average_slowdown(&[10.0, 20.0, 30.0]), 20.0);
        assert_eq!(average_slowdown(&[]), 0.0);
    }
}
