//! Plain-text and CSV report rendering shared by examples and benches.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

use crate::profiler::ProfileReport;

/// Deterministic plain-text rendering of a profile — the byte-for-byte
/// comparison format of the server-vs-offline differential
/// (`tests/serve_equivalence.rs`). Covers exactly the fields that are
/// invariant across execution strategy (worker count, batch boundaries,
/// coalescing): thread count, event count, dependence count, the global
/// matrix, and every per-loop matrix in loop-UID order. Deliberately
/// excludes `accesses` (changed by coalescing) and `memory_bytes`
/// (footprint, not semantics).
pub fn canonical_report(report: &ProfileReport, trace_events: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "loopcomm-report v1");
    let _ = writeln!(out, "threads {}", report.threads);
    let _ = writeln!(out, "events {trace_events}");
    let _ = writeln!(out, "dependencies {}", report.dependencies);
    let _ = writeln!(out, "global");
    out.push_str(&report.global.to_csv());
    let mut ids: Vec<_> = report.per_loop.keys().copied().collect();
    ids.sort_unstable_by_key(|id| id.0);
    for id in ids {
        let m = &report.per_loop[&id];
        // Loops that never communicated render identically whether or not
        // a worker ever touched them — an all-zero matrix carries no
        // information, and which workers saw a loop is replay-dependent.
        if m.total() == 0 {
            continue;
        }
        let _ = writeln!(out, "loop {}", id.0);
        out.push_str(&m.to_csv());
    }
    out
}

/// Render an ASCII table with a header row.
pub fn ascii_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(out, " {h:<w$} |");
    }
    out.push('\n');
    sep(&mut out);
    for row in rows {
        out.push('|');
        for (c, w) in row.iter().zip(&widths) {
            let _ = write!(out, " {c:<w$} |");
        }
        out.push('\n');
    }
    sep(&mut out);
    out
}

/// Human-readable byte size (KiB/MiB/GiB).
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.1} {}", UNITS[u])
    }
}

/// Format a slowdown factor the way the paper writes it ("225x").
pub fn fmt_slowdown(factor: f64) -> String {
    if factor >= 100.0 {
        format!("{factor:.0}x")
    } else {
        format!("{factor:.1}x")
    }
}

/// Write rows as CSV (creating parent directories).
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = ascii_table(
            &["app", "slowdown"],
            &[
                vec!["radix".into(), "15x".into()],
                vec!["water_nsquared".into(), "700x".into()],
            ],
        );
        assert!(t.contains("| app "));
        assert!(t.contains("| water_nsquared |"));
        assert_eq!(t.lines().filter(|l| l.starts_with('+')).count(), 3);
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(580 * 1024 * 1024), "580.0 MiB");
    }

    #[test]
    fn slowdown_formatting() {
        assert_eq!(fmt_slowdown(225.4), "225x");
        assert_eq!(fmt_slowdown(15.3), "15.3x");
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("lc_report_test");
        let path = dir.join("t.csv");
        write_csv(&path, &["a", "b"], &[vec!["1".into(), "2".into()]]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "a,b\n1,2\n");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let _ = ascii_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
