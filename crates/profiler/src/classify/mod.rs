//! Parallel-pattern classification from communication matrices (§VI).
//!
//! * [`patterns`] — the canonical topology classes and labelled synthetic
//!   generators.
//! * [`features`] — scale-free structural features of a matrix.
//! * [`classifier`] — nearest-centroid supervised model reproducing the
//!   paper's ">97% accuracy" claim.
//! * [`rules`] — the "algorithmic methods" half: explicit, auditable
//!   decision rules that need no training data.
//! * [`coherence`] — coherence-backend features (invalidation rate,
//!   false-sharing ratio, transfer locality) and the extended 13-feature
//!   model that separates true- from false-sharing variants.

pub mod classifier;
pub mod coherence;
pub mod features;
pub mod patterns;
pub mod rules;

pub use classifier::{synthetic_dataset, Evaluation, NearestCentroid, Sample};
pub use coherence::{
    extend as extend_features, extract_extended, synthetic_ext_dataset, CoherenceFeatures,
    ExtNearestCentroid, ExtSample, SharingVariant, COHERENCE_FEATURE_NAMES, N_COH_FEATURES,
    N_EXT_FEATURES,
};
pub use features::{extract, FEATURE_NAMES, N_FEATURES};
pub use patterns::{generate, PatternClass};
pub use rules::{classify_matrix as classify_by_rules, rule_accuracy, RuleVerdict};
