//! Rule-based pattern classification — the "algorithmic methods" half of
//! §VI ("with the aid of algorithmic methods and supervised learning").
//!
//! Unlike the nearest-centroid model, the rule classifier needs no
//! training data: it applies explicit, human-auditable decision rules to
//! the scale-free features. Rules double as documentation of *why* a
//! matrix belongs to a class, and the two classifiers cross-check each
//! other ([`agreement`] measures how often they concur).

use crate::classify::features::{extract, N_FEATURES};
use crate::classify::patterns::PatternClass;
use crate::matrix::DenseMatrix;

/// Feature indices, named (kept in sync with `features::FEATURE_NAMES`).
mod f {
    pub const NEIGHBOR: usize = 0;
    pub const WRAP: usize = 1;
    pub const DIRECTION: usize = 2;
    pub const MASTER: usize = 3;
    pub const POW2: usize = 4;
    pub const GRID: usize = 5;
    pub const TREE: usize = 6;
    pub const SYMMETRY: usize = 7;
    pub const DENSITY: usize = 8;
}

/// Why the rule classifier chose a class.
#[derive(Clone, Debug)]
pub struct RuleVerdict {
    /// The chosen class.
    pub class: PatternClass,
    /// The fired rule, in words.
    pub reason: &'static str,
}

/// Classify a feature vector with explicit decision rules, most specific
/// first. Always returns a verdict (the final rule is a catch-all).
pub fn classify_features(feat: &[f64; N_FEATURES]) -> RuleVerdict {
    // 1. Master/worker: row/column 0 carries almost everything.
    if feat[f::MASTER] > 0.8 {
        return RuleVerdict {
            class: PatternClass::MasterWorker,
            reason: "row 0 + column 0 carry > 80% of the volume",
        };
    }
    // 2. Reduction tree: parent edges dominate and flow converges.
    if feat[f::TREE] > 0.5 && feat[f::DIRECTION] > 0.5 {
        return RuleVerdict {
            class: PatternClass::ReductionTree,
            reason: "i -> i/2 edges dominate with strong directionality",
        };
    }
    // 3. Pipeline: nearest-neighbour but one-directional.
    if feat[f::NEIGHBOR] > 0.6 && feat[f::DIRECTION] > 0.6 {
        return RuleVerdict {
            class: PatternClass::Pipeline,
            reason: "adjacent-rank traffic with > 60% direction skew",
        };
    }
    // 4. Ring: symmetric nearest-neighbour with wraparound.
    if feat[f::NEIGHBOR] > 0.55 && feat[f::SYMMETRY] > 0.8 && feat[f::WRAP] > 0.02 {
        return RuleVerdict {
            class: PatternClass::Ring1D,
            reason: "symmetric adjacent-rank traffic with wraparound corner",
        };
    }
    // 5. Butterfly: multiple power-of-two distance bands carry the mass.
    //    Checked before the grid rule because a power-of-two grid width
    //    (t = 16 ⇒ width 4) makes grid matrices score on pow2 too; the
    //    butterfly's log₂(t) bands push its pow2 share well past a grid's
    //    single far band (~0.5).
    if feat[f::POW2] > 0.55 && feat[f::DENSITY] < 0.9 {
        return RuleVerdict {
            class: PatternClass::Butterfly,
            reason: "power-of-two distance bands dominate a sparse matrix",
        };
    }
    // 6. Grid: symmetric short-range with a second band at the grid width.
    if feat[f::GRID] > 0.2 && feat[f::SYMMETRY] > 0.8 && feat[f::NEIGHBOR] > 0.2 {
        return RuleVerdict {
            class: PatternClass::Grid2D,
            reason: "symmetric bands at distance 1 and the grid width",
        };
    }
    // 7. Default dense case: all-to-all.
    if feat[f::DENSITY] > 0.7 {
        return RuleVerdict {
            class: PatternClass::AllToAll,
            reason: "dense matrix without a dominating structural band",
        };
    }
    // 8. Fallback: symmetric sparse leftovers look most like a grid;
    //    asymmetric ones like a pipeline fragment.
    if feat[f::SYMMETRY] > 0.8 {
        RuleVerdict {
            class: PatternClass::Grid2D,
            reason: "fallback: sparse symmetric short-range traffic",
        }
    } else {
        RuleVerdict {
            class: PatternClass::Pipeline,
            reason: "fallback: sparse directional traffic",
        }
    }
}

/// Classify a matrix.
pub fn classify_matrix(m: &DenseMatrix) -> RuleVerdict {
    classify_features(&extract(m))
}

/// Fraction of labelled samples the rules classify correctly.
pub fn rule_accuracy(samples: &[crate::classify::classifier::Sample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let correct = samples
        .iter()
        .filter(|s| classify_features(&s.features).class == s.label)
        .count();
    correct as f64 / samples.len() as f64
}

/// Fraction of samples on which the rules and a trained model agree.
pub fn agreement(
    model: &crate::classify::classifier::NearestCentroid,
    samples: &[crate::classify::classifier::Sample],
) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let agree = samples
        .iter()
        .filter(|s| classify_features(&s.features).class == model.predict_features(&s.features))
        .count();
    agree as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classifier::{synthetic_dataset, NearestCentroid};
    use crate::classify::patterns::generate;

    #[test]
    fn rules_identify_clean_patterns() {
        for class in PatternClass::ALL {
            let m = generate(class, 16, 7, 0.0);
            let v = classify_matrix(&m);
            assert_eq!(v.class, class, "rule miss on clean {class}: {}", v.reason);
        }
    }

    #[test]
    fn rules_tolerate_mild_noise() {
        let samples = synthetic_dataset(16, 20, &[0.05, 0.1], 3);
        let acc = rule_accuracy(&samples);
        assert!(acc >= 0.9, "rule accuracy {acc} under mild noise");
    }

    #[test]
    fn rules_and_model_mostly_agree() {
        let train = synthetic_dataset(16, 30, &[0.0, 0.05, 0.1], 1);
        let model = NearestCentroid::train(&train);
        let test = synthetic_dataset(16, 15, &[0.05], 99);
        let a = agreement(&model, &test);
        assert!(a >= 0.9, "agreement {a} too low");
    }

    #[test]
    fn verdicts_carry_reasons() {
        let m = generate(PatternClass::MasterWorker, 16, 1, 0.0);
        let v = classify_matrix(&m);
        assert!(v.reason.contains("row 0"));
    }

    #[test]
    fn zero_matrix_falls_through_gracefully() {
        let v = classify_matrix(&DenseMatrix::zero(8));
        // Zero features: symmetric fallback path.
        assert_eq!(v.class, PatternClass::Pipeline);
    }
}
