//! Canonical parallel-pattern classes and synthetic matrix generators.
//!
//! §VI: "based on the communication matrices that we can obtain with
//! DiscoPoP, three classes of parallel patterns could be identified...
//! Linear algebra, spectral methods, n-body, structured grids,
//! master/worker, pipeline and synchronization barriers were among the
//! patterns we could identify."
//!
//! Each [`PatternClass`] has a canonical communication topology; the
//! generators produce labelled matrices (with controllable noise) used to
//! train and evaluate the classifier, mirroring the paper's supervised
//! learning setup. Mapping to the paper's names: `ReductionTree` covers the
//! broadcast/reduce collectives dominating linear-algebra kernels,
//! `Butterfly` is the spectral-method (FFT) topology, `AllToAll` the n-body
//! topology, `Ring1D`/`Grid2D` the structured grids.

use crate::matrix::DenseMatrix;

/// Deterministic SplitMix64 — private noise source so the generators are
/// reproducible without external crates.
#[derive(Clone, Debug)]
pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    #[allow(dead_code)] // exercised by tests; kept for generator extensions
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in [0, n).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// The communication-topology classes the classifier distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PatternClass {
    /// Unidirectional producer→consumer chain (i → i+1).
    Pipeline,
    /// Symmetric nearest-neighbour exchange on a 1-D ring (structured grid).
    Ring1D,
    /// Symmetric 4-neighbour exchange on a 2-D processor grid.
    Grid2D,
    /// Thread 0 farms work to and collects results from all others.
    MasterWorker,
    /// Hypercube/butterfly exchange (i ↔ i xor 2^k) — spectral methods.
    Butterfly,
    /// Dense symmetric all-to-all — n-body / unstructured interactions.
    AllToAll,
    /// Binary-tree convergence (i → i/2) — reductions / linear-algebra
    /// collectives.
    ReductionTree,
}

impl PatternClass {
    /// Every class, in a fixed order.
    pub const ALL: [PatternClass; 7] = [
        PatternClass::Pipeline,
        PatternClass::Ring1D,
        PatternClass::Grid2D,
        PatternClass::MasterWorker,
        PatternClass::Butterfly,
        PatternClass::AllToAll,
        PatternClass::ReductionTree,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            PatternClass::Pipeline => "pipeline",
            PatternClass::Ring1D => "ring-1d",
            PatternClass::Grid2D => "grid-2d",
            PatternClass::MasterWorker => "master-worker",
            PatternClass::Butterfly => "butterfly",
            PatternClass::AllToAll => "all-to-all",
            PatternClass::ReductionTree => "reduction-tree",
        }
    }
}

impl std::fmt::Display for PatternClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generate a labelled synthetic communication matrix.
///
/// `noise` ∈ [0, 1): fraction of the pattern's volume scattered uniformly
/// over random off-pattern cells (models false positives and incidental
/// sharing — §VI notes classification must tolerate FP noise).
pub fn generate(class: PatternClass, t: usize, seed: u64, noise: f64) -> DenseMatrix {
    assert!(
        t >= 4,
        "patterns need at least 4 threads (paper: ≥8 advisable)"
    );
    assert!((0.0..1.0).contains(&noise));
    let mut rng = SplitMix64(seed ^ (class as u64).wrapping_mul(0x51ed_2701));
    let mut m = DenseMatrix::zero(t);
    let unit = 1000u64;
    let jitter = |rng: &mut SplitMix64| unit / 2 + rng.below(unit);

    match class {
        PatternClass::Pipeline => {
            for i in 0..t - 1 {
                m.bump(i, i + 1, 4 * jitter(&mut rng));
            }
        }
        PatternClass::Ring1D => {
            for i in 0..t {
                let v = 2 * jitter(&mut rng);
                m.bump(i, (i + 1) % t, v);
                m.bump((i + 1) % t, i, v);
            }
        }
        PatternClass::Grid2D => {
            // Arrange threads on an approximately square grid.
            let w = (t as f64).sqrt().round().max(2.0) as usize;
            for i in 0..t {
                let x = i % w;
                let mut link = |j: usize, rng: &mut SplitMix64| {
                    if j < t && j != i {
                        let v = 2 * jitter(rng);
                        m.bump(i, j, v);
                        m.bump(j, i, v);
                    }
                };
                if x + 1 < w {
                    link(i + 1, &mut rng);
                }
                link(i + w, &mut rng);
            }
        }
        PatternClass::MasterWorker => {
            for i in 1..t {
                m.bump(0, i, 3 * jitter(&mut rng)); // task distribution
                m.bump(i, 0, jitter(&mut rng)); // result collection
            }
        }
        PatternClass::Butterfly => {
            let mut k = 1;
            while k < t {
                for i in 0..t {
                    let j = i ^ k;
                    if j < t && j > i {
                        let v = jitter(&mut rng);
                        m.bump(i, j, v);
                        m.bump(j, i, v);
                    }
                }
                k <<= 1;
            }
        }
        PatternClass::AllToAll => {
            for i in 0..t {
                for j in 0..t {
                    if i != j {
                        m.bump(i, j, jitter(&mut rng) / 4 + unit / 4);
                    }
                }
            }
        }
        PatternClass::ReductionTree => {
            for i in 1..t {
                m.bump(i, i / 2, 3 * jitter(&mut rng));
            }
        }
    }

    if noise > 0.0 {
        let total = m.total();
        let noise_budget = (total as f64 * noise / (1.0 - noise)) as u64;
        let grains = (t * t / 2).max(1) as u64;
        for _ in 0..grains {
            let i = rng.below(t as u64) as usize;
            let j = rng.below(t as u64) as usize;
            if i != j {
                m.bump(i, j, noise_budget / grains);
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_expected_topology() {
        let t = 16;
        let pipe = generate(PatternClass::Pipeline, t, 1, 0.0);
        assert!(pipe.get(0, 1) > 0);
        assert_eq!(pipe.get(1, 0), 0); // unidirectional
        assert!(pipe.symmetry() < 0.2);

        let ring = generate(PatternClass::Ring1D, t, 1, 0.0);
        assert!(ring.get(0, 1) > 0 && ring.get(1, 0) > 0);
        assert!(ring.symmetry() > 0.99);
        assert!(ring.get(0, t - 1) > 0); // wraparound

        let mw = generate(PatternClass::MasterWorker, t, 1, 0.0);
        assert!(mw.get(0, 5) > 0 && mw.get(5, 0) > 0);
        assert_eq!(mw.get(3, 5), 0);

        let bf = generate(PatternClass::Butterfly, t, 1, 0.0);
        assert!(bf.get(0, 1) > 0 && bf.get(0, 2) > 0 && bf.get(0, 4) > 0 && bf.get(0, 8) > 0);
        assert_eq!(bf.get(0, 3), 0); // 3 is not a power-of-two distance

        let a2a = generate(PatternClass::AllToAll, t, 1, 0.0);
        assert!((0..t).all(|i| (0..t).all(|j| i == j || a2a.get(i, j) > 0)));

        let tree = generate(PatternClass::ReductionTree, t, 1, 0.0);
        assert!(tree.get(5, 2) > 0 && tree.get(4, 2) > 0);
        assert_eq!(tree.get(2, 5), 0);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(PatternClass::Grid2D, 16, 42, 0.1);
        let b = generate(PatternClass::Grid2D, 16, 42, 0.1);
        let c = generate(PatternClass::Grid2D, 16, 43, 0.1);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn noise_adds_off_pattern_volume() {
        let clean = generate(PatternClass::Pipeline, 16, 7, 0.0);
        let noisy = generate(PatternClass::Pipeline, 16, 7, 0.3);
        // Pipeline has zero sub-diagonal traffic; noise must add some.
        let sub_clean: u64 = (1..16).map(|i| clean.get(i, i - 1)).sum();
        let sub_noisy: u64 = (1..16).map(|i| noisy.get(i, i - 1)).sum();
        assert_eq!(sub_clean, 0);
        assert!(sub_noisy > 0);
    }

    #[test]
    fn splitmix_is_uniformish() {
        let mut r = SplitMix64(1);
        let mean: f64 = (0..10_000).map(|_| r.next_f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02);
    }

    #[test]
    fn all_classes_listed_once() {
        let mut names: Vec<&str> = PatternClass::ALL.iter().map(|c| c.name()).collect();
        names.dedup();
        assert_eq!(names.len(), 7);
    }
}
