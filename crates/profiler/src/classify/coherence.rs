//! Coherence-aware pattern classification — separating true- from
//! false-sharing variants of the §VI topology classes.
//!
//! The ten structural features of [`super::features`] are functions of the
//! RAW communication matrix alone, and false sharing is *invisible* there:
//! a padded and an unpadded counter array produce identical RAW matrices.
//! The coherence backend (`lc-cachesim`) supplies three additional
//! scale-free features — invalidations per access, false-sharing byte
//! ratio, and transfer locality — and this module extends the
//! nearest-centroid model over the concatenated 13-dimensional vector so
//! each topology class splits into a true-sharing and a false-sharing
//! variant.

use std::fmt;

use super::classifier::Sample;
use super::features::{extract, N_FEATURES};
use super::patterns::{generate, PatternClass, SplitMix64};
use crate::matrix::DenseMatrix;

/// Number of coherence-side features.
pub const N_COH_FEATURES: usize = 3;

/// Extended feature-vector width: structural + coherence.
pub const N_EXT_FEATURES: usize = N_FEATURES + N_COH_FEATURES;

/// Names of the coherence features, index-aligned with
/// [`CoherenceFeatures::vector`].
pub const COHERENCE_FEATURE_NAMES: [&str; N_COH_FEATURES] = [
    "inval_per_access",
    "false_sharing_ratio",
    "transfer_locality",
];

/// Saturation point of the false-sharing feature: once a quarter of the
/// pulled bytes go untouched, the run is false-sharing dominated and the
/// classifier should not care *how* dominated. [`CoherenceFeatures::vector`]
/// encodes `min(ratio / FS_SATURATION, 1)`, which pushes real recorded
/// splits (padded: exactly 0; unpadded: ~0.3–0.45 under bursty real
/// scheduling) to the opposite ends of the unit interval.
pub const FS_SATURATION: f64 = 0.25;

/// The three scale-free coherence features, each in `[0, 1]`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CoherenceFeatures {
    /// Invalidations per instrumented access (clamped to 1): near zero
    /// for private or read-shared data, high for write ping-pong.
    pub inval_per_access: f64,
    /// `false_bytes / (false_bytes + true_bytes)` of the coherence
    /// report's byte split.
    pub false_sharing_ratio: f64,
    /// Fraction of transfer volume between adjacent thread ids.
    pub transfer_locality: f64,
}

impl CoherenceFeatures {
    /// Build from the raw report values, clamping everything into `[0, 1]`.
    pub fn new(inval_per_access: f64, false_sharing_ratio: f64, transfer_locality: f64) -> Self {
        Self {
            inval_per_access: inval_per_access.clamp(0.0, 1.0),
            false_sharing_ratio: false_sharing_ratio.clamp(0.0, 1.0),
            transfer_locality: transfer_locality.clamp(0.0, 1.0),
        }
    }

    /// The features as an array, ordered as [`COHERENCE_FEATURE_NAMES`].
    /// The false-sharing ratio is saturated at [`FS_SATURATION`] so the
    /// classifier sees presence, not magnitude.
    pub fn vector(&self) -> [f64; N_COH_FEATURES] {
        [
            self.inval_per_access,
            (self.false_sharing_ratio / FS_SATURATION).min(1.0),
            self.transfer_locality,
        ]
    }
}

/// Concatenate structural and coherence features.
pub fn extend(base: &[f64; N_FEATURES], coh: &CoherenceFeatures) -> [f64; N_EXT_FEATURES] {
    let mut out = [0.0; N_EXT_FEATURES];
    out[..N_FEATURES].copy_from_slice(base);
    out[N_FEATURES..].copy_from_slice(&coh.vector());
    out
}

/// Extract the full 13-dimensional vector from a matrix plus coherence
/// features.
pub fn extract_extended(m: &DenseMatrix, coh: &CoherenceFeatures) -> [f64; N_EXT_FEATURES] {
    extend(&extract(m), coh)
}

/// A topology class together with its sharing flavour.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SharingVariant {
    /// The base communication topology.
    pub class: PatternClass,
    /// True when the variant's coherence traffic is false-sharing
    /// dominated.
    pub false_sharing: bool,
}

impl fmt::Display for SharingVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}",
            self.class.name(),
            if self.false_sharing { "false" } else { "true" }
        )
    }
}

/// One labelled extended sample.
#[derive(Clone, Debug)]
pub struct ExtSample {
    /// Ground-truth variant.
    pub label: SharingVariant,
    /// The 13-dimensional feature vector.
    pub features: [f64; N_EXT_FEATURES],
}

/// Nearest-centroid over the extended vector — the same z-score-normalized
/// model as [`super::classifier::NearestCentroid`], at width
/// [`N_EXT_FEATURES`] and with [`SharingVariant`] labels.
#[derive(Clone, Debug)]
pub struct ExtNearestCentroid {
    centroids: Vec<(SharingVariant, [f64; N_EXT_FEATURES])>,
    mean: [f64; N_EXT_FEATURES],
    std: [f64; N_EXT_FEATURES],
}

impl ExtNearestCentroid {
    /// Train on labelled extended samples.
    ///
    /// # Panics
    /// If `samples` is empty.
    pub fn train(samples: &[ExtSample]) -> Self {
        assert!(!samples.is_empty(), "training set must not be empty");
        let n = samples.len() as f64;
        let mut mean = [0.0; N_EXT_FEATURES];
        for s in samples {
            for (m, f) in mean.iter_mut().zip(&s.features) {
                *m += f;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut std = [0.0; N_EXT_FEATURES];
        for s in samples {
            for ((v, f), m) in std.iter_mut().zip(&s.features).zip(&mean) {
                *v += (f - m) * (f - m);
            }
        }
        for v in &mut std {
            *v = (*v / n).sqrt().max(1e-9);
        }
        let mut acc: std::collections::BTreeMap<SharingVariant, ([f64; N_EXT_FEATURES], usize)> =
            std::collections::BTreeMap::new();
        for s in samples {
            let e = acc.entry(s.label).or_insert(([0.0; N_EXT_FEATURES], 0));
            for (c, (f, (m, sd))) in
                e.0.iter_mut()
                    .zip(s.features.iter().zip(mean.iter().zip(std.iter())))
            {
                *c += (f - m) / sd;
            }
            e.1 += 1;
        }
        let centroids = acc
            .into_iter()
            .map(|(label, (sum, k))| {
                let mut c = sum;
                for v in &mut c {
                    *v /= k as f64;
                }
                (label, c)
            })
            .collect();
        Self {
            centroids,
            mean,
            std,
        }
    }

    /// Predict the variant of an extended feature vector.
    pub fn predict(&self, features: &[f64; N_EXT_FEATURES]) -> SharingVariant {
        let mut x = [0.0; N_EXT_FEATURES];
        for i in 0..N_EXT_FEATURES {
            x[i] = (features[i] - self.mean[i]) / self.std[i];
        }
        self.centroids
            .iter()
            .min_by(|a, b| {
                let da: f64 = x.iter().zip(&a.1).map(|(p, q)| (p - q) * (p - q)).sum();
                let db: f64 = x.iter().zip(&b.1).map(|(p, q)| (p - q) * (p - q)).sum();
                da.partial_cmp(&db).expect("finite distances")
            })
            .expect("trained model has centroids")
            .0
    }

    /// Fraction of `samples` predicted correctly.
    pub fn accuracy(&self, samples: &[ExtSample]) -> f64 {
        if samples.is_empty() {
            return 1.0;
        }
        let correct = samples
            .iter()
            .filter(|s| self.predict(&s.features) == s.label)
            .count();
        correct as f64 / samples.len() as f64
    }
}

/// Synthesize coherence features for one variant. The byte split is the
/// sole flavour discriminator: true-sharing variants keep it near zero,
/// false-sharing variants push it past the saturation knee. The
/// invalidation rate deliberately shares one distribution across flavours
/// — real recorded traces show it barely moves (bursty scheduling
/// serializes the ping-pong), and a synthetic gap reality does not have
/// would misclassify real runs. Locality follows the base matrix's
/// neighbour fraction with jitter, so it stays consistent with the
/// topology.
pub(crate) fn synthetic_coherence(
    base: &[f64; N_FEATURES],
    false_sharing: bool,
    rng: &mut SplitMix64,
) -> CoherenceFeatures {
    let inval = 0.15 * rng.next_f64();
    let fs = if false_sharing {
        0.15 + 0.80 * rng.next_f64()
    } else {
        0.04 * rng.next_f64()
    };
    let locality = (base[0] + 0.1 * (rng.next_f64() - 0.5)).clamp(0.0, 1.0);
    CoherenceFeatures::new(inval, fs, locality)
}

/// Labelled extended dataset: every `(class, sharing)` variant gets
/// `per_class` samples at thread count `t`, noise levels cycling over
/// `noises` — the 14-way analogue of
/// [`super::classifier::synthetic_dataset`].
pub fn synthetic_ext_dataset(
    t: usize,
    per_class: usize,
    noises: &[f64],
    seed: u64,
) -> Vec<ExtSample> {
    let mut out = Vec::with_capacity(2 * per_class * PatternClass::ALL.len());
    for class in PatternClass::ALL {
        for false_sharing in [false, true] {
            let mut rng = SplitMix64(
                seed ^ (class as u64).wrapping_mul(0x9e37_79b9) ^ ((false_sharing as u64) << 32),
            );
            for k in 0..per_class {
                let noise = noises[k % noises.len()];
                let m = generate(class, t, seed.wrapping_add(k as u64 * 7919), noise);
                let base = Sample::from_matrix(class, &m).features;
                let coh = synthetic_coherence(&base, false_sharing, &mut rng);
                out.push(ExtSample {
                    label: SharingVariant {
                        class,
                        false_sharing,
                    },
                    features: extend(&base, &coh),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_separate_cleanly() {
        let train = synthetic_ext_dataset(16, 20, &[0.0, 0.05], 1);
        let test = synthetic_ext_dataset(16, 10, &[0.0, 0.05], 9999);
        let model = ExtNearestCentroid::train(&train);
        let acc = model.accuracy(&test);
        assert!(
            acc >= 0.97,
            "extended accuracy {acc:.3} below 97% on 14 variants"
        );
    }

    #[test]
    fn false_sharing_flag_dominates_base_class_confusion() {
        // Even when the base class is misjudged, the sharing flavour must
        // never be: the coherence features split the space in half.
        let train = synthetic_ext_dataset(16, 20, &[0.0, 0.1], 2);
        let test = synthetic_ext_dataset(16, 10, &[0.0, 0.1], 777);
        let model = ExtNearestCentroid::train(&train);
        for s in &test {
            let p = model.predict(&s.features);
            assert_eq!(
                p.false_sharing, s.label.false_sharing,
                "sharing flavour confused on {}",
                s.label
            );
        }
    }

    #[test]
    fn extend_concatenates_in_order() {
        let base = [0.5; N_FEATURES];
        let coh = CoherenceFeatures::new(0.1, 0.2, 0.3);
        let v = extend(&base, &coh);
        assert_eq!(v[N_FEATURES - 1], 0.5);
        assert_eq!(v[N_FEATURES], 0.1);
        assert_eq!(v[N_EXT_FEATURES - 1], 0.3);
    }

    #[test]
    fn clamping_keeps_features_in_unit_range() {
        let c = CoherenceFeatures::new(3.0, -1.0, 0.5);
        assert_eq!(c.vector(), [1.0, 0.0, 0.5]);
    }
}
