//! Nearest-centroid pattern classifier.
//!
//! §VI: "We succeeded to detect these pattern\[s\] with more than 97%
//! accuracy with the aid of algorithmic methods and supervised learning."
//! The paper does not name its learner; with the scale-free features of
//! [`crate::classify::features`] the classes are compact and well separated,
//! so a z-score-normalized nearest-centroid model reproduces the claim while
//! remaining dependency-free and auditable.

use std::collections::BTreeMap;

use crate::classify::features::{extract, N_FEATURES};
use crate::classify::patterns::PatternClass;
use crate::matrix::DenseMatrix;

/// A labelled training/evaluation sample.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Ground-truth class.
    pub label: PatternClass,
    /// Extracted feature vector.
    pub features: [f64; N_FEATURES],
}

impl Sample {
    /// Extract features from a labelled matrix.
    pub fn from_matrix(label: PatternClass, m: &DenseMatrix) -> Self {
        Self {
            label,
            features: extract(m),
        }
    }
}

/// Nearest-centroid classifier with per-feature z-score normalization.
///
/// ```
/// use lc_profiler::classify::{generate, synthetic_dataset, NearestCentroid, PatternClass};
///
/// let train = synthetic_dataset(16, 10, &[0.0, 0.1], 1);
/// let model = NearestCentroid::train(&train);
/// let unseen = generate(PatternClass::MasterWorker, 16, 4242, 0.05);
/// assert_eq!(model.predict(&unseen), PatternClass::MasterWorker);
/// ```
#[derive(Clone, Debug)]
pub struct NearestCentroid {
    centroids: Vec<(PatternClass, [f64; N_FEATURES])>,
    mean: [f64; N_FEATURES],
    std: [f64; N_FEATURES],
}

impl NearestCentroid {
    /// Train on labelled samples.
    ///
    /// # Panics
    /// If `samples` is empty.
    pub fn train(samples: &[Sample]) -> Self {
        assert!(!samples.is_empty(), "training set must not be empty");

        // Global normalization statistics.
        let mut mean = [0.0; N_FEATURES];
        for s in samples {
            for (m, f) in mean.iter_mut().zip(&s.features) {
                *m += f;
            }
        }
        for m in &mut mean {
            *m /= samples.len() as f64;
        }
        let mut std = [0.0; N_FEATURES];
        for s in samples {
            for ((v, f), m) in std.iter_mut().zip(&s.features).zip(&mean) {
                *v += (f - m) * (f - m);
            }
        }
        for v in &mut std {
            *v = (*v / samples.len() as f64).sqrt().max(1e-9);
        }

        // Per-class centroids in normalized space.
        let mut acc: BTreeMap<PatternClass, ([f64; N_FEATURES], usize)> = BTreeMap::new();
        for s in samples {
            let e = acc.entry(s.label).or_insert(([0.0; N_FEATURES], 0));
            for (c, (f, (m, sd))) in
                e.0.iter_mut()
                    .zip(s.features.iter().zip(mean.iter().zip(std.iter())))
            {
                *c += (f - m) / sd;
            }
            e.1 += 1;
        }
        let centroids = acc
            .into_iter()
            .map(|(class, (sum, n))| {
                let mut c = sum;
                for v in &mut c {
                    *v /= n as f64;
                }
                (class, c)
            })
            .collect();

        Self {
            centroids,
            mean,
            std,
        }
    }

    fn normalize(&self, f: &[f64; N_FEATURES]) -> [f64; N_FEATURES] {
        let mut out = [0.0; N_FEATURES];
        for i in 0..N_FEATURES {
            out[i] = (f[i] - self.mean[i]) / self.std[i];
        }
        out
    }

    /// Predict the class of a feature vector.
    pub fn predict_features(&self, features: &[f64; N_FEATURES]) -> PatternClass {
        let x = self.normalize(features);
        self.centroids
            .iter()
            .min_by(|a, b| {
                dist2(&x, &a.1)
                    .partial_cmp(&dist2(&x, &b.1))
                    .expect("finite distances")
            })
            .expect("trained model has centroids")
            .0
    }

    /// Predict the class of a communication matrix.
    pub fn predict(&self, m: &DenseMatrix) -> PatternClass {
        self.predict_features(&extract(m))
    }

    /// Evaluate on labelled samples.
    pub fn evaluate(&self, samples: &[Sample]) -> Evaluation {
        let mut confusion: BTreeMap<(PatternClass, PatternClass), usize> = BTreeMap::new();
        let mut correct = 0;
        for s in samples {
            let pred = self.predict_features(&s.features);
            if pred == s.label {
                correct += 1;
            }
            *confusion.entry((s.label, pred)).or_insert(0) += 1;
        }
        Evaluation {
            total: samples.len(),
            correct,
            confusion,
        }
    }
}

fn dist2(a: &[f64; N_FEATURES], b: &[f64; N_FEATURES]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Classification quality summary.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// Evaluated samples.
    pub total: usize,
    /// Correctly classified samples.
    pub correct: usize,
    /// `(truth, prediction) -> count`.
    pub confusion: BTreeMap<(PatternClass, PatternClass), usize>,
}

impl Evaluation {
    /// Fraction correct ∈ [0, 1].
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.correct as f64 / self.total as f64
    }

    /// Render the confusion matrix as a table.
    pub fn render(&self) -> String {
        let classes = PatternClass::ALL;
        let mut out = String::from("truth \\ pred    ");
        for c in classes {
            out.push_str(&format!("{:>15}", c.name()));
        }
        out.push('\n');
        for truth in classes {
            out.push_str(&format!("{:<15}", truth.name()));
            for pred in classes {
                let n = self.confusion.get(&(truth, pred)).copied().unwrap_or(0);
                out.push_str(&format!("{n:>15}"));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "accuracy: {}/{} = {:.1}%\n",
            self.correct,
            self.total,
            self.accuracy() * 100.0
        ));
        out
    }
}

/// Generate a labelled dataset across all classes: `per_class` samples per
/// class at thread count `t`, with noise levels cycling over `noises`.
pub fn synthetic_dataset(t: usize, per_class: usize, noises: &[f64], seed: u64) -> Vec<Sample> {
    use crate::classify::patterns::generate;
    let mut out = Vec::with_capacity(per_class * PatternClass::ALL.len());
    for class in PatternClass::ALL {
        for k in 0..per_class {
            let noise = noises[k % noises.len()];
            let m = generate(class, t, seed.wrapping_add(k as u64 * 7919), noise);
            out.push(Sample::from_matrix(class, &m));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_on_clean_data() {
        let train = synthetic_dataset(16, 20, &[0.0, 0.05], 1);
        let test = synthetic_dataset(16, 10, &[0.0, 0.05], 9999);
        let model = NearestCentroid::train(&train);
        let eval = model.evaluate(&test);
        assert!(
            eval.accuracy() >= 0.97,
            "accuracy {:.3} below paper's 97%\n{}",
            eval.accuracy(),
            eval.render()
        );
    }

    #[test]
    fn robust_to_moderate_noise() {
        let train = synthetic_dataset(16, 30, &[0.0, 0.1, 0.2], 2);
        let test = synthetic_dataset(16, 15, &[0.15], 555);
        let model = NearestCentroid::train(&train);
        let eval = model.evaluate(&test);
        assert!(
            eval.accuracy() >= 0.9,
            "noisy accuracy {:.3}\n{}",
            eval.accuracy(),
            eval.render()
        );
    }

    #[test]
    fn generalizes_across_thread_counts() {
        // Train at t=16, test at t=32: features are scale-free.
        let train = synthetic_dataset(16, 20, &[0.0, 0.1], 3);
        let test = synthetic_dataset(32, 10, &[0.05], 777);
        let model = NearestCentroid::train(&train);
        let eval = model.evaluate(&test);
        assert!(
            eval.accuracy() >= 0.85,
            "cross-size accuracy {:.3}\n{}",
            eval.accuracy(),
            eval.render()
        );
    }

    #[test]
    fn predict_on_matrix_directly() {
        let train = synthetic_dataset(16, 10, &[0.0], 4);
        let model = NearestCentroid::train(&train);
        let m = crate::classify::patterns::generate(PatternClass::Pipeline, 16, 123, 0.0);
        assert_eq!(model.predict(&m), PatternClass::Pipeline);
    }

    #[test]
    fn render_includes_accuracy_line() {
        let train = synthetic_dataset(8, 5, &[0.0], 5);
        let model = NearestCentroid::train(&train);
        let eval = model.evaluate(&train);
        assert!(eval.render().contains("accuracy"));
    }

    #[test]
    #[should_panic(expected = "training set must not be empty")]
    fn empty_training_panics() {
        let _ = NearestCentroid::train(&[]);
    }
}
