//! Topology features extracted from communication matrices.
//!
//! The classifier does not look at raw cells (matrices of different thread
//! counts and volumes must be comparable); it looks at a fixed-length
//! vector of scale-free structural features. Each feature is the fraction
//! of total communication volume carried by cells with a given structural
//! role, plus two shape statistics.

use crate::matrix::DenseMatrix;

/// Number of features extracted per matrix.
pub const N_FEATURES: usize = 10;

/// Human-readable feature names, aligned with [`extract`]'s output order.
pub const FEATURE_NAMES: [&str; N_FEATURES] = [
    "neighbor_frac",  // |i-j| == 1 (non-wrap)
    "wrap_frac",      // ring wraparound cells (0,t-1)/(t-1,0)
    "directionality", // upper vs lower traffic skew [0,1]
    "master_frac",    // row 0 + column 0
    "pow2_frac",      // |i-j| == 2^k, k >= 1
    "grid_frac",      // |i-j| == row width of a square grid
    "tree_frac",      // j == i/2 (binary-tree parent)
    "symmetry",       // 1 - |M - Mᵀ| / 2·total
    "density",        // fraction of non-zero off-diagonal cells
    "row_cv",         // coefficient of variation of row sums (capped /3)
];

/// Extract the feature vector of a matrix. All features lie in [0, 1];
/// an all-zero matrix maps to the zero vector.
pub fn extract(m: &DenseMatrix) -> [f64; N_FEATURES] {
    let t = m.threads();
    let total = m.total();
    if total == 0 {
        return [0.0; N_FEATURES];
    }
    let totf = total as f64;
    let grid_w = (t as f64).sqrt().round().max(2.0) as usize;

    let mut neighbor = 0u64;
    let mut wrap = 0u64;
    let mut upper = 0u64;
    let mut lower = 0u64;
    let mut master = 0u64;
    let mut pow2 = 0u64;
    let mut grid = 0u64;
    let mut tree = 0u64;
    let mut nonzero = 0usize;

    for i in 0..t {
        for j in 0..t {
            let v = m.get(i, j);
            if i == j || v == 0 {
                continue;
            }
            nonzero += 1;
            let d = i.abs_diff(j);
            if d == 1 {
                neighbor += v;
            }
            if (i == 0 && j == t - 1) || (i == t - 1 && j == 0) {
                wrap += v;
            }
            if j > i {
                upper += v;
            } else {
                lower += v;
            }
            if i == 0 || j == 0 {
                master += v;
            }
            if d >= 2 && d.is_power_of_two() {
                pow2 += v;
            }
            if d == grid_w {
                grid += v;
            }
            if j == i / 2 && i >= 1 {
                tree += v;
            }
        }
    }

    let row_sums = m.row_sums();
    let mean_row = totf / t as f64;
    let row_var = row_sums
        .iter()
        .map(|&s| {
            let d = s as f64 - mean_row;
            d * d
        })
        .sum::<f64>()
        / t as f64;
    let row_cv = if mean_row > 0.0 {
        (row_var.sqrt() / mean_row / 3.0).min(1.0)
    } else {
        0.0
    };

    let directionality = if upper + lower > 0 {
        (upper as f64 - lower as f64).abs() / (upper + lower) as f64
    } else {
        0.0
    };

    [
        neighbor as f64 / totf,
        wrap as f64 / totf,
        directionality,
        master as f64 / totf,
        pow2 as f64 / totf,
        grid as f64 / totf,
        tree as f64 / totf,
        m.symmetry(),
        nonzero as f64 / (t * (t - 1)) as f64,
        row_cv,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::patterns::{generate, PatternClass};

    #[test]
    fn features_are_bounded() {
        for class in PatternClass::ALL {
            for seed in 0..5 {
                let f = extract(&generate(class, 16, seed, 0.2));
                for (i, &v) in f.iter().enumerate() {
                    assert!(
                        (0.0..=1.0).contains(&v),
                        "{class}: feature {} = {v}",
                        FEATURE_NAMES[i]
                    );
                }
            }
        }
    }

    #[test]
    fn zero_matrix_maps_to_zero_vector() {
        assert_eq!(extract(&DenseMatrix::zero(8)), [0.0; N_FEATURES]);
    }

    #[test]
    fn pipeline_is_directional_and_neighbor_heavy() {
        let f = extract(&generate(PatternClass::Pipeline, 16, 3, 0.0));
        assert!(f[0] > 0.9, "neighbor_frac = {}", f[0]);
        assert!(f[2] > 0.9, "directionality = {}", f[2]);
    }

    #[test]
    fn ring_is_symmetric_neighbor_with_wrap() {
        let f = extract(&generate(PatternClass::Ring1D, 16, 3, 0.0));
        assert!(f[0] > 0.7);
        assert!(f[1] > 0.05); // wraparound present
        assert!(f[7] > 0.95); // symmetric
        assert!(f[2] < 0.1); // no direction skew
    }

    #[test]
    fn butterfly_has_pow2_mass() {
        let f = extract(&generate(PatternClass::Butterfly, 16, 3, 0.0));
        assert!(f[4] > 0.5, "pow2_frac = {}", f[4]);
    }

    #[test]
    fn master_worker_concentrates_on_row_col_zero() {
        let f = extract(&generate(PatternClass::MasterWorker, 16, 3, 0.0));
        assert!(f[3] > 0.95);
        assert!(f[9] > 0.3); // thread 0's row dwarfs the rest
    }

    #[test]
    fn all_to_all_is_dense_and_even() {
        let f = extract(&generate(PatternClass::AllToAll, 16, 3, 0.0));
        assert!(f[8] > 0.95); // density
        assert!(f[9] < 0.2); // even rows
        assert!(f[7] > 0.8); // near-symmetric
    }

    #[test]
    fn tree_feature_fires_for_reduction() {
        let f = extract(&generate(PatternClass::ReductionTree, 16, 3, 0.0));
        assert!(f[6] > 0.9, "tree_frac = {}", f[6]);
    }
}
