//! Communication matrices.
//!
//! §IV-D: "Communication matrix is a n × n adjacency matrix while n is the
//! number of threads available in the program. It defines the volume of
//! data dependencies among the threads while the program is running."
//!
//! [`CommMatrix`] is the concurrent accumulator updated inline by
//! application threads (cell `[src][dst]` counts bytes communicated from
//! producer `src` to consumer `dst`); [`DenseMatrix`] is its immutable
//! snapshot with the arithmetic the reports, metrics and classifier need.

use std::sync::atomic::{AtomicU64, Ordering};

/// Concurrent t×t byte-volume accumulator.
///
/// Plain (unpadded) atomics: with t ≤ 64 a matrix is ≤ 32 KiB, and padding
/// every cell to a cache line would multiply the per-loop matrix footprint
/// by 16 for a structure the paper calls "negligible in comparison with the
/// size of signature memory" (§V-A2). Cross-thread contention on shared
/// cells is instead handled a layer up: the profiler's sharded path
/// ([`crate::shards`]) aggregates dependences in per-thread delta buffers
/// and only touches these atomics once per flush epoch, so `add` is off the
/// per-dependence hot path in the default configuration. Cell addition is
/// commutative, which is what makes that batching lossless.
#[derive(Debug)]
pub struct CommMatrix {
    t: usize,
    cells: Box<[AtomicU64]>,
}

impl CommMatrix {
    /// New zeroed matrix for `t` threads.
    pub fn new(t: usize) -> Self {
        assert!(t >= 1);
        let cells = (0..t * t).map(|_| AtomicU64::new(0)).collect();
        Self { t, cells }
    }

    /// Thread count.
    pub fn threads(&self) -> usize {
        self.t
    }

    /// Record `bytes` communicated from producer `src` to consumer `dst`.
    #[inline]
    pub fn add(&self, src: u32, dst: u32, bytes: u64) {
        debug_assert!((src as usize) < self.t && (dst as usize) < self.t);
        self.cells[src as usize * self.t + dst as usize].fetch_add(bytes, Ordering::Relaxed);
    }

    /// Current value of one cell.
    pub fn get(&self, src: u32, dst: u32) -> u64 {
        self.cells[src as usize * self.t + dst as usize].load(Ordering::Relaxed)
    }

    /// Accumulate a dense snapshot into this live matrix — the checkpoint
    /// restore path (cell addition is commutative, so seeding before replay
    /// resumes is equivalent to having recorded the prefix live).
    pub fn add_dense(&self, other: &DenseMatrix) {
        assert_eq!(self.t, other.t, "matrix thread-count mismatch");
        for (cell, &v) in self.cells.iter().zip(&other.data) {
            if v != 0 {
                cell.fetch_add(v, Ordering::Relaxed);
            }
        }
    }

    /// Immutable snapshot.
    pub fn snapshot(&self) -> DenseMatrix {
        DenseMatrix {
            t: self.t,
            data: self
                .cells
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.cells.len() * 8
    }
}

/// Immutable t×t byte-volume matrix with report/metric arithmetic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DenseMatrix {
    t: usize,
    data: Vec<u64>,
}

impl DenseMatrix {
    /// New zero matrix.
    pub fn zero(t: usize) -> Self {
        assert!(t >= 1);
        Self {
            t,
            data: vec![0; t * t],
        }
    }

    /// Build from row-major data.
    pub fn from_rows(t: usize, data: Vec<u64>) -> Self {
        assert_eq!(data.len(), t * t);
        Self { t, data }
    }

    /// Thread count.
    pub fn threads(&self) -> usize {
        self.t
    }

    /// Cell value.
    #[inline]
    pub fn get(&self, src: usize, dst: usize) -> u64 {
        self.data[src * self.t + dst]
    }

    /// Set a cell.
    #[inline]
    pub fn set(&mut self, src: usize, dst: usize, v: u64) {
        self.data[src * self.t + dst] = v;
    }

    /// Add to a cell.
    #[inline]
    pub fn bump(&mut self, src: usize, dst: usize, v: u64) {
        self.data[src * self.t + dst] += v;
    }

    /// Row-major data.
    pub fn data(&self) -> &[u64] {
        &self.data
    }

    /// Element-wise sum (the "final communication matrix can be obtained by
    /// summing all its child matrices together", §V-A4).
    pub fn add(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.t, other.t);
        DenseMatrix {
            t: self.t,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// In-place element-wise accumulate.
    pub fn accumulate(&mut self, other: &DenseMatrix) {
        assert_eq!(self.t, other.t);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise saturating difference.
    pub fn saturating_sub(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.t, other.t);
        DenseMatrix {
            t: self.t,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
        }
    }

    /// Total communicated bytes.
    pub fn total(&self) -> u64 {
        self.data.iter().sum()
    }

    /// True when no communication was recorded.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&v| v == 0)
    }

    /// Per-producer row sums.
    pub fn row_sums(&self) -> Vec<u64> {
        (0..self.t)
            .map(|i| self.data[i * self.t..(i + 1) * self.t].iter().sum())
            .collect()
    }

    /// Per-consumer column sums.
    pub fn col_sums(&self) -> Vec<u64> {
        (0..self.t)
            .map(|j| (0..self.t).map(|i| self.get(i, j)).sum())
            .collect()
    }

    /// Largest cell value.
    pub fn max(&self) -> u64 {
        self.data.iter().copied().max().unwrap_or(0)
    }

    /// Values normalized to fractions of the total (all-zero stays zero).
    pub fn normalized(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.data.len()];
        }
        self.data.iter().map(|&v| v as f64 / total as f64).collect()
    }

    /// L1 distance between the normalized forms — the phase-transition
    /// metric ∈ [0, 2].
    pub fn l1_distance(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.t, other.t);
        self.normalized()
            .iter()
            .zip(other.normalized())
            .map(|(a, b)| (a - b).abs())
            .sum()
    }

    /// Symmetry score ∈ [0, 1]: 1 for perfectly symmetric communication.
    pub fn symmetry(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        let asym: u64 = (0..self.t)
            .flat_map(|i| (0..self.t).map(move |j| (i, j)))
            .filter(|(i, j)| i < j)
            .map(|(i, j)| self.get(i, j).abs_diff(self.get(j, i)))
            .sum();
        1.0 - asym as f64 / total as f64
    }

    /// ASCII heat map in the style of the paper's Figures 6–8 (producer
    /// rows top-to-bottom, consumer columns left-to-right, darker = more).
    pub fn heatmap(&self) -> String {
        const SHADES: &[u8] = b" .:-=+*#%@";
        let max = self.max();
        let mut out = String::with_capacity((self.t + 3) * (self.t + 3));
        out.push_str(&format!("      consumers 0..{}\n", self.t - 1));
        for i in 0..self.t {
            out.push_str(&format!("{i:>4} |"));
            for j in 0..self.t {
                let v = self.get(i, j);
                let shade = if max == 0 || v == 0 {
                    b' '
                } else {
                    // log scale: tiny values visible, peaks saturated
                    let f = ((v as f64).ln_1p() / (max as f64).ln_1p()).clamp(0.0, 1.0);
                    SHADES[((f * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1)]
                };
                out.push(shade as char);
            }
            out.push_str("|\n");
        }
        out
    }

    /// CSV rendering (one row per producer).
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        for i in 0..self.t {
            let row: Vec<String> = (0..self.t).map(|j| self.get(i, j).to_string()).collect();
            s.push_str(&row.join(","));
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn concurrent_adds_accumulate() {
        let m = Arc::new(CommMatrix::new(4));
        let mut hs = Vec::new();
        for tid in 0..4u32 {
            let m = Arc::clone(&m);
            hs.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    m.add(tid, (tid + 1) % 4, 8);
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        let s = m.snapshot();
        assert_eq!(s.total(), 4 * 1000 * 8);
        assert_eq!(s.get(0, 1), 8000);
        assert_eq!(m.get(0, 1), 8000);
        assert_eq!(m.memory_bytes(), 16 * 8);
    }

    #[test]
    fn sums_and_totals() {
        let mut m = DenseMatrix::zero(3);
        m.set(0, 1, 10);
        m.set(1, 2, 5);
        m.bump(1, 2, 5);
        assert_eq!(m.total(), 20);
        assert_eq!(m.row_sums(), vec![10, 10, 0]);
        assert_eq!(m.col_sums(), vec![0, 10, 10]);
        assert_eq!(m.max(), 10);
        assert!(!m.is_zero());
    }

    #[test]
    fn add_and_accumulate_agree() {
        let mut a = DenseMatrix::zero(2);
        a.set(0, 1, 3);
        let mut b = DenseMatrix::zero(2);
        b.set(1, 0, 4);
        let c = a.add(&b);
        let mut d = a.clone();
        d.accumulate(&b);
        assert_eq!(c, d);
        assert_eq!(c.total(), 7);
        assert_eq!(c.saturating_sub(&a), b);
    }

    #[test]
    fn normalized_sums_to_one() {
        let mut m = DenseMatrix::zero(2);
        m.set(0, 1, 1);
        m.set(1, 0, 3);
        let n = m.normalized();
        assert!((n.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((n[1] - 0.25).abs() < 1e-12);
        assert!(DenseMatrix::zero(2).normalized().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn l1_distance_bounds() {
        let mut a = DenseMatrix::zero(2);
        a.set(0, 1, 10);
        let mut b = DenseMatrix::zero(2);
        b.set(1, 0, 10);
        assert!((a.l1_distance(&b) - 2.0).abs() < 1e-12); // disjoint support
        assert_eq!(a.l1_distance(&a), 0.0);
    }

    #[test]
    fn symmetry_score() {
        let mut sym = DenseMatrix::zero(3);
        sym.set(0, 1, 5);
        sym.set(1, 0, 5);
        assert!((sym.symmetry() - 1.0).abs() < 1e-12);
        let mut asym = DenseMatrix::zero(3);
        asym.set(0, 1, 5);
        assert!(asym.symmetry() < 0.5);
        assert_eq!(DenseMatrix::zero(2).symmetry(), 1.0);
    }

    #[test]
    fn heatmap_and_csv_render() {
        let mut m = DenseMatrix::zero(2);
        m.set(0, 1, 100);
        let h = m.heatmap();
        assert!(h.contains('@'));
        assert_eq!(m.to_csv(), "0,100\n0,0\n");
    }

    #[test]
    #[should_panic]
    fn mismatched_sizes_panic() {
        let _ = DenseMatrix::zero(2).add(&DenseMatrix::zero(3));
    }
}
