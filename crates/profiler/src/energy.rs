//! Phase-aware DVFS energy estimation — the §III motivation, quantified.
//!
//! §III: "Detecting automatically a communication phase allows for
//! decreasing frequency and voltage of the processor which leads to
//! reducing power consumption by 30% \[26\]." This module closes that loop:
//! given the profiler's phase report, it classifies each phase as
//! communication-bound or compute-bound (by its dependence density) and
//! estimates the energy saved by running communication-bound phases at a
//! reduced frequency.
//!
//! Power model (standard CMOS first-order): `P(f) = P_static + c·f³`.
//! Compute-bound time scales as `1/f`; communication-bound time is
//! dominated by memory/interconnect latency, so it is (to first order)
//! frequency-independent — which is precisely why down-clocking during
//! communication is nearly free.

use crate::phases::Phase;

/// First-order processor power/performance model.
#[derive(Clone, Copy, Debug)]
pub struct PowerModel {
    /// Static (leakage + uncore) power fraction at nominal frequency,
    /// ∈ (0, 1). Typical server CPUs: ~0.3.
    pub static_fraction: f64,
    /// Reduced frequency as a fraction of nominal, ∈ (0, 1].
    pub scaled_frequency: f64,
    /// Fraction of a communication-bound phase's duration that still
    /// scales with frequency (the non-stalled remainder), ∈ [0, 1].
    pub comm_compute_residue: f64,
}

impl PowerModel {
    /// A typical configuration: 30 % static power, scale to 60 % frequency,
    /// 20 % of communication time still frequency-sensitive.
    pub fn typical() -> Self {
        Self {
            static_fraction: 0.3,
            scaled_frequency: 0.6,
            comm_compute_residue: 0.2,
        }
    }

    /// Relative dynamic power at frequency fraction `f` (nominal = 1).
    fn dynamic_power(&self, f: f64) -> f64 {
        (1.0 - self.static_fraction) * f * f * f
    }

    /// Energy of running one time unit of *communication-bound* work at
    /// frequency fraction `f`, relative to one unit at nominal frequency.
    fn comm_energy(&self, f: f64) -> f64 {
        // Time stretches only for the compute residue.
        let time = (1.0 - self.comm_compute_residue) + self.comm_compute_residue / f;
        (self.static_fraction + self.dynamic_power(f)) * time
    }

    /// Energy of compute-bound work at frequency `f` relative to nominal.
    fn compute_energy(&self, f: f64) -> f64 {
        let time = 1.0 / f;
        (self.static_fraction + self.dynamic_power(f)) * time
    }
}

/// One phase, labelled by boundedness.
#[derive(Clone, Debug)]
pub struct LabelledPhase {
    /// Index into the phase report.
    pub index: usize,
    /// Communication volume of the phase (bytes).
    pub comm_bytes: u64,
    /// Whether the phase is communication-bound.
    pub comm_bound: bool,
}

/// Energy-savings estimate for a phase schedule.
#[derive(Clone, Debug)]
pub struct EnergyEstimate {
    /// Per-phase labels.
    pub phases: Vec<LabelledPhase>,
    /// Energy with every phase at nominal frequency (normalized units).
    pub baseline: f64,
    /// Energy with communication-bound phases down-clocked.
    pub scaled: f64,
}

impl EnergyEstimate {
    /// Fractional savings ∈ [0, 1).
    pub fn savings(&self) -> f64 {
        if self.baseline == 0.0 {
            return 0.0;
        }
        1.0 - self.scaled / self.baseline
    }
}

/// Label phases by communication intensity and estimate DVFS savings.
///
/// A phase is communication-bound when its dependence volume per window
/// exceeds `comm_threshold` times the schedule's mean — phases where
/// threads chiefly exchange data rather than compute privately. Each
/// phase's duration is approximated by its window count (windows are
/// fixed dependence quanta, so this equates "communication work").
///
/// **Calibration caveat:** the labelling is *relative*, so it needs a
/// heterogeneous schedule to anchor against; when every phase has similar
/// density (max < 2× min) no phase is labelled communication-bound — a
/// deployment would calibrate against an absolute dependences-per-access
/// rate instead, which the phase report does not carry.
pub fn estimate_dvfs_savings(
    phases: &[Phase],
    model: &PowerModel,
    comm_threshold: f64,
) -> EnergyEstimate {
    assert!(comm_threshold > 0.0);
    if phases.is_empty() {
        return EnergyEstimate {
            phases: Vec::new(),
            baseline: 0.0,
            scaled: 0.0,
        };
    }
    let densities: Vec<f64> = phases
        .iter()
        .map(|p| p.matrix.total() as f64 / p.windows() as f64)
        .collect();
    let mean = densities.iter().sum::<f64>() / densities.len() as f64;
    let dmax = densities.iter().cloned().fold(0.0_f64, f64::max);
    let dmin = densities.iter().cloned().fold(f64::INFINITY, f64::min);
    let heterogeneous = densities.len() > 1 && dmax > 2.0 * dmin;

    let mut labelled = Vec::new();
    let mut baseline = 0.0;
    let mut scaled = 0.0;
    for (i, (p, d)) in phases.iter().zip(&densities).enumerate() {
        let comm_bound = heterogeneous && *d >= mean * comm_threshold;
        let dur = p.windows() as f64;
        baseline += dur * (model.static_fraction + model.dynamic_power(1.0));
        scaled += dur
            * if comm_bound {
                model.comm_energy(model.scaled_frequency)
            } else {
                model.compute_energy(1.0)
            };
        labelled.push(LabelledPhase {
            index: i,
            comm_bytes: p.matrix.total(),
            comm_bound,
        });
    }
    EnergyEstimate {
        phases: labelled,
        baseline,
        scaled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DenseMatrix;

    fn phase(windows: usize, bytes: u64) -> Phase {
        let mut m = DenseMatrix::zero(4);
        m.set(0, 1, bytes);
        Phase {
            start_window: 0,
            end_window: windows - 1,
            matrix: m,
        }
    }

    #[test]
    fn model_energies_are_sane() {
        let m = PowerModel::typical();
        // Down-clocking compute-bound work at 30% static power is roughly
        // energy-neutral-to-positive; communication-bound work saves a lot.
        assert!(m.comm_energy(0.6) < 1.0);
        assert!(m.compute_energy(1.0) == m.static_fraction + m.dynamic_power(1.0));
        // Cubic dynamic power at nominal: full fraction.
        assert!((m.dynamic_power(1.0) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn mixed_schedule_saves_energy() {
        // Half the time communication-heavy, half compute-only.
        let phases = vec![phase(10, 100_000), phase(10, 10)];
        let est = estimate_dvfs_savings(&phases, &PowerModel::typical(), 1.0);
        assert!(est.phases[0].comm_bound);
        assert!(!est.phases[1].comm_bound);
        let s = est.savings();
        // The paper cites ~30% for fully communication-dominated codes; a
        // 50/50 schedule lands meaningfully above zero and below that.
        assert!(
            (0.1..0.4).contains(&s),
            "savings {s} outside plausible band"
        );
    }

    #[test]
    fn all_compute_schedule_saves_nothing() {
        let phases = vec![phase(10, 10), phase(10, 11)];
        let est = estimate_dvfs_savings(&phases, &PowerModel::typical(), 2.0);
        assert!(est.phases.iter().all(|p| !p.comm_bound));
        assert!(est.savings().abs() < 1e-12);
    }

    #[test]
    fn communication_dominated_schedule_approaches_the_papers_30_percent() {
        // Mostly communication with a small compute anchor.
        let phases = vec![phase(18, 100_000), phase(2, 10)];
        let est = estimate_dvfs_savings(&phases, &PowerModel::typical(), 0.5);
        let s = est.savings();
        assert!(
            (0.25..0.65).contains(&s),
            "comm-dominated savings {s} should be near/above the cited 30%"
        );
    }

    #[test]
    fn homogeneous_schedule_is_left_at_nominal() {
        // Without density contrast the relative labeller abstains.
        let phases = vec![phase(10, 50_000)];
        let est = estimate_dvfs_savings(&phases, &PowerModel::typical(), 1.0);
        assert!(est.phases.iter().all(|p| !p.comm_bound));
        assert!(est.savings().abs() < 1e-12);
    }

    #[test]
    fn empty_schedule_is_zero() {
        let est = estimate_dvfs_savings(&[], &PowerModel::typical(), 1.0);
        assert_eq!(est.savings(), 0.0);
    }
}
