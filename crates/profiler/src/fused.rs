//! The fused replay engine: borrowed event blocks straight into
//! Algorithm 1, with per-consumer caches in front of the signatures.
//!
//! [`CommProfiler::on_block_fused`] is the zero-materialization sibling of
//! the batched [`lc_trace::AccessSink::on_batch`] path. It consumes any
//! event representation through [`lc_trace::AsAccess`] (bare
//! [`lc_trace::AccessEvent`] slices out of the in-RAM SoA trace, or
//! [`lc_trace::StampedEvent`] segments decoded from a v3 spool), so the
//! decode → `Vec` → re-stamp → batch copy chain of the pre-fused pipeline
//! disappears entirely. On top of the tile/prefetch machinery it shares
//! with `on_batch`, the fused path adds three single-consumer
//! optimizations, all held in a caller-owned [`FusedScratch`]:
//!
//! * **Hash memoization** — a direct-mapped `addr → fmix64(addr)` cache.
//!   The mapping is a pure function, so entries never need invalidation;
//!   a hit replaces the multiply/xor chain with one load and compare.
//! * **Idempotent-access skip filter** — a direct-mapped cache of
//!   "thread `tid` inserted *address* `a` into the read signature" facts.
//!   A repeat read whose entry is still valid is a detector no-op by
//!   Algorithm 1: the read-signature membership test would suppress the
//!   dependence regardless of the recorded writer, and re-inserting the
//!   reader changes nothing. The cached fact is **address-exact** — the
//!   membership probe keys on the address, so two addresses sharing a
//!   signature slot must never satisfy each other's entries — while
//!   *invalidation* happens at the coarser granularity at which
//!   `clear_addr` forgets readers (`ReaderSet::elision_class_hashed`
//!   names it). The *only* event that can falsify a cached fact is a
//!   write whose read-signature clear covers the address's class, so
//!   every write bumps a per-class generation stamp and entries validate
//!   by stamp equality. Implementations that cannot name their clear
//!   granularity return `None` and elision is disabled — conservative by
//!   default.
//! * **Batched dependence recording** — detected dependences aggregate by
//!   `(loop, src, dst)` in the scratch and land in the shard layer with
//!   one lock acquisition per block ([`crate::shards::ShardSet::record_deps`])
//!   instead of one per dependence.
//!
//! All three are report-invisible: elided reads are still counted as
//! accesses, suppressed-dependence reads produce no dependence on either
//! path, and delta aggregation commutes. The `fused_replay_equivalence`
//! differential suite pins fused output byte-identical to the
//! materialized path across sources, batch sizes and detectors.
//!
//! **Concurrency contract:** a `FusedScratch` belongs to exactly one
//! consumer, and that consumer must observe *every* write to the address
//! classes whose reads it elides. Single-threaded replay satisfies this
//! trivially; the parallel path satisfies it by routing events to workers
//! by address class, so a class's reads and writes always meet the same
//! scratch (see `parallel.rs`). Feeding one class's reads and writes to
//! different scratches would elide past an unseen invalidation — the
//! `skipfilter` lc-sched scenario models exactly that failure via the
//! `skipfilter-stale-elide` mutant, which skips the stamp validation.

use lc_sigmem::murmur::fmix64;
use lc_sigmem::{ReaderSet, WriterMap};
use lc_trace::{AccessKind, AsAccess, LoopId};

use crate::profiler::{CommProfiler, Counters, PREFETCH_AHEAD, TILE};
use crate::shards::pack_key;
use crate::sync::Ordering;

/// Fibonacci multiplier for spreading elision classes over the
/// direct-mapped tables (classes are dense small integers for the
/// signature implementation — low bits alone would alias in strides).
const MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// Second multiplier folding the thread id into skip-entry indices.
const MIX_TID: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// Geometry of the per-consumer fused caches. The defaults keep the
/// whole scratch (memo + skip + stamps ≈ 1.3 MiB) inside a typical L2;
/// `sig_layout_cachesim` sweeps the trade-off.
#[derive(Clone, Copy, Debug)]
pub struct FusedConfig {
    /// Direct-mapped `addr → fmix64` memo entries (power of two).
    pub memo_entries: usize,
    /// Direct-mapped skip-filter entries (power of two).
    pub skip_entries: usize,
    /// Per-class generation-stamp buckets (power of two). Two classes
    /// sharing a bucket over-invalidate — a throughput cost, never a
    /// correctness one.
    pub stamp_entries: usize,
    /// Master switch for the skip filter (the memo cache has no
    /// correctness dimension and stays on).
    pub skip_filter: bool,
}

impl Default for FusedConfig {
    fn default() -> Self {
        Self {
            memo_entries: 1 << 14,
            skip_entries: 1 << 12,
            stamp_entries: 1 << 12,
            skip_filter: true,
        }
    }
}

/// Observability counters for one scratch's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FusedStats {
    /// Reads/writes whose hash came out of the memo cache.
    pub memo_hits: u64,
    /// Hashes computed and installed.
    pub memo_misses: u64,
    /// Reads elided entirely (no signature traffic).
    pub elided_reads: u64,
    /// Generation-stamp bumps (writes to elidable classes).
    pub stamp_bumps: u64,
    /// `record_deps` batches handed to the shard layer.
    pub dep_batches: u64,
}

/// Caller-owned working state for the fused hot loop: the memo cache,
/// the skip filter with its generation stamps, and the per-block
/// dependence aggregation buffer. One instance per consumer — never
/// shared across threads (see the module docs for why).
pub struct FusedScratch {
    memo: Box<[MemoEntry]>,
    memo_mask: usize,
    skip: Box<[SkipEntry]>,
    skip_mask: usize,
    stamps: Box<[u64]>,
    stamps_mask: usize,
    skip_filter: bool,
    /// `(packed key, bytes)` aggregated for the block in flight.
    deps: Vec<(u64, u64)>,
    /// Direct-mapped dedup hints into `deps` (`u16::MAX` = empty).
    dep_hint: Box<[u16]>,
    /// Dependences the current aggregation covers.
    pending_deps: u64,
    /// In-order `(src, dst, bytes)` for the phase accumulator, drained
    /// once per block under a single lock.
    phase_deps: Vec<(u32, u32, u64)>,
    /// Lifetime counters.
    pub stats: FusedStats,
}

/// One memo-cache line entry: `(addr, fmix64(addr))` packed so a probe
/// touches a single cache line.
#[derive(Clone, Copy)]
struct MemoEntry {
    addr: u64,
    hash: u64,
}

/// One skip-filter entry, packed for single-line probes: the cached fact
/// is "thread `tid` inserted `addr` into the read signature while class
/// generation `stamp` was current". Padded to 32 bytes so an entry never
/// straddles a cache line.
#[derive(Clone, Copy)]
#[repr(align(32))]
struct SkipEntry {
    addr: u64,
    stamp: u64,
    tid: u32,
}

/// Aggregation keys held before an early in-block flush. Sized to hold
/// the full live key set of a dependence-dense block (threads² × a few
/// loops) so early drains stay rare.
const DEP_SLOTS: usize = 512;

/// Direct-mapped `key → deps index` hints backing the O(1) dedup in
/// [`FusedScratch::push_dep`]. A hint evicted by a colliding key only
/// costs a duplicate `(key, bytes)` entry — the shard layer's own dedup
/// folds it — never a lost delta.
const DEP_HINTS: usize = 1024;

impl FusedScratch {
    /// Build a scratch with the given cache geometry.
    pub fn new(cfg: FusedConfig) -> Self {
        assert!(cfg.memo_entries.is_power_of_two());
        assert!(cfg.skip_entries.is_power_of_two());
        assert!(cfg.stamp_entries.is_power_of_two());
        // `!0` can never equal a real 8-byte-aligned address class index,
        // and no real event carries tid `u32::MAX`, so the fresh tables
        // hit on nothing.
        Self {
            memo: vec![
                MemoEntry {
                    addr: u64::MAX,
                    hash: 0
                };
                cfg.memo_entries
            ]
            .into_boxed_slice(),
            memo_mask: cfg.memo_entries - 1,
            skip: vec![
                SkipEntry {
                    addr: u64::MAX,
                    stamp: u64::MAX,
                    tid: u32::MAX,
                };
                cfg.skip_entries
            ]
            .into_boxed_slice(),
            skip_mask: cfg.skip_entries - 1,
            stamps: vec![0; cfg.stamp_entries].into_boxed_slice(),
            stamps_mask: cfg.stamp_entries - 1,
            skip_filter: cfg.skip_filter,
            deps: Vec::with_capacity(DEP_SLOTS),
            dep_hint: vec![u16::MAX; DEP_HINTS].into_boxed_slice(),
            pending_deps: 0,
            phase_deps: Vec::new(),
            stats: FusedStats::default(),
        }
    }

    /// Default-geometry scratch.
    pub fn with_defaults() -> Self {
        Self::new(FusedConfig::default())
    }

    /// Invalidate every skip-filter entry — the epoch boundary hook
    /// (checkpoint restore, detector reset). The memo cache survives:
    /// `addr → fmix64(addr)` is a pure function.
    pub fn bump_epoch(&mut self) {
        for e in self.skip.iter_mut() {
            e.stamp = u64::MAX;
        }
    }

    /// Heap footprint of the scratch tables.
    pub fn memory_bytes(&self) -> usize {
        self.memo.len() * std::mem::size_of::<MemoEntry>()
            + self.skip.len() * std::mem::size_of::<SkipEntry>()
            + self.stamps.len() * 8
    }

    #[inline(always)]
    fn stamp_idx(&self, class: u64) -> usize {
        ((class.wrapping_mul(MIX)) >> 32) as usize & self.stamps_mask
    }

    #[inline(always)]
    fn skip_idx(&self, h: u64, tid: u32) -> usize {
        // `h` is already fmix64-mixed; fold the tid in so the same
        // address read by two threads lands in distinct entries.
        ((h.wrapping_add((tid as u64).wrapping_mul(MIX_TID))) >> 32) as usize & self.skip_mask
    }

    /// Aggregate one dependence for the block in flight: O(1) dedup via
    /// the hint table instead of a linear scan (dependence-dense blocks
    /// carry hundreds of live keys).
    #[inline]
    fn push_dep(&mut self, key: u64, bytes: u64) {
        self.pending_deps += 1;
        let b = (key.wrapping_mul(MIX) >> 32) as usize & (DEP_HINTS - 1);
        let i = self.dep_hint[b] as usize;
        if let Some(e) = self.deps.get_mut(i) {
            if e.0 == key {
                e.1 += bytes;
                return;
            }
        }
        self.dep_hint[b] = self.deps.len() as u16;
        self.deps.push((key, bytes));
    }
}

impl<R: ReaderSet, W: WriterMap> CommProfiler<R, W> {
    /// Fused batched delivery: identical semantics to
    /// [`lc_trace::AccessSink::on_batch`] — strict per-event Algorithm 1
    /// in stream order — with the memo/skip/dep-batching layers of the
    /// module docs in front. Generic over [`AsAccess`] so SoA trace
    /// slices and decoded spool segments both feed it without copying.
    ///
    /// With telemetry enabled the call degrades to the instrumented
    /// per-event path (the fused caches would make the probe counters
    /// lie), preserving the zero-cost-when-off contract.
    pub fn on_block_fused<T: AsAccess>(&self, evs: &[T], scratch: &mut FusedScratch) {
        if evs.is_empty() {
            return;
        }
        if let Some(t) = &self.telemetry {
            t.bump(evs[0].access().tid, crate::telemetry::Stat::SinkBatch);
            for rec in evs {
                self.on_access_instrumented(rec.access(), t);
            }
            return;
        }
        let mut hashes = [0u64; TILE];
        match &self.counters {
            Counters::Sharded(s) => {
                for tile in evs.chunks(TILE) {
                    let n = tile.len();
                    self.fill_hashes(tile, &mut hashes[..n], scratch);
                    let mut i = 0;
                    while i < n {
                        let tid = tile[i].access().tid;
                        let mut j = i + 1;
                        while j < n && tile[j].access().tid == tid {
                            j += 1;
                        }
                        s.count_accesses(tid, (j - i) as u64);
                        for k in i..j {
                            if let Some(&h) = hashes[..n].get(k + PREFETCH_AHEAD) {
                                self.detector.prefetch(h);
                            }
                            let ev = tile[k].access();
                            if let Some((key, src, dst, bytes)) =
                                self.fused_step(ev, hashes[k], scratch)
                            {
                                scratch.push_dep(key, bytes);
                                if self.phases.is_some() {
                                    scratch.phase_deps.push((src, dst, bytes));
                                }
                                if scratch.deps.len() >= DEP_SLOTS {
                                    self.drain_scratch_deps(tid, scratch);
                                }
                            }
                        }
                        i = j;
                    }
                }
                if scratch.pending_deps > 0 {
                    self.drain_scratch_deps(evs[0].access().tid, scratch);
                }
            }
            Counters::Shared { accesses, deps } => {
                accesses.fetch_add(evs.len() as u64, Ordering::Relaxed);
                let mut found = 0u64;
                for tile in evs.chunks(TILE) {
                    let n = tile.len();
                    self.fill_hashes(tile, &mut hashes[..n], scratch);
                    for (k, rec) in tile.iter().enumerate() {
                        if let Some(&h) = hashes[..n].get(k + PREFETCH_AHEAD) {
                            self.detector.prefetch(h);
                        }
                        let ev = rec.access();
                        if let Some((_, src, dst, bytes)) = self.fused_step(ev, hashes[k], scratch)
                        {
                            found += 1;
                            self.global_ref().add(src, dst, bytes);
                            if self.config.track_nested {
                                if let Some((m, _, _)) = self.loops.get_or_insert_lossy(ev.loop_id)
                                {
                                    m.add(src, dst, bytes);
                                }
                            }
                            if self.phases.is_some() {
                                scratch.phase_deps.push((src, dst, bytes));
                            }
                        }
                    }
                }
                if found > 0 {
                    deps.fetch_add(found, Ordering::Relaxed);
                }
            }
        }
        if let Some(p) = &self.phases {
            if !scratch.phase_deps.is_empty() {
                let mut g = p.lock();
                for &(src, dst, bytes) in &scratch.phase_deps {
                    g.add(src, dst, bytes);
                }
                scratch.phase_deps.clear();
            }
        }
    }

    /// Memo-assisted hash gather for one tile.
    #[inline]
    fn fill_hashes<T: AsAccess>(&self, tile: &[T], hashes: &mut [u64], scratch: &mut FusedScratch) {
        for (hh, rec) in hashes.iter_mut().zip(tile) {
            let a = rec.access().addr;
            let idx = ((a >> 3) as usize) & scratch.memo_mask;
            let m = &mut scratch.memo[idx];
            if m.addr == a {
                *hh = m.hash;
                scratch.stats.memo_hits += 1;
            } else {
                let h = fmix64(a);
                m.addr = a;
                m.hash = h;
                *hh = h;
                scratch.stats.memo_misses += 1;
            }
        }
    }

    /// One event through the skip filter and (unless elided) the
    /// detector. Returns the detected dependence as
    /// `(packed key, src, dst, bytes)`.
    #[inline(always)]
    fn fused_step(
        &self,
        ev: &lc_trace::AccessEvent,
        h: u64,
        scratch: &mut FusedScratch,
    ) -> Option<(u64, u32, u32, u64)> {
        match ev.kind {
            AccessKind::Read => {
                if scratch.skip_filter {
                    if let Some(c) = self.detector.read_sig().elision_class_hashed(ev.addr, h) {
                        let gen = scratch.stamps[scratch.stamp_idx(c)];
                        let e = scratch.skip_idx(h, ev.tid);
                        // The entry must match the exact address: the
                        // membership probe is address-keyed, so a
                        // same-class neighbour's fact proves nothing
                        // about this read.
                        if scratch.skip[e].tid == ev.tid && scratch.skip[e].addr == ev.addr {
                            // Mutant seam: `skipfilter-stale-elide` trusts
                            // the entry without the generation check, so a
                            // write between install and reuse goes
                            // unnoticed — the `skipfilter` lc-sched
                            // scenario's differential oracle catches the
                            // suppressed dependence.
                            #[allow(unused_mut)]
                            let mut valid = scratch.skip[e].stamp == gen;
                            #[cfg(feature = "sched")]
                            if lc_sched::mutant_active("skipfilter-stale-elide") {
                                valid = true;
                            }
                            if valid {
                                // Thread is still in the read-sig class:
                                // the membership probe would suppress any
                                // dependence and the re-insert is a no-op.
                                scratch.stats.elided_reads += 1;
                                return None;
                            }
                        }
                        let dep = self
                            .detector
                            .on_access_hashed(ev.tid, ev.addr, h, ev.size, ev.kind);
                        // The insert above put `(addr, tid)` into the
                        // signature; that fact stays true until class
                        // `c`'s generation moves.
                        scratch.skip[e] = SkipEntry {
                            addr: ev.addr,
                            stamp: gen,
                            tid: ev.tid,
                        };
                        return dep.map(|d| {
                            (
                                pack_key(self.nested_loop(ev.loop_id), d.src, d.dst),
                                d.src,
                                d.dst,
                                d.bytes,
                            )
                        });
                    }
                }
                self.detector
                    .on_access_hashed(ev.tid, ev.addr, h, ev.size, ev.kind)
                    .map(|d| {
                        (
                            pack_key(self.nested_loop(ev.loop_id), d.src, d.dst),
                            d.src,
                            d.dst,
                            d.bytes,
                        )
                    })
            }
            AccessKind::Write => {
                self.detector
                    .on_access_hashed(ev.tid, ev.addr, h, ev.size, ev.kind);
                if scratch.skip_filter {
                    if let Some(c) = self.detector.read_sig().elision_class_hashed(ev.addr, h) {
                        let si = scratch.stamp_idx(c);
                        scratch.stamps[si] = scratch.stamps[si].wrapping_add(1);
                        scratch.stats.stamp_bumps += 1;
                    }
                }
                None
            }
        }
    }

    #[inline]
    fn nested_loop(&self, loop_id: LoopId) -> LoopId {
        if self.config.track_nested {
            loop_id
        } else {
            LoopId::NONE
        }
    }

    /// Hand the aggregated block dependences to `tid`'s shard in one
    /// lock acquisition. Which shard receives them is unobservable in any
    /// read path (counters and matrices merge across shards), mirroring
    /// the `seed_counts` contract.
    #[inline]
    fn drain_scratch_deps(&self, tid: u32, scratch: &mut FusedScratch) {
        if let Counters::Sharded(s) = &self.counters {
            s.record_deps(
                tid,
                scratch.pending_deps,
                &scratch.deps,
                self.flush_target(),
            );
            scratch.stats.dep_batches += 1;
        }
        scratch.deps.clear();
        scratch.pending_deps = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{AsymmetricProfiler, ProfilerConfig};
    use lc_sigmem::SignatureConfig;
    use lc_trace::{AccessEvent, AccessKind, AccessSink, FuncId, LoopId};

    fn ev(tid: u32, addr: u64, kind: AccessKind) -> AccessEvent {
        AccessEvent {
            tid,
            addr,
            size: 8,
            kind,
            loop_id: LoopId(1),
            parent_loop: LoopId::NONE,
            func: FuncId::NONE,
            site: 0,
        }
    }

    fn profiler() -> AsymmetricProfiler {
        AsymmetricProfiler::asymmetric(
            SignatureConfig::paper_default(64, 4),
            ProfilerConfig::nested(4),
        )
    }

    fn tiny_scratch(skip_filter: bool) -> FusedScratch {
        FusedScratch::new(FusedConfig {
            memo_entries: 1 << 4,
            skip_entries: 1 << 4,
            stamp_entries: 1 << 4,
            skip_filter,
        })
    }

    /// Idempotent re-reads are elided, and the elision is unobservable:
    /// the fused run's totals equal a per-event materialized run's.
    #[test]
    fn elision_is_unobservable_and_counted() {
        let stream = [
            ev(0, 0x40, AccessKind::Read),
            ev(0, 0x40, AccessKind::Read), // elidable: same thread, no write between
            ev(1, 0x40, AccessKind::Write),
            ev(0, 0x40, AccessKind::Read), // NOT elidable: carries the RAW dep 1 -> 0
            ev(0, 0x40, AccessKind::Read), // elidable again
        ];
        let fused = profiler();
        let mut scratch = tiny_scratch(true);
        fused.on_block_fused(&stream, &mut scratch);
        fused.flush();

        let mat = profiler();
        for e in &stream {
            mat.on_access(e);
        }
        mat.flush();

        assert_eq!(fused.dependencies(), mat.dependencies());
        assert_eq!(fused.dependencies(), 1, "exactly the post-write RAW");
        assert_eq!(fused.global_matrix(), mat.global_matrix());
        assert_eq!(scratch.stats.elided_reads, 2, "both idempotent re-reads");
        assert!(scratch.stats.stamp_bumps >= 1, "the write bumped a stamp");
    }

    /// With the filter off, nothing is elided and results still match.
    #[test]
    fn skip_filter_off_elides_nothing() {
        let stream = [
            ev(0, 0x40, AccessKind::Read),
            ev(0, 0x40, AccessKind::Read),
            ev(1, 0x40, AccessKind::Write),
            ev(0, 0x40, AccessKind::Read),
        ];
        let p = profiler();
        let mut scratch = tiny_scratch(false);
        p.on_block_fused(&stream, &mut scratch);
        p.flush();
        assert_eq!(scratch.stats.elided_reads, 0);
        assert_eq!(p.dependencies(), 1);
    }

    /// The memo cache is a pure-function cache: hits + misses cover every
    /// event, and a revisited address hits.
    #[test]
    fn memo_counters_cover_the_stream() {
        let stream = [
            ev(0, 0x40, AccessKind::Read),
            ev(0, 0x48, AccessKind::Read),
            ev(0, 0x40, AccessKind::Read),
            ev(0, 0x48, AccessKind::Write),
        ];
        let p = profiler();
        let mut scratch = tiny_scratch(true);
        p.on_block_fused(&stream, &mut scratch);
        let s = scratch.stats;
        assert_eq!(s.memo_hits + s.memo_misses, stream.len() as u64);
        assert_eq!(s.memo_misses, 2, "two distinct addresses");
    }

    /// `bump_epoch` invalidates every cached skip fact (entries survive
    /// in the table but their stamps can no longer validate), so the
    /// first re-read after an epoch boundary goes through the detector.
    #[test]
    fn bump_epoch_invalidates_skip_entries() {
        let p = profiler();
        let mut scratch = tiny_scratch(true);
        p.on_block_fused(
            &[ev(0, 0x40, AccessKind::Read), ev(0, 0x40, AccessKind::Read)],
            &mut scratch,
        );
        assert_eq!(scratch.stats.elided_reads, 1);
        scratch.bump_epoch();
        p.on_block_fused(&[ev(0, 0x40, AccessKind::Read)], &mut scratch);
        assert_eq!(
            scratch.stats.elided_reads, 1,
            "the first post-epoch read must not be elided"
        );
        p.on_block_fused(&[ev(0, 0x40, AccessKind::Read)], &mut scratch);
        assert_eq!(
            scratch.stats.elided_reads, 2,
            "the fact is re-established and elides again"
        );
    }

    /// `memory_bytes` tracks the configured geometry exactly.
    #[test]
    fn memory_bytes_matches_geometry() {
        let scratch = FusedScratch::new(FusedConfig {
            memo_entries: 1 << 6,
            skip_entries: 1 << 5,
            stamp_entries: 1 << 4,
            skip_filter: true,
        });
        assert_eq!(
            scratch.memory_bytes(),
            (1 << 6) * std::mem::size_of::<MemoEntry>()
                + (1 << 5) * std::mem::size_of::<SkipEntry>()
                + (1 << 4) * 8
        );
        let default = FusedScratch::with_defaults();
        assert!(default.memory_bytes() >= (1 << 14) * 16);
    }
}
