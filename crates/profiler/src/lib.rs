//! # lc-profiler — loop-level communication pattern profiler
//!
//! The paper's primary contribution (Mazaheri et al., ICPP 2015): an
//! inter-thread RAW dependency profiler for shared-memory programs that
//! produces a **nested, per-hotspot-loop communication matrix** in bounded
//! memory.
//!
//! * [`raw`] — Algorithm 1 over the asymmetric signature memory.
//! * [`profiler`] — [`CommProfiler`], the [`lc_trace::AccessSink`] that
//!   application threads drive inline.
//! * [`matrix`] — concurrent communication matrices and snapshot math.
//! * [`shards`] — the sharded accumulation layer the hot path runs
//!   through: per-thread counters, epoch-flushed dependence delta buffers,
//!   and the lock-free per-loop matrix registry.
//! * [`fused`] — the zero-materialization replay engine: borrowed event
//!   blocks straight into the detector with hash memoization, an
//!   idempotent-access skip filter, and block-batched dependence
//!   recording.
//! * [`parallel`] — partition-aware offline analysis: slot-sharded
//!   parallel trace replay with exact merged results.
//! * [`checkpoint`] — crash-resumable analysis: versioned, CRC-framed
//!   snapshots of the full streaming-analyzer state (signatures,
//!   matrices, counters, replay cursor), written atomically.
//! * [`nested`] — the loop-tree report of Figures 6–7 with the Σ-children
//!   invariant.
//! * [`thread_load`] — the Eq. 1 quantitative metric of Figure 8.
//! * [`phases`] — dynamic-behaviour (phase) detection (§V-A4).
//! * [`classify`] — §VI parallel-pattern classification.
//! * [`mapping`] — §VI's application: communication-aware thread mapping.
//! * [`deps`] — the full DiscoPoP dependence taxonomy (RAW/WAR/WAW/RAR).
//! * [`energy`] — the §III DVFS motivation, quantified from phase reports.
//! * [`viz`] — SVG heat maps / load charts (the figures' graphical form).
//! * [`sampling`] / [`matrix_sparse`] — the paper's stated future work
//!   (overhead-reducing access sampling, sparse matrices at high thread
//!   counts), implemented as extensions.
//! * [`telemetry`] — zero-cost-when-off self-observability: per-thread
//!   counter cells, log₂ histograms, Prometheus/JSON expositions.
//! * [`overhead`] / [`report`] — measurement and rendering support for the
//!   experiment harness.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod classify;
pub mod clock;
pub mod deps;
pub mod energy;
pub mod fused;
pub mod ingest;
pub mod mapping;
pub mod matrix;
pub mod matrix_sparse;
pub mod nested;
pub mod overhead;
pub mod parallel;
pub mod phases;
pub mod profiler;
pub mod raw;
pub mod report;
pub mod report_html;
pub mod sampling;
pub mod shards;
pub mod sync;
pub mod telemetry;
pub mod thread_load;
pub mod viz;

pub use checkpoint::{checkpoint_path, write_atomic_blob, Checkpoint, DetectorState, WorkerState};
pub use deps::{DepConfig, DepKind, FullDetector};
pub use energy::{estimate_dvfs_savings, EnergyEstimate, PowerModel};
pub use fused::{FusedConfig, FusedScratch, FusedStats};
pub use ingest::{DetectorKind, IncrementalAnalyzer};
pub use mapping::{greedy_mapping, MachineTopology, ThreadMapping};
pub use matrix::{CommMatrix, DenseMatrix};
pub use matrix_sparse::SparseCommMatrix;
pub use nested::{verify_sum_invariant, NestedNode, NestedReport};
pub use parallel::{analyze_trace_asymmetric, analyze_trace_perfect, ParAnalysis, ParReplayConfig};
pub use phases::{detect_phases, Phase, PhaseAccumulator};
pub use profiler::{
    AsymmetricProfiler, CommProfiler, FlushHealthSnapshot, PerfectProfiler, ProfileReport,
    ProfilerConfig,
};
pub use raw::{AccessProbe, AsymmetricDetector, Dependence, PerfectDetector, RawDetector};
pub use report::canonical_report;
pub use report_html::html_report;
pub use sampling::{BurstSampler, StrideSampler};
pub use shards::{AccumConfig, FlushHealth, FlushTarget, LoopRegistry, RegistryFull, ShardSet};
pub use telemetry::{
    HistId, MergedHist, Metric, MetricValue, MetricsRegistry, Pow2Hist, Stat, Telemetry,
    TelemetryConfig,
};
pub use thread_load::ThreadLoad;
pub use viz::{svg_heatmap, svg_thread_load};
