//! Sharded accumulation for the inline profiler hot path.
//!
//! Algorithm 1 runs *inline in the application threads* (§IV-D3), so every
//! cycle `on_access` spends is multiplied across all profiled threads. The
//! unsharded accumulator bumps one shared `accesses` atomic per access and
//! contends on shared [`CommMatrix`] cells per dependence — cache-line
//! ping-pong that grows with thread count. This module removes the shared
//! state from the per-access path:
//!
//! * [`Shard`] — per-thread, cache-line-padded `accesses`/`deps` counters.
//!   Each application thread only ever touches its own shard's lines;
//!   totals are merged on read (lossless: relaxed counter addition
//!   commutes).
//! * [`DeltaBuffer`] — a small per-shard table aggregating dependence
//!   deltas keyed by `(loop, src, dst)`. Deltas flush into the shared
//!   matrices in batches on an *epoch boundary* (every
//!   [`AccumConfig::flush_epoch`] dependences, or when the buffer fills),
//!   so a tight producer/consumer loop touches the shared matrix once per
//!   epoch instead of once per dependence. Matrix cell addition commutes,
//!   so the fully-flushed result is byte-identical to unsharded
//!   accumulation of the same dependence stream (enforced by the
//!   `sharded_equivalence` differential test).
//! * [`LoopRegistry`] — a lock-free, fixed-capacity, open-addressed table
//!   of per-loop matrices replacing the `RwLock<HashMap<LoopId, _>>` read
//!   lock the old path took per dependence. Slots are `AtomicPtr` published
//!   with a release-CAS, the same pattern `ReadSignature::filter_or_insert`
//!   uses; lookups are wait-free loads.
//!
//! The memory cost over the unsharded path is bounded and small: one
//! padded shard (two counters + a `delta_slots`-entry buffer) per profiled
//! thread and `capacity` pointer-sized registry slots — a few KiB at the
//! paper's scale, keeping the §V-A2 "matrices are negligible next to
//! signature memory" property (quantified in DESIGN.md).

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::utils::CachePadded;
use lc_faults::{FaultInjector, FaultSite};
use lc_trace::LoopId;

use crate::clock;
use crate::matrix::CommMatrix;
use crate::sync::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Mutex, MutexGuard, Ordering};
use crate::telemetry::{HistId, Stat, Telemetry};

/// Accumulation-layer tunables, separate from the semantic
/// [`crate::ProfilerConfig`] so existing construction sites keep working.
#[derive(Clone, Copy, Debug)]
pub struct AccumConfig {
    /// Use the sharded path (per-thread counters + delta buffers). `false`
    /// selects the legacy shared-atomic path, kept as the differential
    /// baseline.
    pub sharded: bool,
    /// Flush a shard's delta buffer after this many buffered dependences.
    pub flush_epoch: u64,
    /// Distinct `(loop, src, dst)` keys a shard aggregates between
    /// flushes; a full buffer forces an early flush.
    pub delta_slots: usize,
    /// Capacity of the lock-free loop-matrix registry: the maximum number
    /// of distinct loops (plus the top-level pseudo-loop) one run may
    /// touch. Exceeding it panics with a sizing hint.
    pub loop_capacity: usize,
    /// Watchdog bound on an explicit flush waiting for a shard's buffer
    /// lock. A sibling thread stalled (or dead) while holding the lock
    /// cannot block a reader forever: after this many milliseconds the
    /// flush skips the shard, latches degraded mode, and moves on.
    pub flush_timeout_ms: u64,
}

impl Default for AccumConfig {
    fn default() -> Self {
        Self {
            sharded: true,
            flush_epoch: 64,
            delta_slots: 32,
            loop_capacity: 1024,
            flush_timeout_ms: 2000,
        }
    }
}

impl AccumConfig {
    /// The legacy unsharded path (shared counters, per-dependence matrix
    /// adds). Kept for differential testing and as the overhead baseline.
    pub fn shared() -> Self {
        Self {
            sharded: false,
            ..Self::default()
        }
    }
}

/// Pack a dependence's aggregation key. `src`/`dst` are dense thread ids
/// (the matrix dimension caps them at 2^16 threads, far above the paper's
/// scale); the loop id occupies the high 32 bits.
#[inline]
pub(crate) fn pack_key(loop_id: LoopId, src: u32, dst: u32) -> u64 {
    debug_assert!(src < (1 << 16) && dst < (1 << 16));
    ((loop_id.0 as u64) << 32) | ((src as u64) << 16) | dst as u64
}

#[inline]
fn unpack_key(key: u64) -> (LoopId, u32, u32) {
    (
        LoopId((key >> 32) as u32),
        ((key >> 16) & 0xffff) as u32,
        (key & 0xffff) as u32,
    )
}

/// Per-shard aggregation of dependence deltas since the last flush.
#[derive(Debug, Default)]
pub struct DeltaBuffer {
    /// `(packed key, bytes)`, linearly searched — shards see few distinct
    /// communication partners per epoch, so a small vec beats a hash map.
    entries: Vec<(u64, u64)>,
    /// Dependences buffered since the last flush (epoch progress).
    pending: u64,
}

impl DeltaBuffer {
    /// Aggregate one dependence.
    #[inline]
    fn push(&mut self, key: u64, bytes: u64) {
        self.pending += 1;
        for e in &mut self.entries {
            if e.0 == key {
                e.1 += bytes;
                return;
            }
        }
        self.entries.push((key, bytes));
    }

    /// Aggregate a batch of already-aggregated deltas covering `n_deps`
    /// dependences. `pending` advances by the *dependence* count, not the
    /// entry count, so the epoch trigger fires at the same cadence as
    /// `n_deps` individual [`Self::push`] calls would.
    #[inline]
    fn push_n(&mut self, n_deps: u64, deltas: &[(u64, u64)]) {
        self.pending += n_deps;
        'next: for &(key, bytes) in deltas {
            for e in &mut self.entries {
                if e.0 == key {
                    e.1 += bytes;
                    continue 'next;
                }
            }
            self.entries.push((key, bytes));
        }
    }

    #[inline]
    fn needs_flush(&self, cfg: &AccumConfig) -> bool {
        self.pending >= cfg.flush_epoch || self.entries.len() >= cfg.delta_slots
    }

    /// Heap footprint of the buffer.
    fn memory_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(u64, u64)>()
    }
}

/// One per-thread accumulation shard. Padded so two shards never share a
/// cache line; the owning thread's counter bumps therefore stay core-local.
#[derive(Debug)]
pub struct Shard {
    accesses: CachePadded<AtomicU64>,
    deps: CachePadded<AtomicU64>,
    buf: Mutex<DeltaBuffer>,
}

impl Shard {
    fn new() -> Self {
        Self {
            accesses: CachePadded::new(AtomicU64::new(0)),
            deps: CachePadded::new(AtomicU64::new(0)),
            buf: Mutex::new(DeltaBuffer::default()),
        }
    }
}

/// Degraded-mode accounting for the flush paths.
///
/// The flush watchdog's contract (DESIGN.md §9): a worker panicking or
/// stalling mid-flush must not take the run down with it — survivors
/// complete, the global matrix stays exact *for every delta that was
/// drained*, and every delta that was not is **counted** here rather than
/// silently lost. `degraded()` is the single latch callers check to know
/// whether this run's numbers carry an asterisk.
#[derive(Debug, Default)]
pub struct FlushHealth {
    degraded: AtomicBool,
    lost_deltas: AtomicU64,
    flush_panics: AtomicU64,
    watchdog_timeouts: AtomicU64,
}

impl FlushHealth {
    /// Record a caught panic on a flush path that lost `lost` buffered
    /// delta entries (0 when the panic fired before any entry drained away
    /// for good — those deltas stay buffered and flush later).
    pub fn note_panic(&self, lost: u64) {
        self.flush_panics.fetch_add(1, Ordering::Relaxed);
        self.lost_deltas.fetch_add(lost, Ordering::Relaxed);
        self.degraded.store(true, Ordering::Relaxed);
    }

    /// Record an explicit flush abandoning a shard after the watchdog
    /// timeout (the shard's deltas are delayed, not destroyed — they drain
    /// whenever the stuck holder releases the lock).
    pub fn note_timeout(&self) {
        self.watchdog_timeouts.fetch_add(1, Ordering::Relaxed);
        self.degraded.store(true, Ordering::Relaxed);
    }

    /// True once any flush path hit a panic or watchdog timeout.
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Buffered delta entries destroyed by caught panics (each entry is an
    /// aggregated `(loop, src, dst)` byte count, not a single dependence).
    pub fn lost_deltas(&self) -> u64 {
        self.lost_deltas.load(Ordering::Relaxed)
    }

    /// Panics caught on flush paths.
    pub fn flush_panics(&self) -> u64 {
        self.flush_panics.load(Ordering::Relaxed)
    }

    /// Shards skipped by the explicit-flush watchdog.
    pub fn watchdog_timeouts(&self) -> u64 {
        self.watchdog_timeouts.load(Ordering::Relaxed)
    }
}

/// Where a shard's buffered deltas land when drained: the shared matrices,
/// plus whether per-loop attribution is enabled for this run.
#[derive(Clone, Copy, Debug)]
pub struct FlushTarget<'a> {
    /// Attribute flushed deltas to per-loop matrices as well as `global`.
    pub track_nested: bool,
    /// The global (whole-program) communication matrix.
    pub global: &'a CommMatrix,
    /// The per-loop matrix registry.
    pub loops: &'a LoopRegistry,
    /// Metrics layer, when enabled: flush reasons, drained occupancy and
    /// registry probe lengths are recorded here. `None` (the default) keeps
    /// the drain path free of any telemetry branches beyond this check.
    pub telemetry: Option<&'a Telemetry>,
}

/// The sharded accumulation layer: one [`Shard`] per profiled thread
/// (indexed by dense tid, masked) in front of the shared matrices.
#[derive(Debug)]
pub struct ShardSet {
    shards: Box<[Shard]>,
    mask: usize,
    cfg: AccumConfig,
    health: FlushHealth,
    /// Fault-injection hook for the epoch/registry seams. `None` (the
    /// production default) is one never-taken branch per flush.
    faults: Option<Arc<FaultInjector>>,
}

impl ShardSet {
    /// One shard per profiled thread, rounded up to a power of two so the
    /// hot-path index is a mask instead of a modulo.
    pub fn new(threads: usize, cfg: AccumConfig) -> Self {
        assert!(threads >= 1);
        assert!(cfg.flush_epoch >= 1, "flush_epoch must be at least 1");
        assert!(cfg.delta_slots >= 1, "delta_slots must be at least 1");
        assert!(cfg.flush_timeout_ms >= 1, "flush_timeout_ms must be >= 1");
        let n = threads.next_power_of_two();
        Self {
            shards: (0..n).map(|_| Shard::new()).collect(),
            mask: n - 1,
            cfg,
            health: FlushHealth::default(),
            faults: None,
        }
    }

    /// Arm a fault injector on the epoch-barrier and registry-insert seams.
    pub fn set_faults(&mut self, faults: Arc<FaultInjector>) {
        self.faults = Some(faults);
    }

    /// Degraded-mode accounting for this shard set's flush paths.
    pub fn health(&self) -> &FlushHealth {
        &self.health
    }

    #[inline]
    fn shard(&self, tid: u32) -> &Shard {
        &self.shards[tid as usize & self.mask]
    }

    /// Count one access on `tid`'s shard.
    #[inline]
    pub fn count_access(&self, tid: u32) {
        self.shard(tid).accesses.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` accesses on `tid`'s shard in one atomic add — the batched
    /// sink path folds a same-thread run into a single counter update.
    #[inline]
    pub fn count_accesses(&self, tid: u32, n: u64) {
        self.shard(tid).accesses.fetch_add(n, Ordering::Relaxed);
    }

    /// Seed the shard-0 counters with totals from a checkpoint — restore
    /// runs single-threaded before profiling resumes, and [`Self::accesses`]
    /// / [`Self::deps`] sum across shards, so which shard holds the prefix
    /// is unobservable.
    pub fn seed_counts(&self, accesses: u64, deps: u64) {
        self.shards[0]
            .accesses
            .fetch_add(accesses, Ordering::Relaxed);
        self.shards[0].deps.fetch_add(deps, Ordering::Relaxed);
    }

    /// Count and buffer one dependence on `tid`'s shard, flushing the
    /// shard's buffer into `target` at epoch boundaries.
    #[inline]
    pub fn record_dep(
        &self,
        tid: u32,
        loop_id: LoopId,
        src: u32,
        dst: u32,
        bytes: u64,
        target: FlushTarget<'_>,
    ) {
        let shard = self.shard(tid);
        shard.deps.fetch_add(1, Ordering::Relaxed);
        // Without nested tracking every dependence aggregates under one key.
        let key = pack_key(
            if target.track_nested {
                loop_id
            } else {
                LoopId::NONE
            },
            src,
            dst,
        );
        // Fault mutant for the model checker: trade the blocking lock for
        // a try_lock and silently drop the delta when the shard buffer is
        // contended (e.g. by a concurrent explicit flush). The lossless
        // flush oracle catches the missing bytes (DESIGN.md §11).
        #[cfg(feature = "sched")]
        if lc_sched::mutant_active("shards-drop-contended-delta") {
            let Some(mut buf) = shard.buf.try_lock() else {
                return;
            };
            buf.push(key, bytes);
            if buf.needs_flush(&self.cfg) {
                self.guarded_drain(&mut buf, target, tid);
            }
            return;
        }
        let mut buf = shard.buf.lock();
        buf.push(key, bytes);
        if buf.needs_flush(&self.cfg) {
            if let Some(t) = target.telemetry {
                // Epoch takes precedence: a buffer can hit both limits at
                // once, and the epoch is the *designed* trigger.
                let reason = if buf.pending >= self.cfg.flush_epoch {
                    Stat::FlushEpoch
                } else {
                    Stat::FlushFull
                };
                t.bump(tid, reason);
                t.observe(tid, HistId::FlushOccupancy, buf.entries.len() as u64);
            }
            self.guarded_drain(&mut buf, target, tid);
        }
    }

    /// Count and buffer a whole batch of dependences on `tid`'s shard in
    /// **one** lock acquisition — the fused replay path aggregates each
    /// block's dependences by `(loop, src, dst)` key (see
    /// [`pack_key`]) and lands them here, so the per-dependence
    /// lock/unlock of [`Self::record_dep`] is paid once per block
    /// instead. `n_deps` is the true dependence count the `deltas`
    /// aggregate (it drives the counter and the epoch trigger); the
    /// fully-flushed result is byte-identical to `n_deps` individual
    /// `record_dep` calls because delta aggregation and matrix addition
    /// both commute.
    #[inline]
    pub fn record_deps(
        &self,
        tid: u32,
        n_deps: u64,
        deltas: &[(u64, u64)],
        target: FlushTarget<'_>,
    ) {
        if n_deps == 0 {
            return;
        }
        let shard = self.shard(tid);
        shard.deps.fetch_add(n_deps, Ordering::Relaxed);
        // Same fault mutant as `record_dep`: drop the whole batch when the
        // shard buffer is contended. The lossless flush oracle catches it.
        #[cfg(feature = "sched")]
        if lc_sched::mutant_active("shards-drop-contended-delta") {
            let Some(mut buf) = shard.buf.try_lock() else {
                return;
            };
            buf.push_n(n_deps, deltas);
            if buf.needs_flush(&self.cfg) {
                self.guarded_drain(&mut buf, target, tid);
            }
            return;
        }
        let mut buf = shard.buf.lock();
        buf.push_n(n_deps, deltas);
        if buf.needs_flush(&self.cfg) {
            if let Some(t) = target.telemetry {
                let reason = if buf.pending >= self.cfg.flush_epoch {
                    Stat::FlushEpoch
                } else {
                    Stat::FlushFull
                };
                t.bump(tid, reason);
                t.observe(tid, HistId::FlushOccupancy, buf.entries.len() as u64);
            }
            self.guarded_drain(&mut buf, target, tid);
        }
    }

    /// Drain `buf` into the shared matrices under the watchdog contract: a
    /// panic anywhere inside the drain (including an injected
    /// [`FaultSite::EpochBarrier`] fault — the PR 2 livelock scenario made
    /// schedulable) is caught, the shard is left consistent, and every
    /// entry that had not yet reached the matrices is counted as lost
    /// instead of vanishing. The calling application thread survives.
    fn guarded_drain(&self, buf: &mut DeltaBuffer, target: FlushTarget<'_>, tid: u32) {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(f) = &self.faults {
                f.trip(FaultSite::EpochBarrier);
            }
            self.drain(buf, target, tid);
        }));
        if result.is_err() {
            // Entries still buffered never reached the matrices; entries
            // already popped did (matrix adds commute, so partial drains
            // keep the global matrix exact for what landed). Count the
            // remainder and reset, so the shard stays usable.
            let lost = buf.entries.len() as u64;
            buf.entries.clear();
            buf.pending = 0;
            self.health.note_panic(lost);
            if let Some(t) = target.telemetry {
                t.bump(tid, Stat::FlushPanic);
            }
        }
    }

    /// Pop-at-a-time so a panic mid-drain (caught by
    /// [`Self::guarded_drain`]) leaves exactly the un-drained entries in
    /// the buffer for loss accounting. Drain order is irrelevant: matrix
    /// cell addition commutes.
    fn drain(&self, buf: &mut DeltaBuffer, target: FlushTarget<'_>, tid: u32) {
        while let Some((key, bytes)) = buf.entries.pop() {
            let (loop_id, src, dst) = unpack_key(key);
            target.global.add(src, dst, bytes);
            if target.track_nested {
                if let Some(f) = &self.faults {
                    f.trip(FaultSite::RegistryInsert);
                }
                // Lossy on overflow: flushes run on application threads, so
                // a capacity panic here would strand sibling threads at
                // their next barrier (the error is latched and surfaced
                // after the run instead).
                if let Some((m, probe, inserted)) = target.loops.get_or_insert_lossy(loop_id) {
                    if let Some(t) = target.telemetry {
                        t.observe(tid, HistId::RegistryProbeLen, probe as u64);
                        if inserted {
                            t.bump(tid, Stat::RegistryInsert);
                        }
                    }
                    m.add(src, dst, bytes);
                }
            }
        }
        buf.pending = 0;
    }

    /// Acquire a shard's buffer lock under the watchdog: immediate
    /// `try_lock`, then exponential backoff (50µs doubling, 10ms cap) until
    /// [`AccumConfig::flush_timeout_ms`] expires. `None` means the holder
    /// is stuck or dead — the caller skips the shard instead of joining it
    /// in whatever stranded it.
    fn lock_with_watchdog<'m>(
        &self,
        m: &'m Mutex<DeltaBuffer>,
    ) -> Option<MutexGuard<'m, DeltaBuffer>> {
        if let Some(g) = m.try_lock() {
            return Some(g);
        }
        // The clock facade makes the deadline virtual inside an lc-sched
        // simulation: a wedged holder times out deterministically and for
        // free in wall-clock terms.
        let deadline = clock::now_micros() + self.cfg.flush_timeout_ms * 1000;
        let mut backoff_us = 50u64;
        loop {
            clock::sleep_micros(backoff_us);
            if let Some(g) = m.try_lock() {
                return Some(g);
            }
            if clock::now_micros() >= deadline {
                return None;
            }
            backoff_us = (backoff_us * 2).min(10_000);
        }
    }

    /// Flush every shard's pending deltas. Called before any read of the
    /// shared matrices so snapshots include all buffered communication.
    ///
    /// Bounded: a shard whose lock cannot be won within
    /// [`AccumConfig::flush_timeout_ms`] (its owner is stalled mid-epoch,
    /// or died without the no-poisoning lock ever noticing) is skipped and
    /// counted — the remaining shards still drain, so one stuck worker
    /// degrades the snapshot instead of deadlocking the reader. This is
    /// PR 2's livelock fix generalized into policy.
    pub fn flush(&self, target: FlushTarget<'_>) {
        for (i, shard) in self.shards.iter().enumerate() {
            let tid = i as u32;
            match self.lock_with_watchdog(&shard.buf) {
                Some(mut buf) => {
                    if buf.pending > 0 {
                        if let Some(t) = target.telemetry {
                            t.bump(tid, Stat::FlushExplicit);
                            t.observe(tid, HistId::FlushOccupancy, buf.entries.len() as u64);
                        }
                        self.guarded_drain(&mut buf, target, tid);
                    }
                }
                None => {
                    self.health.note_timeout();
                    if let Some(t) = target.telemetry {
                        t.bump(tid, Stat::WatchdogTimeout);
                    }
                }
            }
        }
    }

    /// Total accesses across shards (lossless merge of relaxed counters).
    pub fn accesses(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.accesses.load(Ordering::Relaxed))
            .sum()
    }

    /// Total dependences across shards.
    pub fn deps(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.deps.load(Ordering::Relaxed))
            .sum()
    }

    /// Heap footprint of the shard layer.
    pub fn memory_bytes(&self) -> usize {
        self.shards.len() * std::mem::size_of::<Shard>()
            + self
                .shards
                .iter()
                .map(|s| s.buf.lock().memory_bytes())
                .sum::<usize>()
    }
}

/// One published registry entry: a loop id and its matrix.
#[derive(Debug)]
struct LoopSlot {
    id: LoopId,
    matrix: CommMatrix,
}

/// The loop-matrix registry ran out of capacity: the run touched more
/// distinct loops than [`AccumConfig::loop_capacity`] provisioned.
///
/// Its `Display` text is the documented sizing hint — the panicking
/// registry paths raise it verbatim, so callers match on the stable
/// `"loop-matrix registry full"` prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegistryFull {
    /// The registry's slot count (capacity rounded up to a power of two).
    pub capacity: usize,
}

impl std::fmt::Display for RegistryFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "loop-matrix registry full: more than {} distinct loops touched; \
             raise AccumConfig::loop_capacity",
            self.capacity
        )
    }
}

impl std::error::Error for RegistryFull {}

/// Lock-free, fixed-capacity, open-addressed map from [`LoopId`] to its
/// [`CommMatrix`].
///
/// Lookups are a hash, a handful of `Acquire` pointer loads, and no writes —
/// the per-dependence cost the old `RwLock<HashMap>` read lock used to pay
/// in atomics and contention. Inserts allocate the slot's `LoopSlot` and
/// publish it with a release-CAS; the loser of a publish race frees its
/// allocation and uses the winner's (the `ReadSignature::filter_or_insert`
/// pattern). Entries are never removed, so a published pointer stays valid
/// until the registry drops.
#[derive(Debug)]
pub struct LoopRegistry {
    slots: Box<[AtomicPtr<LoopSlot>]>,
    threads: usize,
    len: AtomicUsize,
    /// Latched by [`Self::get_or_insert_lossy`] on the first failed insert.
    overflowed: AtomicBool,
    /// Deltas dropped (left unattributed per-loop) after the overflow.
    dropped: AtomicU64,
}

impl LoopRegistry {
    /// Registry with room for `capacity` distinct loops, whose matrices
    /// have dimension `threads`. Capacity is rounded up to a power of two.
    pub fn new(threads: usize, capacity: usize) -> Self {
        assert!(capacity >= 1, "loop registry needs capacity");
        let n = capacity.next_power_of_two();
        Self {
            slots: (0..n)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            threads,
            len: AtomicUsize::new(0),
            overflowed: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
        }
    }

    /// The matrix for `id`, publishing a fresh zero matrix on first use.
    ///
    /// # Panics
    /// When the registry is full — the capacity bound is a deliberate
    /// design knob (see [`AccumConfig::loop_capacity`]); a run touching
    /// more distinct loops than provisioned should be re-run with a larger
    /// capacity rather than silently misattributed. Callers that can
    /// surface a recoverable error use [`Self::try_get_or_insert`]; the
    /// profiler's flush path uses [`Self::get_or_insert_lossy`] so worker
    /// threads never unwind mid-run.
    #[inline]
    pub fn get_or_insert(&self, id: LoopId) -> &CommMatrix {
        match self.find_or_publish(id) {
            Ok((m, _, _)) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Self::get_or_insert`] returning a clean error instead of
    /// panicking when the registry is full.
    #[inline]
    pub fn try_get_or_insert(&self, id: LoopId) -> Result<&CommMatrix, RegistryFull> {
        self.find_or_publish(id).map(|(m, _, _)| m)
    }

    /// [`Self::get_or_insert`] plus the open-addressing probe length this
    /// lookup walked (0 = direct hit) and whether the loop was newly
    /// published — the telemetry layer's registry channel.
    ///
    /// # Panics
    /// Like [`Self::get_or_insert`], when the registry is full.
    #[inline]
    pub fn get_or_insert_probed(&self, id: LoopId) -> (&CommMatrix, u32, bool) {
        match self.find_or_publish(id) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// The flush-path lookup: on overflow it latches the error (readable
    /// afterwards via [`Self::overflow`]), counts the dropped delta, and
    /// returns `None` instead of panicking. Flushes run inline on
    /// application threads, where a panic would strand the sibling threads
    /// at their next barrier — the run completes with per-loop attribution
    /// degraded, and the caller (e.g. the CLI) reports the clean error.
    #[inline]
    pub fn get_or_insert_lossy(&self, id: LoopId) -> Option<(&CommMatrix, u32, bool)> {
        match self.find_or_publish(id) {
            Ok(r) => Some(r),
            Err(_) => {
                self.overflowed.store(true, Ordering::Relaxed);
                self.dropped.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// The capacity error latched by [`Self::get_or_insert_lossy`], if any
    /// lookup has overflowed the registry.
    pub fn overflow(&self) -> Option<RegistryFull> {
        self.overflowed
            .load(Ordering::Relaxed)
            .then_some(RegistryFull {
                capacity: self.slots.len(),
            })
    }

    /// Deltas that lost their per-loop attribution to an overflowed
    /// registry (the global matrix still received them).
    pub fn dropped_deltas(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Core open-addressed lookup/publish: the matrix, the probe distance
    /// walked, and whether this call published the slot.
    #[inline]
    fn find_or_publish(&self, id: LoopId) -> Result<(&CommMatrix, u32, bool), RegistryFull> {
        let mask = self.slots.len() - 1;
        let mut idx = (lc_sigmem::murmur::fmix64(id.0 as u64) as usize) & mask;
        let mut fresh: *mut LoopSlot = std::ptr::null_mut();
        for probe in 0..self.slots.len() as u32 {
            let slot = &self.slots[idx];
            let p = slot.load(Ordering::Acquire);
            if p.is_null() {
                if fresh.is_null() {
                    fresh = Box::into_raw(Box::new(LoopSlot {
                        id,
                        matrix: CommMatrix::new(self.threads),
                    }));
                }
                match slot.compare_exchange(
                    std::ptr::null_mut(),
                    fresh,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        self.len.fetch_add(1, Ordering::Relaxed);
                        // Safety: just published; lives until `self` drops.
                        return Ok((unsafe { &(*fresh).matrix }, probe, true));
                    }
                    Err(winner) => {
                        // Safety: `winner` was published by a release-CAS
                        // after full construction.
                        if unsafe { &*winner }.id == id {
                            // Safety: `fresh` never escaped this thread.
                            drop(unsafe { Box::from_raw(fresh) });
                            return Ok((unsafe { &(*winner).matrix }, probe, false));
                        }
                        // Different loop claimed the slot: keep probing and
                        // reuse `fresh` for the next empty slot.
                    }
                }
            } else {
                // Safety: published pointers stay valid until drop.
                if unsafe { &*p }.id == id {
                    if !fresh.is_null() {
                        // Safety: `fresh` never escaped this thread.
                        drop(unsafe { Box::from_raw(fresh) });
                    }
                    return Ok((unsafe { &(*p).matrix }, probe, false));
                }
            }
            idx = (idx + 1) & mask;
        }
        if !fresh.is_null() {
            // Safety: `fresh` never escaped this thread.
            drop(unsafe { Box::from_raw(fresh) });
        }
        Err(RegistryFull {
            capacity: self.slots.len(),
        })
    }

    /// The matrix for `id`, if one was published.
    pub fn get(&self, id: LoopId) -> Option<&CommMatrix> {
        let mask = self.slots.len() - 1;
        let mut idx = (lc_sigmem::murmur::fmix64(id.0 as u64) as usize) & mask;
        for _ in 0..self.slots.len() {
            let p = self.slots[idx].load(Ordering::Acquire);
            if p.is_null() {
                return None;
            }
            // Safety: published pointers stay valid until drop.
            let slot = unsafe { &*p };
            if slot.id == id {
                return Some(&slot.matrix);
            }
            idx = (idx + 1) & mask;
        }
        None
    }

    /// Number of published loops.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True when no loop has been touched.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot every published loop matrix.
    pub fn snapshot_all(&self) -> HashMap<LoopId, crate::matrix::DenseMatrix> {
        self.iter().map(|(id, m)| (id, m.snapshot())).collect()
    }

    /// Iterate the published `(id, matrix)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (LoopId, &CommMatrix)> {
        self.slots.iter().filter_map(|slot| {
            let p = slot.load(Ordering::Acquire);
            // Safety: published pointers stay valid until drop.
            (!p.is_null()).then(|| {
                let s = unsafe { &*p };
                (s.id, &s.matrix)
            })
        })
    }

    /// Heap footprint: slot array plus published matrices.
    pub fn memory_bytes(&self) -> usize {
        // 8 = the production size of one slot pointer, kept literal so the
        // figure is unchanged when the `sched` feature swaps in the
        // (physically larger) instrumented shim atomics.
        self.slots.len() * 8
            + self
                .iter()
                .map(|(_, m)| m.memory_bytes() + std::mem::size_of::<LoopSlot>())
                .sum::<usize>()
    }
}

impl Drop for LoopRegistry {
    fn drop(&mut self) {
        for slot in self.slots.iter() {
            let p = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                // Safety: sole owner at drop; pointer came from Box::into_raw.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

// Safety: the registry hands out `&CommMatrix` (itself Sync) and publishes
// heap pointers with release/acquire ordering.
unsafe impl Send for LoopRegistry {}
unsafe impl Sync for LoopRegistry {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn key_packing_round_trips() {
        for (l, s, d) in [(0u32, 0u32, 0u32), (7, 3, 5), (u32::MAX, 65535, 65535)] {
            assert_eq!(unpack_key(pack_key(LoopId(l), s, d)), (LoopId(l), s, d));
        }
    }

    #[test]
    fn delta_buffer_aggregates_same_key() {
        let mut b = DeltaBuffer::default();
        let k = pack_key(LoopId(1), 0, 1);
        b.push(k, 8);
        b.push(k, 8);
        b.push(pack_key(LoopId(2), 0, 1), 4);
        assert_eq!(b.entries.len(), 2);
        assert_eq!(b.pending, 3);
        assert_eq!(b.entries[0], (k, 16));
    }

    #[test]
    fn shards_merge_counters_losslessly() {
        let set = Arc::new(ShardSet::new(8, AccumConfig::default()));
        std::thread::scope(|s| {
            for tid in 0..8u32 {
                let set = Arc::clone(&set);
                s.spawn(move || {
                    for _ in 0..1000 {
                        set.count_access(tid);
                    }
                });
            }
        });
        assert_eq!(set.accesses(), 8000);
        assert_eq!(set.deps(), 0);
    }

    #[test]
    fn epoch_flush_lands_in_matrices() {
        let cfg = AccumConfig {
            flush_epoch: 4,
            ..AccumConfig::default()
        };
        let set = ShardSet::new(2, cfg);
        let global = CommMatrix::new(2);
        let loops = LoopRegistry::new(2, 16);
        let tgt = FlushTarget {
            track_nested: true,
            global: &global,
            loops: &loops,
            telemetry: None,
        };
        for _ in 0..3 {
            set.record_dep(1, LoopId(5), 0, 1, 8, tgt);
        }
        // Below the epoch: nothing flushed yet.
        assert_eq!(global.snapshot().total(), 0);
        set.record_dep(1, LoopId(5), 0, 1, 8, tgt);
        // Epoch boundary: all four deltas land at once.
        assert_eq!(global.get(0, 1), 32);
        assert_eq!(loops.get(LoopId(5)).unwrap().get(0, 1), 32);
        assert_eq!(set.deps(), 4);
    }

    #[test]
    fn explicit_flush_drains_partial_epochs() {
        let set = ShardSet::new(4, AccumConfig::default());
        let global = CommMatrix::new(4);
        let loops = LoopRegistry::new(4, 16);
        let tgt = FlushTarget {
            track_nested: true,
            global: &global,
            loops: &loops,
            telemetry: None,
        };
        set.record_dep(2, LoopId(1), 0, 2, 8, tgt);
        assert_eq!(global.snapshot().total(), 0);
        set.flush(tgt);
        assert_eq!(global.get(0, 2), 8);
        // Idempotent.
        set.flush(tgt);
        assert_eq!(global.get(0, 2), 8);
    }

    #[test]
    fn full_delta_buffer_forces_early_flush() {
        let cfg = AccumConfig {
            flush_epoch: 1_000_000,
            delta_slots: 2,
            ..AccumConfig::default()
        };
        let set = ShardSet::new(1, cfg);
        let global = CommMatrix::new(4);
        let loops = LoopRegistry::new(4, 16);
        let tgt = FlushTarget {
            track_nested: true,
            global: &global,
            loops: &loops,
            telemetry: None,
        };
        set.record_dep(0, LoopId(1), 0, 1, 8, tgt);
        set.record_dep(0, LoopId(1), 0, 2, 8, tgt);
        // Two distinct keys hit `delta_slots`.
        assert_eq!(global.snapshot().total(), 16);
    }

    #[test]
    fn registry_publishes_each_loop_once() {
        let reg = Arc::new(LoopRegistry::new(4, 64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let reg = Arc::clone(&reg);
                s.spawn(move || {
                    for l in 0..32u32 {
                        reg.get_or_insert(LoopId(l)).add(0, 1, 1);
                    }
                });
            }
        });
        assert_eq!(reg.len(), 32);
        for l in 0..32u32 {
            assert_eq!(reg.get(LoopId(l)).unwrap().get(0, 1), 8);
        }
        assert!(reg.get(LoopId(99)).is_none());
        assert_eq!(reg.snapshot_all().len(), 32);
    }

    #[test]
    fn registry_survives_colliding_probes() {
        // Capacity 4 with 4 loops: every slot used, probes wrap.
        let reg = LoopRegistry::new(2, 4);
        for l in 0..4u32 {
            reg.get_or_insert(LoopId(l)).add(0, 1, l as u64 + 1);
        }
        for l in 0..4u32 {
            assert_eq!(reg.get(LoopId(l)).unwrap().get(0, 1), l as u64 + 1);
        }
    }

    #[test]
    #[should_panic(expected = "loop-matrix registry full")]
    fn registry_overflow_panics_with_hint() {
        let reg = LoopRegistry::new(2, 2);
        for l in 0..3u32 {
            reg.get_or_insert(LoopId(l));
        }
    }

    #[test]
    fn lossy_lookup_latches_overflow_and_degrades() {
        let reg = LoopRegistry::new(2, 2);
        assert!(reg.overflow().is_none());
        assert!(reg.get_or_insert_lossy(LoopId(0)).is_some());
        assert!(reg.get_or_insert_lossy(LoopId(1)).is_some());
        assert!(reg.get_or_insert_lossy(LoopId(2)).is_none());
        assert!(reg.get_or_insert_lossy(LoopId(3)).is_none());
        let e = reg.overflow().expect("overflow latched");
        assert_eq!(e.capacity, 2);
        assert_eq!(reg.dropped_deltas(), 2);
        // Already-published loops still resolve after the overflow.
        assert!(reg.get_or_insert_lossy(LoopId(1)).is_some());
    }

    #[test]
    fn try_get_or_insert_reports_full_cleanly() {
        let reg = LoopRegistry::new(2, 2);
        assert!(reg.try_get_or_insert(LoopId(0)).is_ok());
        assert!(reg.try_get_or_insert(LoopId(1)).is_ok());
        let err = reg.try_get_or_insert(LoopId(2)).unwrap_err();
        assert_eq!(err.capacity, 2);
        let msg = err.to_string();
        assert!(msg.contains("loop-matrix registry full"), "{msg}");
        assert!(msg.contains("loop_capacity"), "{msg}");
        // Existing loops still resolve after a failed insert.
        assert!(reg.try_get_or_insert(LoopId(1)).is_ok());
    }

    #[test]
    fn probed_lookup_reports_probe_length_and_insertion() {
        let reg = LoopRegistry::new(2, 64);
        let (_, p0, inserted0) = reg.get_or_insert_probed(LoopId(9));
        assert!(inserted0);
        let (_, p1, inserted1) = reg.get_or_insert_probed(LoopId(9));
        assert!(!inserted1);
        assert_eq!(p0, p1); // same id walks the same probe path
    }

    #[test]
    fn flush_reasons_and_occupancy_reach_telemetry() {
        use crate::telemetry::{HistId, Stat, Telemetry, TelemetryConfig};
        let cfg = AccumConfig {
            flush_epoch: 4,
            delta_slots: 2,
            ..AccumConfig::default()
        };
        let set = ShardSet::new(2, cfg);
        let global = CommMatrix::new(4);
        let loops = LoopRegistry::new(4, 16);
        let tel = Telemetry::new(2, TelemetryConfig::default());
        let tgt = FlushTarget {
            track_nested: true,
            global: &global,
            loops: &loops,
            telemetry: Some(&tel),
        };
        // Two distinct keys fill the 2-slot buffer before the epoch: Full.
        set.record_dep(0, LoopId(1), 0, 1, 8, tgt);
        set.record_dep(0, LoopId(2), 0, 1, 8, tgt);
        assert_eq!(tel.counter(Stat::FlushFull), 1);
        // Four same-key deps hit the epoch: Epoch.
        for _ in 0..4 {
            set.record_dep(0, LoopId(1), 0, 1, 8, tgt);
        }
        assert_eq!(tel.counter(Stat::FlushEpoch), 1);
        // A partial buffer drained by an explicit flush: Explicit.
        set.record_dep(0, LoopId(1), 0, 1, 8, tgt);
        set.flush(tgt);
        assert_eq!(tel.counter(Stat::FlushExplicit), 1);
        // Occupancy observed once per flush; registry inserts counted once
        // per distinct loop.
        assert_eq!(tel.hist(HistId::FlushOccupancy).count, 3);
        assert_eq!(tel.counter(Stat::RegistryInsert), 2);
        assert!(tel.hist(HistId::RegistryProbeLen).count > 0);
        // And the matrices saw every delta despite the instrumentation.
        assert_eq!(global.snapshot().total(), 7 * 8);
    }

    #[test]
    fn registry_memory_accounts_slots_and_matrices() {
        let reg = LoopRegistry::new(4, 8);
        let empty = reg.memory_bytes();
        reg.get_or_insert(LoopId(1));
        assert!(reg.memory_bytes() > empty);
    }

    #[test]
    fn injected_epoch_panic_is_caught_and_losses_are_counted() {
        use lc_faults::{FaultAction, FaultPlan, FaultRule};
        let cfg = AccumConfig {
            flush_epoch: 4,
            ..AccumConfig::default()
        };
        let mut set = ShardSet::new(1, cfg);
        set.set_faults(Arc::new(FaultInjector::new(FaultPlan {
            seed: 0,
            rules: vec![FaultRule::once(
                FaultSite::EpochBarrier,
                FaultAction::Panic,
                0,
            )],
        })));
        let global = CommMatrix::new(2);
        let loops = LoopRegistry::new(2, 16);
        let tgt = FlushTarget {
            track_nested: true,
            global: &global,
            loops: &loops,
            telemetry: None,
        };
        // First epoch boundary trips the injected panic; the recording
        // thread (this one) survives and the buffered entry is counted.
        for _ in 0..4 {
            set.record_dep(0, LoopId(1), 0, 1, 8, tgt);
        }
        assert!(set.health().degraded());
        assert_eq!(set.health().flush_panics(), 1);
        assert_eq!(set.health().lost_deltas(), 1);
        assert_eq!(
            global.snapshot().total(),
            0,
            "nothing drained before the panic"
        );
        // The shard stays usable: the next epoch drains cleanly.
        for _ in 0..4 {
            set.record_dep(0, LoopId(1), 0, 1, 8, tgt);
        }
        assert_eq!(global.get(0, 1), 32);
        assert_eq!(set.health().flush_panics(), 1);
    }

    #[test]
    fn explicit_flush_skips_a_stuck_shard_within_the_timeout() {
        let cfg = AccumConfig {
            flush_timeout_ms: 50,
            ..AccumConfig::default()
        };
        let set = Arc::new(ShardSet::new(2, cfg));
        let global = CommMatrix::new(2);
        let loops = LoopRegistry::new(2, 16);
        let tgt = FlushTarget {
            track_nested: false,
            global: &global,
            loops: &loops,
            telemetry: None,
        };
        set.record_dep(0, LoopId::NONE, 0, 1, 8, tgt);
        set.record_dep(1, LoopId::NONE, 1, 0, 4, tgt);
        // Wedge shard 1's buffer lock from another thread, as a worker
        // stalled mid-epoch would.
        let held = Arc::clone(&set);
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let (locked_tx, locked_rx) = std::sync::mpsc::channel::<()>();
        let holder = std::thread::spawn(move || {
            let _guard = held.shards[1].buf.lock();
            locked_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        });
        locked_rx.recv().unwrap();
        let start = std::time::Instant::now();
        set.flush(tgt);
        assert!(
            start.elapsed() >= std::time::Duration::from_millis(50),
            "waited out the watchdog"
        );
        // Shard 0 drained; shard 1 was skipped and counted, not deadlocked.
        assert_eq!(global.get(0, 1), 8);
        assert_eq!(global.get(1, 0), 0);
        assert!(set.health().degraded());
        assert_eq!(set.health().watchdog_timeouts(), 1);
        assert_eq!(set.health().lost_deltas(), 0, "delayed, not destroyed");
        release_tx.send(()).unwrap();
        holder.join().unwrap();
        // Once the holder releases, the delayed deltas drain.
        set.flush(tgt);
        assert_eq!(global.get(1, 0), 4);
    }
}
