//! Partition-aware offline analysis: slot-sharded parallel trace replay.
//!
//! [`lc_trace::Trace::par_replay`] splits a recorded trace into per-worker
//! streams by address class and drives one sink per worker. This module
//! supplies the detector-aware halves of that contract:
//!
//! * the **router** — signature slot index for the asymmetric detector
//!   (the exact granularity at which its state couples), the hashed exact
//!   address for the perfect baseline;
//! * the **per-worker profilers** — private signature pairs plus private
//!   accumulation, so workers never contend;
//! * the **merge** — summing per-worker matrices, loop maps and counters,
//!   all of which are commutative `u64` additions, reproduces sequential
//!   replay byte for byte (correctness argument in DESIGN.md §10).
//!
//! Phase windows (§V-A4) are inherently order-dependent across the whole
//! dependence stream, so the parallel path refuses `phase_window` with more
//! than one job rather than silently producing scrambled windows.

use lc_sigmem::{murmur::fmix64, ReaderSet, SignatureConfig, SlotRouter, WriterMap};
use lc_trace::{
    coalesce_events, AccessSink, ParReplayOptions, ParReplayStats, Trace, REPLAY_BATCH_EVENTS,
};

use crate::fused::{FusedConfig, FusedScratch};
use crate::profiler::{CommProfiler, ProfileReport, ProfilerConfig};
use crate::raw::{AsymmetricDetector, PerfectDetector, RawDetector};
use crate::shards::{AccumConfig, RegistryFull};
use crate::telemetry::MetricsRegistry;

/// Tuning for one parallel analysis run.
#[derive(Clone, Copy, Debug)]
pub struct ParReplayConfig {
    /// Worker threads (1 = sequential replay, today's path).
    pub jobs: usize,
    /// Run-coalesce each worker stream before detection.
    pub coalesce: bool,
    /// Events per [`AccessSink::on_batch`] block.
    pub batch_events: usize,
    /// Drive the fused zero-materialization engine
    /// ([`CommProfiler::on_block_fused`]) instead of the `AccessSink`
    /// batched path. Byte-identical output (the `fused_replay_equivalence`
    /// suite's claim); the default since the fused path is strictly
    /// faster.
    pub fused: bool,
    /// Enable the idempotent-access skip filter inside the fused engine
    /// (ignored when `fused` is off).
    pub skip_filter: bool,
}

impl Default for ParReplayConfig {
    fn default() -> Self {
        Self {
            jobs: 1,
            coalesce: true,
            batch_events: REPLAY_BATCH_EVENTS,
            fused: true,
            skip_filter: true,
        }
    }
}

impl ParReplayConfig {
    /// Sequential, uncoalesced, unfused — byte-identical to
    /// [`Trace::replay`] into a single profiler (the pre-parallel
    /// analysis path, kept as the differential baseline).
    pub fn sequential() -> Self {
        Self {
            jobs: 1,
            coalesce: false,
            batch_events: REPLAY_BATCH_EVENTS,
            fused: false,
            skip_filter: false,
        }
    }

    /// The [`FusedConfig`] this run's fused consumers use.
    pub fn fused_config(&self) -> FusedConfig {
        FusedConfig {
            skip_filter: self.skip_filter,
            ..FusedConfig::default()
        }
    }
}

/// Everything one parallel analysis produced.
#[derive(Clone, Debug)]
pub struct ParAnalysis {
    /// The merged profile: global matrix, per-loop matrices, counts.
    ///
    /// With coalescing on, `report.accesses` counts the *coalesced* events
    /// the detectors actually processed; [`ParAnalysis::trace_events`] keeps
    /// the original trace length. Dependencies and matrices are identical
    /// either way.
    pub report: ProfileReport,
    /// Events in the input trace (before any coalescing).
    pub trace_events: u64,
    /// First registry-capacity overflow latched by any worker.
    pub overflow: Option<RegistryFull>,
    /// True if any worker's flush path degraded.
    pub degraded: bool,
    /// Replay mechanics: jobs, batches delivered, coalescing summary.
    pub replay: ParReplayStats,
}

impl ParAnalysis {
    /// Replay-layer gauges for metrics export, merged into `reg`.
    pub fn export_into(&self, reg: &mut MetricsRegistry) {
        reg.gauge(
            "loopcomm_replay_jobs",
            "Worker threads used for trace replay",
            self.replay.jobs as f64,
        );
        reg.counter(
            "loopcomm_replay_events_total",
            "Events delivered to detectors (after coalescing)",
            self.replay.replayed_events,
        );
        reg.counter(
            "loopcomm_replay_batches_total",
            "on_batch blocks delivered during replay",
            self.replay.batches,
        );
        reg.counter(
            "loopcomm_replay_runs_folded_total",
            "Access runs folded by coalescing",
            self.replay.coalesce.runs_folded,
        );
        reg.counter(
            "loopcomm_replay_events_folded_total",
            "Events removed by run coalescing",
            self.replay.coalesce.events_folded,
        );
    }
}

/// Analyze a trace with the paper's asymmetric signature detector,
/// partitioned by signature slot (`fmix64(addr) % n_slots`, the exact
/// index [`lc_sigmem::ReadSignature`] and [`lc_sigmem::WriteSignature`]
/// use). Each worker owns a private signature pair; results merge by
/// matrix summation.
pub fn analyze_trace_asymmetric(
    trace: &Trace,
    sig: SignatureConfig,
    prof: ProfilerConfig,
    accum: AccumConfig,
    par: &ParReplayConfig,
) -> ParAnalysis {
    let router = SlotRouter::new(sig.n_slots);
    let jobs = par.jobs.max(1);
    analyze_with(
        trace,
        || CommProfiler::from_detector_with(AsymmetricDetector::asymmetric(sig), prof, accum),
        &|addr| router.worker(addr, jobs),
        &|addr| router.slot(addr) as u64,
        prof,
        par,
    )
}

/// Analyze a trace with the exact (perfect-signature) baseline detector,
/// partitioned by exact address class (`fmix64(addr) % jobs`). Coalescing
/// folds only same-address runs — the perfect detector keeps per-address
/// reader sets, so a coarser class would not be semantics-preserving.
pub fn analyze_trace_perfect(
    trace: &Trace,
    prof: ProfilerConfig,
    accum: AccumConfig,
    par: &ParReplayConfig,
) -> ParAnalysis {
    let jobs = par.jobs.max(1);
    analyze_with(
        trace,
        || CommProfiler::from_detector_with(PerfectDetector::perfect(), prof, accum),
        &|addr| (fmix64(addr) % jobs as u64) as usize,
        &|addr| addr,
        prof,
        par,
    )
}

/// Generic core: build one private profiler per worker, replay, merge.
fn analyze_with<R, W>(
    trace: &Trace,
    make: impl Fn() -> CommProfiler<R, W>,
    worker_of: &(dyn Fn(u64) -> usize + Sync),
    class: &(dyn Fn(u64) -> u64 + Sync),
    prof: ProfilerConfig,
    par: &ParReplayConfig,
) -> ParAnalysis
where
    R: ReaderSet,
    W: WriterMap,
    RawDetector<R, W>: Send + Sync,
{
    let jobs = par.jobs.max(1);
    assert!(
        jobs == 1 || prof.phase_window.is_none(),
        "phase windows are order-dependent across the whole dependence \
         stream; use jobs = 1 for phase tracking"
    );
    let profilers: Vec<CommProfiler<R, W>> = (0..jobs).map(|_| make()).collect();
    let replay = if par.fused {
        fused_replay(trace, &profilers, worker_of, class, par)
    } else {
        let sinks: Vec<&dyn AccessSink> = profilers.iter().map(|p| p as &dyn AccessSink).collect();
        let opts = ParReplayOptions {
            batch_events: par.batch_events,
            coalesce_class: par.coalesce.then_some(class),
        };
        trace.par_replay(&sinks, worker_of, &opts)
    };

    let mut overflow = None;
    let mut degraded = false;
    let mut merged: Option<ProfileReport> = None;
    for p in &profilers {
        if overflow.is_none() {
            overflow = p.registry_overflow();
        }
        degraded |= p.degraded();
        let r = p.report();
        merged = Some(match merged {
            None => r,
            Some(acc) => merge_reports(acc, r),
        });
    }
    ParAnalysis {
        report: merged.expect("jobs >= 1"),
        trace_events: trace.len() as u64,
        overflow,
        degraded,
        replay,
    }
}

/// Drive the fused engine over the trace: borrowed SoA slices straight
/// into [`CommProfiler::on_block_fused`], one [`FusedScratch`] per worker.
///
/// `jobs == 1` without coalescing is the true zero-materialization path —
/// the profiler reads the trace's own storage. Coalescing (a materializing
/// transform by nature) and multi-worker partitioning build the same
/// per-worker streams the non-fused path builds, so replay statistics and
/// reports match it field for field; only the consumption changes.
///
/// Skip-filter soundness across workers: `worker_of` routes by address
/// class — the same granularity [`lc_sigmem::ReaderSet::elision_class_hashed`]
/// names — so every write that can invalidate a cached membership fact
/// reaches the scratch that caches it (the fused module's concurrency
/// contract).
fn fused_replay<R, W>(
    trace: &Trace,
    profilers: &[CommProfiler<R, W>],
    worker_of: &(dyn Fn(u64) -> usize + Sync),
    class: &(dyn Fn(u64) -> u64 + Sync),
    par: &ParReplayConfig,
) -> ParReplayStats
where
    R: ReaderSet,
    W: WriterMap,
    RawDetector<R, W>: Send + Sync,
{
    let jobs = profilers.len();
    let batch = par.batch_events.max(1);
    let fused_cfg = par.fused_config();
    let mut stats = ParReplayStats {
        jobs,
        ..ParReplayStats::default()
    };

    if jobs == 1 && !par.coalesce {
        let evs = trace.access_events();
        let mut scratch = FusedScratch::new(fused_cfg);
        for chunk in evs.chunks(batch) {
            profilers[0].on_block_fused(chunk, &mut scratch);
        }
        profilers[0].flush_pending();
        stats.replayed_events = evs.len() as u64;
        stats.batches = evs.len().div_ceil(batch) as u64;
        return stats;
    }

    let mut parts = trace.partition(jobs, worker_of);
    if par.coalesce {
        for p in &mut parts {
            stats.coalesce.merge(coalesce_events(p, class));
        }
    }
    for p in &parts {
        stats.replayed_events += p.len() as u64;
        stats.batches += p.len().div_ceil(batch) as u64;
    }
    if jobs == 1 {
        let mut scratch = FusedScratch::new(fused_cfg);
        for chunk in parts[0].chunks(batch) {
            profilers[0].on_block_fused(chunk, &mut scratch);
        }
        profilers[0].flush_pending();
        return stats;
    }
    std::thread::scope(|s| {
        for (part, p) in parts.iter().zip(profilers) {
            s.spawn(move || {
                let mut scratch = FusedScratch::new(fused_cfg);
                for chunk in part.chunks(batch) {
                    p.on_block_fused(chunk, &mut scratch);
                }
                p.flush_pending();
            });
        }
    });
    stats
}

/// Sum two per-worker reports. Every field is a commutative accumulation:
/// dense matrices add cell-wise, per-loop maps union-with-sum, counters and
/// footprints add. Shared with the incremental ingest path
/// ([`crate::ingest`]), which partitions by the same routers.
pub(crate) fn merge_reports(mut acc: ProfileReport, r: ProfileReport) -> ProfileReport {
    acc.global.accumulate(&r.global);
    for (id, m) in r.per_loop {
        use std::collections::hash_map::Entry;
        match acc.per_loop.entry(id) {
            Entry::Occupied(mut e) => e.get_mut().accumulate(&m),
            Entry::Vacant(e) => {
                e.insert(m);
            }
        }
    }
    acc.accesses += r.accesses;
    acc.dependencies += r.dependencies;
    acc.memory_bytes += r.memory_bytes;
    debug_assert!(r.phase_windows.is_none(), "phases require jobs == 1");
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_trace::{AccessEvent, AccessKind, FuncId, LoopId, StampedEvent};

    fn trace(n: u64) -> Trace {
        // Writer thread 0 sweeps, readers 1..4 consume; several loops.
        let mut evs = Vec::new();
        for i in 0..n {
            let addr = 0x1000 + (i % 64) * 8;
            let kind = if i % 4 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let tid = if kind == AccessKind::Write {
                0
            } else {
                (i % 3 + 1) as u32
            };
            evs.push(StampedEvent {
                seq: i,
                event: AccessEvent {
                    tid,
                    addr,
                    size: 8,
                    kind,
                    loop_id: LoopId((i % 5) as u32 + 1),
                    parent_loop: LoopId::NONE,
                    func: FuncId::NONE,
                    site: 0,
                },
            });
        }
        Trace::new(evs)
    }

    fn assert_same(a: &ParAnalysis, b: &ParAnalysis) {
        assert_eq!(a.report.global, b.report.global);
        assert_eq!(a.report.per_loop, b.report.per_loop);
        assert_eq!(a.report.dependencies, b.report.dependencies);
    }

    #[test]
    fn asymmetric_parallel_matches_sequential() {
        let t = trace(4000);
        let sig = SignatureConfig::paper_default(1 << 10, 4);
        let prof = ProfilerConfig::nested(4);
        let seq = analyze_trace_asymmetric(
            &t,
            sig,
            prof,
            AccumConfig::default(),
            &ParReplayConfig::sequential(),
        );
        for jobs in [2usize, 4] {
            let par = analyze_trace_asymmetric(
                &t,
                sig,
                prof,
                AccumConfig::default(),
                &ParReplayConfig {
                    jobs,
                    coalesce: true,
                    batch_events: 64,
                    ..ParReplayConfig::sequential()
                },
            );
            assert_same(&seq, &par);
            assert_eq!(par.trace_events, 4000);
        }
    }

    #[test]
    fn perfect_parallel_matches_sequential() {
        let t = trace(4000);
        let prof = ProfilerConfig::nested(4);
        let seq = analyze_trace_perfect(
            &t,
            prof,
            AccumConfig::default(),
            &ParReplayConfig::sequential(),
        );
        for jobs in [2usize, 4] {
            for coalesce in [false, true] {
                let par = analyze_trace_perfect(
                    &t,
                    prof,
                    AccumConfig::default(),
                    &ParReplayConfig {
                        jobs,
                        coalesce,
                        batch_events: 128,
                        ..ParReplayConfig::sequential()
                    },
                );
                assert_same(&seq, &par);
                if !coalesce {
                    assert_eq!(par.report.accesses, seq.report.accesses);
                }
            }
        }
    }

    #[test]
    fn coalescing_keeps_matrices_and_changes_only_access_count() {
        let t = trace(2000);
        let prof = ProfilerConfig::nested(4);
        let plain = analyze_trace_perfect(
            &t,
            prof,
            AccumConfig::default(),
            &ParReplayConfig::sequential(),
        );
        let coalesced = analyze_trace_perfect(
            &t,
            prof,
            AccumConfig::default(),
            &ParReplayConfig {
                jobs: 1,
                coalesce: true,
                batch_events: REPLAY_BATCH_EVENTS,
                ..ParReplayConfig::sequential()
            },
        );
        assert_same(&plain, &coalesced);
        assert_eq!(
            coalesced.report.accesses + coalesced.replay.coalesce.events_folded,
            plain.report.accesses
        );
    }

    #[test]
    #[should_panic(expected = "phase windows")]
    fn parallel_refuses_phase_windows() {
        let t = trace(100);
        let prof = ProfilerConfig {
            threads: 4,
            track_nested: true,
            phase_window: Some(8),
        };
        analyze_trace_perfect(
            &t,
            prof,
            AccumConfig::default(),
            &ParReplayConfig {
                jobs: 2,
                coalesce: false,
                batch_events: 64,
                ..ParReplayConfig::sequential()
            },
        );
    }
}
