//! # lc-workloads — SPLASH-style instrumented parallel kernels
//!
//! The evaluation substrate: the fourteen SPLASH applications the paper
//! profiles (§V), re-implemented as compact Rust kernels over the
//! `lc-trace` instrumentation API. Each kernel preserves the original's
//! algorithmic skeleton and — crucially for this paper — its inter-thread
//! **communication topology**:
//!
//! | kernel | topology |
//! |---|---|
//! | `radix` | per-digit histograms + all-to-all scan + permutation |
//! | `fft` | six-step transpose (all-to-all / spectral) |
//! | `lu_cb`, `lu_ncb` | blocked LU: diag broadcast + panel updates |
//! | `cholesky` | blocked right-looking factorization |
//! | `ocean_cp` | red-black SOR, row slabs (1-D neighbours) |
//! | `ocean_ncp` | Jacobi, 2-D tiles (4-neighbours) |
//! | `water_nsq` | O(n²) MD: all-to-all position reads |
//! | `water_spatial` | cell-list MD: spatial neighbours |
//! | `barnes` | Barnes–Hut: tree built by one, read by all |
//! | `fmm` | near/far field: neighbours + aggregate exchange |
//! | `raytrace` | shared scene + dynamic tile queue (master/worker-ish) |
//! | `radiosity` | Jacobi energy exchange, even all-to-all |
//! | `volrend` | shared volume raycast, tile queue |
//!
//! Alongside the SPLASH set, [`false_sharing`] registers three engineered
//! kernels (`fs_unpadded`, `fs_padded`, `fs_straddle`) whose communication
//! is invisible to the RAW matrices but lights up the coherence backend —
//! the ground truth for false-sharing detection.
//!
//! Every kernel validates its own numerical result (sorted output, residual
//! reduction, force/energy sanity, …) so that profiling never silently
//! measures a broken computation.

#![warn(missing_docs)]

use std::sync::Arc;

use lc_trace::TraceCtx;

pub mod barnes;
pub mod cholesky;
pub mod false_sharing;
pub mod fft;
pub mod fmm;
pub mod lu;
pub mod ocean;
pub mod radiosity;
pub mod radix;
pub mod raytrace;
pub mod rng;
pub mod synthetic;
pub mod util;
pub mod volrend;
pub mod water;

/// Input-size class, mirroring SPLASH's `simdev`/`simsmall`/`simlarge`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InputSize {
    /// Tiny development input (the paper's Figure 4/5a setting).
    SimDev,
    /// Small input.
    SimSmall,
    /// Large input (the paper's Figure 5b setting).
    SimLarge,
}

impl InputSize {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            InputSize::SimDev => "simdev",
            InputSize::SimSmall => "simsmall",
            InputSize::SimLarge => "simlarge",
        }
    }

    /// Pick among three per-size values.
    pub fn pick<T: Copy>(self, dev: T, small: T, large: T) -> T {
        match self {
            InputSize::SimDev => dev,
            InputSize::SimSmall => small,
            InputSize::SimLarge => large,
        }
    }
}

/// Parameters of one workload execution.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Input-size class.
    pub size: InputSize,
    /// RNG seed (same seed → same trace for race-free kernels).
    pub seed: u64,
}

impl RunConfig {
    /// Convenience constructor.
    pub fn new(threads: usize, size: InputSize, seed: u64) -> Self {
        assert!(threads >= 1);
        Self {
            threads,
            size,
            seed,
        }
    }
}

/// Outcome of one workload execution.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadResult {
    /// Deterministic numerical digest of the computed output (scheduling
    /// independent for race-free kernels).
    pub checksum: f64,
}

/// A runnable instrumented kernel.
pub trait Workload: Send + Sync {
    /// SPLASH-style name (e.g. `"lu_ncb"`).
    fn name(&self) -> &'static str;

    /// One-line description.
    fn description(&self) -> &'static str;

    /// Execute under `ctx`'s instrumentation. Panics on validation failure.
    fn run(&self, ctx: &Arc<TraceCtx>, cfg: &RunConfig) -> WorkloadResult;
}

/// All registered workloads: the fourteen SPLASH-style kernels in the
/// paper's Figure 4 order, followed by the engineered false-sharing
/// kernels the coherence backend is validated against.
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(barnes::Barnes),
        Box::new(fmm::Fmm),
        Box::new(ocean::OceanCp),
        Box::new(ocean::OceanNcp),
        Box::new(radiosity::Radiosity),
        Box::new(raytrace::Raytrace),
        Box::new(volrend::Volrend),
        Box::new(water::WaterNsq),
        Box::new(water::WaterSpatial),
        Box::new(cholesky::Cholesky),
        Box::new(fft::Fft),
        Box::new(lu::LuCb),
        Box::new(lu::LuNcb),
        Box::new(radix::Radix),
        Box::new(false_sharing::FsCounters { padded: false }),
        Box::new(false_sharing::FsCounters { padded: true }),
        Box::new(false_sharing::FsStraddle),
    ]
}

/// Look up a workload by name.
pub fn by_name(name: &str) -> Option<Box<dyn Workload>> {
    all_workloads().into_iter().find(|w| w.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_fourteen_splash_kernels_plus_fs_trio() {
        let ws = all_workloads();
        assert_eq!(ws.len(), 17, "14 SPLASH kernels + 3 false-sharing kernels");
        let mut names: Vec<&str> = ws.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 17);
        for fs in ["fs_unpadded", "fs_padded", "fs_straddle"] {
            assert!(by_name(fs).is_some(), "{fs} must be registered");
        }
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(by_name("radix").is_some());
        assert!(by_name("lu_ncb").is_some());
        assert!(by_name("does_not_exist").is_none());
    }

    #[test]
    fn input_size_pick() {
        assert_eq!(InputSize::SimDev.pick(1, 2, 3), 1);
        assert_eq!(InputSize::SimSmall.pick(1, 2, 3), 2);
        assert_eq!(InputSize::SimLarge.pick(1, 2, 3), 3);
        assert_eq!(InputSize::SimLarge.name(), "simlarge");
    }
}
