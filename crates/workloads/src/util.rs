//! Shared helpers for the kernels: partitioning and small numerics.

/// Contiguous chunk `[start, end)` of `n` items for thread `tid` of `t`
/// (remainder spread over the first threads).
pub fn chunk(n: usize, t: usize, tid: usize) -> (usize, usize) {
    assert!(tid < t);
    let base = n / t;
    let rem = n % t;
    let start = tid * base + tid.min(rem);
    let len = base + usize::from(tid < rem);
    (start, start + len)
}

/// Round-robin ownership: which thread owns item `i` of a cyclic
/// distribution over `t` threads.
#[inline]
pub fn cyclic_owner(i: usize, t: usize) -> usize {
    i % t
}

/// Largest power of two ≤ `n` (n ≥ 1).
pub fn prev_pow2(n: usize) -> usize {
    assert!(n >= 1);
    1 << (usize::BITS - 1 - n.leading_zeros())
}

/// Integer square root (floor).
pub fn isqrt(n: usize) -> usize {
    if n < 2 {
        return n;
    }
    let mut x = (n as f64).sqrt() as usize;
    while (x + 1) * (x + 1) <= n {
        x += 1;
    }
    while x * x > n {
        x -= 1;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_exactly() {
        for n in [0usize, 1, 7, 100, 101] {
            for t in [1usize, 3, 8] {
                let mut covered = 0;
                let mut prev_end = 0;
                for tid in 0..t {
                    let (s, e) = chunk(n, t, tid);
                    assert_eq!(s, prev_end);
                    prev_end = e;
                    covered += e - s;
                }
                assert_eq!(covered, n);
                assert_eq!(prev_end, n);
            }
        }
    }

    #[test]
    fn chunk_balance_is_within_one() {
        for tid in 0..8 {
            let (s, e) = chunk(100, 8, tid);
            assert!((e - s) == 12 || (e - s) == 13);
        }
    }

    #[test]
    fn pow2_and_isqrt() {
        assert_eq!(prev_pow2(1), 1);
        assert_eq!(prev_pow2(2), 2);
        assert_eq!(prev_pow2(3), 2);
        assert_eq!(prev_pow2(17), 16);
        assert_eq!(isqrt(0), 0);
        assert_eq!(isqrt(15), 3);
        assert_eq!(isqrt(16), 4);
        assert_eq!(isqrt(10_000), 100);
    }

    #[test]
    fn cyclic_owner_wraps() {
        assert_eq!(cyclic_owner(0, 4), 0);
        assert_eq!(cyclic_owner(5, 4), 1);
    }
}
