//! `fft` — six-step (transpose-based) complex FFT, SPLASH-2 FFT skeleton.
//!
//! The length-n transform (n = m²) is computed as m row FFTs, a twiddle
//! scaling, and m column FFTs. Rows are distributed over threads; the
//! column pass reads data written by *every* other thread — the transpose
//! all-to-all that gives spectral codes their signature communication
//! pattern. Local butterfly scratch is uninstrumented (the user-selected
//! "do not analyze" partition of §IV-A); the shared input/intermediate/
//! output arrays are fully traced.

use std::sync::Arc;

use lc_trace::{enter_func, enter_loop, run_threads, InstrumentedBarrier, TraceCtx};

use crate::rng::Xoshiro256;
use crate::util::chunk;
use crate::{RunConfig, Workload, WorkloadResult};

/// In-place iterative radix-2 Cooley–Tukey FFT (decimation in time).
pub fn fft_inplace(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    assert!(n.is_power_of_two() && n == im.len());
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 0..n {
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
        let mut bit = n >> 1;
        while bit > 0 && j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
    }
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ur, ui) = (re[i + k], im[i + k]);
                let (vr, vi) = (
                    re[i + k + len / 2] * cr - im[i + k + len / 2] * ci,
                    re[i + k + len / 2] * ci + im[i + k + len / 2] * cr,
                );
                re[i + k] = ur + vr;
                im[i + k] = ui + vi;
                re[i + k + len / 2] = ur - vr;
                im[i + k + len / 2] = ui - vi;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Naive O(n²) DFT, the correctness oracle.
pub fn naive_dft(re: &[f64], im: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = re.len();
    let mut or = vec![0.0; n];
    let mut oi = vec![0.0; n];
    for (k, (orv, oiv)) in or.iter_mut().zip(oi.iter_mut()).enumerate() {
        for j in 0..n {
            let ang = -2.0 * std::f64::consts::PI * (j * k % n) as f64 / n as f64;
            let (c, s) = (ang.cos(), ang.sin());
            *orv += re[j] * c - im[j] * s;
            *oiv += re[j] * s + im[j] * c;
        }
    }
    (or, oi)
}

/// The six-step FFT workload.
pub struct Fft;

impl Workload for Fft {
    fn name(&self) -> &'static str {
        "fft"
    }

    fn description(&self) -> &'static str {
        "six-step transpose FFT: row FFTs, twiddle, all-to-all column FFTs"
    }

    fn run(&self, ctx: &Arc<TraceCtx>, cfg: &RunConfig) -> WorkloadResult {
        let m = cfg.size.pick(16usize, 32, 64); // n = m*m
        let n = m * m;
        let iters = cfg.size.pick(6, 8, 10);
        let t = cfg.threads.min(m);

        let xr = ctx.alloc::<f64>(n);
        let xi = ctx.alloc::<f64>(n);
        let dr = ctx.alloc::<f64>(n); // intermediate D[j1][k2], row-major
        let di = ctx.alloc::<f64>(n);
        let yr = ctx.alloc::<f64>(n);
        let yi = ctx.alloc::<f64>(n);

        let mut rng = Xoshiro256::seed_from(cfg.seed);
        let input_re: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let input_im: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        for i in 0..n {
            xr.poke(i, input_re[i]);
            xi.poke(i, input_im[i]);
        }

        let f = ctx.func("fft");
        let l_iter = ctx.root_loop("fft_iter", f);
        let l_rows = ctx.nested_loop("row_ffts", l_iter, f);
        let l_cols = ctx.nested_loop("col_ffts", l_iter, f);
        let bar = InstrumentedBarrier::new(ctx, t, "fft_barrier", f);

        run_threads(t, |tid| {
            let _fg = enter_func(f);
            let (lo, hi) = chunk(m, t, tid);
            let mut sr = vec![0.0f64; m];
            let mut si = vec![0.0f64; m];
            for _ in 0..iters {
                let _ig = enter_loop(l_iter);
                {
                    // Step 1+2: row j1 gathers the stride-m slice of x,
                    // FFTs it locally, applies twiddles, stores to D.
                    let _g = enter_loop(l_rows);
                    for j1 in lo..hi {
                        for j2 in 0..m {
                            sr[j2] = xr.load(j1 + m * j2);
                            si[j2] = xi.load(j1 + m * j2);
                        }
                        fft_inplace(&mut sr, &mut si);
                        for k2 in 0..m {
                            let ang = -2.0 * std::f64::consts::PI * (j1 * k2) as f64 / n as f64;
                            let (c, s) = (ang.cos(), ang.sin());
                            dr.store(j1 * m + k2, sr[k2] * c - si[k2] * s);
                            di.store(j1 * m + k2, sr[k2] * s + si[k2] * c);
                        }
                    }
                }
                bar.wait();
                {
                    // Step 3: column k2 of D was written by all row owners —
                    // the transpose all-to-all. FFT it and scatter to y.
                    let _g = enter_loop(l_cols);
                    for k2 in lo..hi {
                        for j1 in 0..m {
                            sr[j1] = dr.load(j1 * m + k2);
                            si[j1] = di.load(j1 * m + k2);
                        }
                        fft_inplace(&mut sr, &mut si);
                        for k1 in 0..m {
                            yr.store(k2 + m * k1, sr[k1]);
                            yi.store(k2 + m * k1, si[k1]);
                        }
                    }
                }
                bar.wait();
            }
        });

        // Validate against the O(n²) oracle on small inputs, Parseval
        // otherwise.
        if n <= 1024 {
            let (er, ei) = naive_dft(&input_re, &input_im);
            for k in (0..n).step_by(7) {
                let (gr, gi) = (yr.peek(k), yi.peek(k));
                assert!(
                    (gr - er[k]).abs() < 1e-6 && (gi - ei[k]).abs() < 1e-6,
                    "fft mismatch at {k}: got ({gr},{gi}) want ({},{})",
                    er[k],
                    ei[k]
                );
            }
        } else {
            let ein: f64 = input_re
                .iter()
                .zip(&input_im)
                .map(|(r, i)| r * r + i * i)
                .sum();
            let eout: f64 = (0..n)
                .map(|k| {
                    let (r, i) = (yr.peek(k), yi.peek(k));
                    r * r + i * i
                })
                .sum::<f64>()
                / n as f64;
            assert!(
                ((ein - eout) / ein).abs() < 1e-9,
                "Parseval violated: {ein} vs {eout}"
            );
        }

        let checksum = (0..n).map(|k| yr.peek(k).abs() + yi.peek(k).abs()).sum();
        WorkloadResult { checksum }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InputSize;
    use lc_trace::{NoopSink, RecordingSink};

    #[test]
    fn fft_inplace_matches_naive_dft() {
        let mut rng = Xoshiro256::seed_from(5);
        let re: Vec<f64> = (0..64).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let im: Vec<f64> = (0..64).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let (er, ei) = naive_dft(&re, &im);
        let (mut gr, mut gi) = (re.clone(), im.clone());
        fft_inplace(&mut gr, &mut gi);
        for k in 0..64 {
            assert!((gr[k] - er[k]).abs() < 1e-9, "re mismatch at {k}");
            assert!((gi[k] - ei[k]).abs() < 1e-9, "im mismatch at {k}");
        }
    }

    #[test]
    fn six_step_workload_validates_internally() {
        // The run() itself asserts against the oracle at SimDev size.
        let ctx = TraceCtx::new(Arc::new(NoopSink), 4);
        let r = Fft.run(&ctx, &RunConfig::new(4, InputSize::SimDev, 42));
        assert!(r.checksum.is_finite() && r.checksum > 0.0);
    }

    #[test]
    fn checksum_is_thread_count_independent() {
        let c = |t| {
            let ctx = TraceCtx::new(Arc::new(NoopSink), t);
            Fft.run(&ctx, &RunConfig::new(t, InputSize::SimDev, 9))
                .checksum
        };
        assert!((c(1) - c(4)).abs() < 1e-6);
    }

    #[test]
    fn column_pass_reads_cross_thread_data() {
        let rec = Arc::new(RecordingSink::new());
        let ctx = TraceCtx::new(rec.clone(), 4);
        Fft.run(&ctx, &RunConfig::new(4, InputSize::SimDev, 1));
        let trace = rec.finish();
        let col_loop = ctx
            .loops()
            .all_loops()
            .into_iter()
            .find(|l| ctx.loops().name(*l) == "col_ffts")
            .unwrap();
        let col_reads = trace
            .events()
            .iter()
            .filter(|e| e.event.loop_id == col_loop)
            .count();
        assert!(col_reads > 1000);
    }
}
