//! `lu_cb` / `lu_ncb` — blocked dense LU factorization (SPLASH-2 LU).
//!
//! Right-looking factorization without pivoting (the input is made
//! diagonally dominant, as in SPLASH). Blocks are owned 2-D-cyclically;
//! per elimination step the diagonal owner factors (`lu`), the panel
//! owners divide by it (`bdiv`/`bmodd` — reading the diagonal block, a
//! one-to-many broadcast), and interior owners update (`bmod`, with the
//! inner `daxpy` loop). These are exactly the node names of the paper's
//! Figure 6, including `TouchA` (the initial owner-touch of the matrix)
//! and `barrier`.
//!
//! The two variants differ only in memory layout, as in SPLASH:
//! * `lu_cb` — **contiguous blocks**: each block occupies a contiguous
//!   address range (block-major).
//! * `lu_ncb` — **non-contiguous blocks**: a plain row-major global array,
//!   so a block's rows are strided through memory.
//!
//! Identical arithmetic, different address streams — which is what
//! signature aliasing and stride compression react to.

use std::sync::Arc;

use lc_trace::{enter_func, enter_loop, run_threads, InstrumentedBarrier, TraceCtx, TracedBuffer};

use crate::rng::Xoshiro256;
use crate::{RunConfig, Workload, WorkloadResult};

/// Block edge length.
const B: usize = 8;

#[derive(Clone, Copy)]
struct Layout {
    n: usize,
    nb: usize,
    contiguous: bool,
}

impl Layout {
    #[inline]
    fn idx(&self, bi: usize, bj: usize, i: usize, j: usize) -> usize {
        if self.contiguous {
            (bi * self.nb + bj) * B * B + i * B + j
        } else {
            (bi * B + i) * self.n + bj * B + j
        }
    }
}

/// 2-D cyclic block ownership over a pr × pc thread grid.
#[derive(Clone, Copy)]
struct Owners {
    pr: usize,
    pc: usize,
}

impl Owners {
    fn new(t: usize) -> Self {
        // Largest divisor of t not exceeding sqrt(t).
        let mut pr = 1;
        let mut d = 1;
        while d * d <= t {
            if t % d == 0 {
                pr = d;
            }
            d += 1;
        }
        Self { pr, pc: t / pr }
    }

    #[inline]
    fn owner(&self, bi: usize, bj: usize) -> usize {
        (bi % self.pr) * self.pc + (bj % self.pc)
    }
}

fn run_lu(ctx: &Arc<TraceCtx>, cfg: &RunConfig, contiguous: bool) -> WorkloadResult {
    let n = cfg.size.pick(48usize, 96, 160);
    assert_eq!(n % B, 0);
    let lay = Layout {
        n,
        nb: n / B,
        contiguous,
    };
    let nb = lay.nb;
    let t = cfg.threads;
    let owners = Owners::new(t);

    // Diagonally dominant source matrix (untraced).
    let mut rng = Xoshiro256::seed_from(cfg.seed);
    let mut a0 = vec![0.0f64; n * n];
    for r in 0..n {
        for c in 0..n {
            a0[r * n + c] = rng.range_f64(-1.0, 1.0) + if r == c { n as f64 } else { 0.0 };
        }
    }

    let a: TracedBuffer<f64> = ctx.alloc(n * n);

    let f = ctx.func("lu");
    let l_touch = ctx.root_loop("TouchA", f);
    let l_outer = ctx.root_loop("lu", f);
    let l_bdiv = ctx.nested_loop("bdiv", l_outer, f);
    let l_bmodd = ctx.nested_loop("bmodd", l_outer, f);
    let l_bmod = ctx.nested_loop("bmod", l_outer, f);
    let l_daxpy = ctx.nested_loop("daxpy", l_bmod, f);
    let bar = InstrumentedBarrier::new(ctx, t, "barrier", f);

    run_threads(t, |tid| {
        let _fg = enter_func(f);

        // TouchA: each owner initializes (traced writes) its blocks.
        {
            let _g = enter_loop(l_touch);
            for bi in 0..nb {
                for bj in 0..nb {
                    if owners.owner(bi, bj) == tid {
                        for i in 0..B {
                            for j in 0..B {
                                a.store(lay.idx(bi, bj, i, j), a0[(bi * B + i) * n + bj * B + j]);
                            }
                        }
                    }
                }
            }
        }
        bar.wait();

        for k in 0..nb {
            let _og = enter_loop(l_outer);
            // Factor the diagonal block.
            if owners.owner(k, k) == tid {
                for i in 0..B {
                    let pivot = a.load(lay.idx(k, k, i, i));
                    for r in i + 1..B {
                        let l = a.load(lay.idx(k, k, r, i)) / pivot;
                        a.store(lay.idx(k, k, r, i), l);
                        for c in i + 1..B {
                            let u = a.load(lay.idx(k, k, i, c));
                            a.update(lay.idx(k, k, r, c), |v| v - l * u);
                        }
                    }
                }
            }
            bar.wait();

            // Panel below: A(bi,k) ← A(bi,k) · U(k,k)⁻¹ (reads the diag).
            {
                let _g = enter_loop(l_bdiv);
                for bi in k + 1..nb {
                    if owners.owner(bi, k) != tid {
                        continue;
                    }
                    for r in 0..B {
                        for i in 0..B {
                            let mut s = a.load(lay.idx(bi, k, r, i));
                            for l in 0..i {
                                s -= a.load(lay.idx(bi, k, r, l)) * a.load(lay.idx(k, k, l, i));
                            }
                            s /= a.load(lay.idx(k, k, i, i));
                            a.store(lay.idx(bi, k, r, i), s);
                        }
                    }
                }
            }
            // Panel right: A(k,bj) ← L(k,k)⁻¹ · A(k,bj).
            {
                let _g = enter_loop(l_bmodd);
                for bj in k + 1..nb {
                    if owners.owner(k, bj) != tid {
                        continue;
                    }
                    for c in 0..B {
                        for i in 0..B {
                            let mut s = a.load(lay.idx(k, bj, i, c));
                            for l in 0..i {
                                s -= a.load(lay.idx(k, k, i, l)) * a.load(lay.idx(k, bj, l, c));
                            }
                            a.store(lay.idx(k, bj, i, c), s);
                        }
                    }
                }
            }
            bar.wait();

            // Interior update: A(bi,bj) -= A(bi,k) · A(k,bj).
            {
                let _g = enter_loop(l_bmod);
                for bi in k + 1..nb {
                    for bj in k + 1..nb {
                        if owners.owner(bi, bj) != tid {
                            continue;
                        }
                        for i in 0..B {
                            for l in 0..B {
                                let aik = a.load(lay.idx(bi, k, i, l));
                                let _dg = enter_loop(l_daxpy);
                                for j in 0..B {
                                    let akj = a.load(lay.idx(k, bj, l, j));
                                    a.update(lay.idx(bi, bj, i, j), |v| v - aik * akj);
                                }
                            }
                        }
                    }
                }
            }
            bar.wait();
        }
    });

    // Verify L·U ≈ A0 on sampled entries.
    let get = |r: usize, c: usize| a.peek(lay.idx(r / B, c / B, r % B, c % B));
    let check = |r: usize, c: usize| {
        let mut s = 0.0;
        let kmax = r.min(c);
        for k in 0..=kmax {
            let lrk = if k == r { 1.0 } else { get(r, k) };
            if k <= c {
                s += lrk * get(k, c);
            }
        }
        let want = a0[r * n + c];
        assert!(
            (s - want).abs() < 1e-6 * n as f64,
            "LU verify failed at ({r},{c}): {s} vs {want}"
        );
    };
    let mut rng2 = Xoshiro256::seed_from(cfg.seed ^ 0xdead);
    for _ in 0..64 {
        check(rng2.below(n as u64) as usize, rng2.below(n as u64) as usize);
    }

    let checksum = (0..n).map(|i| get(i, i).abs()).sum();
    WorkloadResult { checksum }
}

/// LU with contiguous block allocation (`lu_cb`).
pub struct LuCb;

impl Workload for LuCb {
    fn name(&self) -> &'static str {
        "lu_cb"
    }

    fn description(&self) -> &'static str {
        "blocked LU, contiguous block layout (SPLASH lu-contiguous)"
    }

    fn run(&self, ctx: &Arc<TraceCtx>, cfg: &RunConfig) -> WorkloadResult {
        run_lu(ctx, cfg, true)
    }
}

/// LU with non-contiguous (row-major global) layout (`lu_ncb`).
pub struct LuNcb;

impl Workload for LuNcb {
    fn name(&self) -> &'static str {
        "lu_ncb"
    }

    fn description(&self) -> &'static str {
        "blocked LU, non-contiguous global layout (SPLASH lu-non-contiguous)"
    }

    fn run(&self, ctx: &Arc<TraceCtx>, cfg: &RunConfig) -> WorkloadResult {
        run_lu(ctx, cfg, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InputSize, Workload};
    use lc_trace::NoopSink;

    #[test]
    fn both_layouts_factor_correctly_and_agree() {
        // Internal sampled L·U ≈ A check runs inside run(); equal checksums
        // confirm the layouts compute the same factorization.
        let cb = {
            let ctx = TraceCtx::new(Arc::new(NoopSink), 4);
            LuCb.run(&ctx, &RunConfig::new(4, InputSize::SimDev, 11))
                .checksum
        };
        let ncb = {
            let ctx = TraceCtx::new(Arc::new(NoopSink), 4);
            LuNcb
                .run(&ctx, &RunConfig::new(4, InputSize::SimDev, 11))
                .checksum
        };
        assert!((cb - ncb).abs() < 1e-9, "{cb} vs {ncb}");
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let c = |t| {
            let ctx = TraceCtx::new(Arc::new(NoopSink), t);
            LuNcb
                .run(&ctx, &RunConfig::new(t, InputSize::SimDev, 3))
                .checksum
        };
        assert!((c(1) - c(6)).abs() < 1e-9);
    }

    #[test]
    fn owners_grid_is_near_square_and_covers() {
        for t in [1usize, 2, 4, 6, 8, 12, 16, 32] {
            let o = Owners::new(t);
            assert_eq!(o.pr * o.pc, t);
            assert!(o.pr <= o.pc);
            let mut seen = std::collections::HashSet::new();
            for bi in 0..o.pr {
                for bj in 0..o.pc {
                    seen.insert(o.owner(bi, bj));
                }
            }
            assert_eq!(seen.len(), t, "t={t}");
        }
    }

    #[test]
    fn figure6_loop_names_are_registered() {
        let ctx = TraceCtx::new(Arc::new(NoopSink), 2);
        LuNcb.run(&ctx, &RunConfig::new(2, InputSize::SimDev, 1));
        let names: Vec<String> = ctx
            .loops()
            .all_loops()
            .into_iter()
            .map(|l| ctx.loops().name(l))
            .collect();
        for expect in ["TouchA", "lu", "bdiv", "bmod", "daxpy", "barrier"] {
            assert!(names.iter().any(|x| x == expect), "missing {expect}");
        }
        // daxpy is nested inside bmod, as in Figure 6.
        let daxpy = ctx
            .loops()
            .all_loops()
            .into_iter()
            .find(|l| ctx.loops().name(*l) == "daxpy")
            .unwrap();
        assert_eq!(ctx.loops().name(ctx.loops().parent(daxpy)), "bmod");
    }
}
