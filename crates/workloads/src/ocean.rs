//! `ocean_cp` / `ocean_ncp` — iterative grid solvers (SPLASH-2 OCEAN).
//!
//! Both solve a Laplace relaxation on a square grid with fixed boundary;
//! they differ in decomposition, as the SPLASH "contiguous partitions" vs
//! "non-contiguous partitions" variants do:
//!
//! * `ocean_cp` — red-black Gauss–Seidel SOR over **row slabs**: each
//!   thread exchanges only its top/bottom halo rows with its two
//!   neighbours (1-D nearest-neighbour communication).
//! * `ocean_ncp` — Jacobi over **2-D tiles**: each thread exchanges halos
//!   with up to four neighbours (2-D structured-grid communication).
//!
//! Validation: the residual ‖∇²φ‖ must shrink across iterations.

use std::sync::Arc;

use lc_trace::{enter_func, enter_loop, run_threads, InstrumentedBarrier, TraceCtx, TracedBuffer};

use crate::rng::Xoshiro256;
use crate::util::{chunk, isqrt};
use crate::{RunConfig, Workload, WorkloadResult};

fn init_grid(g: usize, seed: u64, grid: &TracedBuffer<f64>) {
    let mut rng = Xoshiro256::seed_from(seed);
    for i in 0..g {
        for j in 0..g {
            let v = if i == 0 || j == 0 || i == g - 1 || j == g - 1 {
                // Fixed hot/cold boundary.
                if i == 0 {
                    1.0
                } else {
                    0.0
                }
            } else {
                rng.range_f64(0.0, 1.0)
            };
            grid.poke(i * g + j, v);
        }
    }
}

/// Untraced residual ‖∇²φ‖₁ over the interior.
fn residual(g: usize, grid: &TracedBuffer<f64>) -> f64 {
    let mut r = 0.0;
    for i in 1..g - 1 {
        for j in 1..g - 1 {
            let lap = grid.peek((i - 1) * g + j)
                + grid.peek((i + 1) * g + j)
                + grid.peek(i * g + j - 1)
                + grid.peek(i * g + j + 1)
                - 4.0 * grid.peek(i * g + j);
            r += lap.abs();
        }
    }
    r
}

/// Red-black SOR with a coarse-grid (multigrid) correction over row slabs
/// (`ocean_cp`).
///
/// SPLASH OCEAN's solver is multigrid; this kernel keeps that structure:
/// smoothing sweeps on the fine grid plus a periodic V-cycle leg —
/// `restrict` the residual to a half-resolution grid, Jacobi-`coarse_relax`
/// the error equation there, `prolong` the correction back. All three
/// phases exchange halos, adding the coarse-level neighbour traffic the
/// original exhibits.
pub struct OceanCp;

impl Workload for OceanCp {
    fn name(&self) -> &'static str {
        "ocean_cp"
    }

    fn description(&self) -> &'static str {
        "multigrid red-black SOR on row slabs: 1-D halo exchange on two levels"
    }

    fn run(&self, ctx: &Arc<TraceCtx>, cfg: &RunConfig) -> WorkloadResult {
        let g = cfg.size.pick(64usize, 96, 160);
        let iters = cfg.size.pick(8, 10, 12);
        let t = cfg.threads.min(g - 2);
        let omega = 1.5;
        let gc = g / 2; // coarse grid edge
        let mg_every = 4; // V-cycle leg frequency
        let coarse_sweeps = 4;

        let grid: TracedBuffer<f64> = ctx.alloc(g * g);
        let coarse_r: TracedBuffer<f64> = ctx.alloc(gc * gc); // restricted residual
        let coarse_e: TracedBuffer<f64> = ctx.alloc(gc * gc); // error estimate (ping)
        let coarse_e2: TracedBuffer<f64> = ctx.alloc(gc * gc); // error estimate (pong)
        init_grid(g, cfg.seed, &grid);
        let r0 = residual(g, &grid);

        let f = ctx.func("ocean_cp");
        let l_iter = ctx.root_loop("relax_iter", f);
        let l_red = ctx.nested_loop("relax_red", l_iter, f);
        let l_black = ctx.nested_loop("relax_black", l_iter, f);
        let l_mg = ctx.root_loop("mg_cycle", f);
        let l_restrict = ctx.nested_loop("restrict", l_mg, f);
        let l_coarse = ctx.nested_loop("coarse_relax", l_mg, f);
        let l_prolong = ctx.nested_loop("prolong", l_mg, f);
        let bar = InstrumentedBarrier::new(ctx, t, "barrier", f);

        run_threads(t, |tid| {
            let _fg = enter_func(f);
            // Interior rows 1..g-1 split into slabs; matching coarse slabs.
            let (lo, hi) = chunk(g - 2, t, tid);
            let (lo, hi) = (lo + 1, hi + 1);
            let (clo, chi) = chunk(gc - 2, t, tid);
            let (clo, chi) = (clo + 1, chi + 1);

            for it in 0..iters {
                let _ig = enter_loop(l_iter);
                for color in 0..2usize {
                    let _cg = enter_loop(if color == 0 { l_red } else { l_black });
                    for i in lo..hi {
                        for j in 1..g - 1 {
                            if (i + j) % 2 != color {
                                continue;
                            }
                            let up = grid.load((i - 1) * g + j); // halo at i==lo
                            let down = grid.load((i + 1) * g + j); // halo at i==hi-1
                            let left = grid.load(i * g + j - 1);
                            let right = grid.load(i * g + j + 1);
                            let old = grid.load(i * g + j);
                            grid.store(
                                i * g + j,
                                (1.0 - omega) * old + omega * 0.25 * (up + down + left + right),
                            );
                        }
                    }
                    bar.wait();
                }

                if (it + 1) % mg_every != 0 {
                    continue;
                }
                let _mg = enter_loop(l_mg);
                {
                    // Injection restriction of the fine residual.
                    let _g2 = enter_loop(l_restrict);
                    for ci in clo..chi {
                        for cj in 1..gc - 1 {
                            let (i, j) = (2 * ci, 2 * cj);
                            let r = grid.load((i - 1) * g + j)
                                + grid.load((i + 1) * g + j)
                                + grid.load(i * g + j - 1)
                                + grid.load(i * g + j + 1)
                                - 4.0 * grid.load(i * g + j);
                            coarse_r.store(ci * gc + cj, r);
                            coarse_e.store(ci * gc + cj, 0.0);
                            coarse_e2.store(ci * gc + cj, 0.0);
                        }
                    }
                }
                bar.wait();
                {
                    // Jacobi on the coarse error equation 4e − Σe = 4·r_c.
                    let _g2 = enter_loop(l_coarse);
                    for sweep in 0..coarse_sweeps {
                        let (src, dst) = if sweep % 2 == 0 {
                            (&coarse_e, &coarse_e2)
                        } else {
                            (&coarse_e2, &coarse_e)
                        };
                        for ci in clo..chi {
                            for cj in 1..gc - 1 {
                                let nsum = src.load((ci - 1) * gc + cj)
                                    + src.load((ci + 1) * gc + cj)
                                    + src.load(ci * gc + cj - 1)
                                    + src.load(ci * gc + cj + 1);
                                let e = 0.25 * nsum + coarse_r.load(ci * gc + cj);
                                dst.store(ci * gc + cj, e);
                            }
                        }
                        bar.wait();
                    }
                }
                {
                    // Piecewise-constant prolongation, under-relaxed.
                    let _g2 = enter_loop(l_prolong);
                    let e_final = if coarse_sweeps % 2 == 0 {
                        &coarse_e
                    } else {
                        &coarse_e2
                    };
                    for i in lo..hi {
                        let ci = (i / 2).clamp(1, gc - 2);
                        for j in 1..g - 1 {
                            let cj = (j / 2).clamp(1, gc - 2);
                            let e = e_final.load(ci * gc + cj);
                            grid.update(i * g + j, |v| v + 0.5 * e);
                        }
                    }
                }
                bar.wait();
            }
        });

        let r1 = residual(g, &grid);
        assert!(
            r1 < r0 * 0.8,
            "multigrid SOR failed to reduce residual: {r0} -> {r1}"
        );
        WorkloadResult { checksum: r1 }
    }
}

/// Jacobi over 2-D tiles (`ocean_ncp`).
pub struct OceanNcp;

impl Workload for OceanNcp {
    fn name(&self) -> &'static str {
        "ocean_ncp"
    }

    fn description(&self) -> &'static str {
        "Jacobi on 2-D tiles: 4-neighbour halo exchange"
    }

    fn run(&self, ctx: &Arc<TraceCtx>, cfg: &RunConfig) -> WorkloadResult {
        let g = cfg.size.pick(64usize, 96, 160);
        let iters = cfg.size.pick(8, 10, 12);
        let t = cfg.threads;

        let a: TracedBuffer<f64> = ctx.alloc(g * g);
        let b: TracedBuffer<f64> = ctx.alloc(g * g);
        init_grid(g, cfg.seed, &a);
        for i in 0..g * g {
            b.poke(i, a.peek(i));
        }
        let r0 = residual(g, &a);

        // Near-square thread grid.
        let pr = {
            let mut best = 1;
            let mut d = 1;
            while d * d <= t {
                if t % d == 0 {
                    best = d;
                }
                d += 1;
            }
            best.min(isqrt(t).max(1))
        };
        let pc = t / pr;

        let f = ctx.func("ocean_ncp");
        let l_iter = ctx.root_loop("jacobi_iter", f);
        let l_sweep = ctx.nested_loop("sweep", l_iter, f);
        let bar = InstrumentedBarrier::new(ctx, t, "barrier", f);

        run_threads(t, |tid| {
            let _fg = enter_func(f);
            let (tr, tc) = (tid / pc, tid % pc);
            let (rlo, rhi) = chunk(g - 2, pr, tr);
            let (clo, chi) = chunk(g - 2, pc, tc);
            let (rlo, rhi, clo, chi) = (rlo + 1, rhi + 1, clo + 1, chi + 1);
            for it in 0..iters {
                let _ig = enter_loop(l_iter);
                let (src, dst) = if it % 2 == 0 { (&a, &b) } else { (&b, &a) };
                {
                    let _sg = enter_loop(l_sweep);
                    for i in rlo..rhi {
                        for j in clo..chi {
                            let v = 0.25
                                * (src.load((i - 1) * g + j)
                                    + src.load((i + 1) * g + j)
                                    + src.load(i * g + j - 1)
                                    + src.load(i * g + j + 1));
                            dst.store(i * g + j, v);
                        }
                    }
                }
                bar.wait();
            }
        });

        let final_grid = if iters % 2 == 0 { &a } else { &b };
        let r1 = residual(g, final_grid);
        assert!(
            r1 < r0 * 0.8,
            "Jacobi failed to reduce residual: {r0} -> {r1}"
        );
        WorkloadResult { checksum: r1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InputSize;
    use lc_trace::{NoopSink, RecordingSink};

    #[test]
    fn cp_converges_any_thread_count() {
        for t in [1usize, 2, 5] {
            let ctx = TraceCtx::new(Arc::new(NoopSink), t);
            let r = OceanCp.run(&ctx, &RunConfig::new(t, InputSize::SimDev, 3));
            assert!(r.checksum.is_finite());
        }
    }

    #[test]
    fn ncp_converges_any_thread_count() {
        for t in [1usize, 4, 6] {
            let ctx = TraceCtx::new(Arc::new(NoopSink), t);
            let r = OceanNcp.run(&ctx, &RunConfig::new(t, InputSize::SimDev, 3));
            assert!(r.checksum.is_finite());
        }
    }

    #[test]
    fn ncp_is_thread_count_deterministic() {
        // Jacobi ping-pong has no intra-iteration order dependence.
        let c = |t| {
            let ctx = TraceCtx::new(Arc::new(NoopSink), t);
            OceanNcp
                .run(&ctx, &RunConfig::new(t, InputSize::SimDev, 8))
                .checksum
        };
        assert!((c(1) - c(4)).abs() < 1e-12);
    }

    #[test]
    fn cp_emits_halo_reads_in_relax_loops() {
        let rec = Arc::new(RecordingSink::new());
        let ctx = TraceCtx::new(rec.clone(), 4);
        OceanCp.run(&ctx, &RunConfig::new(4, InputSize::SimDev, 1));
        let names: Vec<String> = ctx
            .loops()
            .all_loops()
            .into_iter()
            .map(|l| ctx.loops().name(l))
            .collect();
        assert!(names.iter().any(|n| n == "relax_red"));
        assert!(names.iter().any(|n| n == "relax_black"));
        assert!(rec.finish().len() > 50_000);
    }
}
