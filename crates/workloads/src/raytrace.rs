//! `raytrace` — sphere-scene ray caster (SPLASH-2 RAYTRACE skeleton).
//!
//! Thread 0 builds the shared scene (traced writes); workers then pull
//! image tiles from a shared traced counter (the dynamic task queue that
//! gives SPLASH raytrace its master/worker-flavoured irregular pattern) and
//! shade pixels by intersecting every sphere — one-builder/many-reader
//! traffic on the scene plus queue contention.
//!
//! Pixel values are scheduling-independent, so the image checksum is
//! deterministic even though tile→thread assignment is not.

use std::sync::Arc;

use lc_trace::{enter_func, enter_loop, run_threads, InstrumentedBarrier, TraceCtx, TracedBuffer};

use crate::rng::Xoshiro256;
use crate::{RunConfig, Workload, WorkloadResult};

/// f64 fields per sphere: cx, cy, cz, r, brightness.
const SF: usize = 5;
/// Tile edge in pixels.
const TILE: usize = 8;

/// The ray-tracing workload.
pub struct Raytrace;

impl Workload for Raytrace {
    fn name(&self) -> &'static str {
        "raytrace"
    }

    fn description(&self) -> &'static str {
        "sphere raycast with shared scene and dynamic tile queue"
    }

    fn run(&self, ctx: &Arc<TraceCtx>, cfg: &RunConfig) -> WorkloadResult {
        let w = cfg.size.pick(32usize, 48, 64);
        let ns = cfg.size.pick(8usize, 12, 16);
        let t = cfg.threads;
        let tiles_x = w / TILE;
        let n_tiles = tiles_x * tiles_x;

        let scene: TracedBuffer<f64> = ctx.alloc(ns * SF);
        let image: TracedBuffer<f64> = ctx.alloc(w * w);
        let queue: TracedBuffer<u64> = ctx.alloc(1);

        let f = ctx.func("raytrace");
        let l_scene = ctx.root_loop("build_scene", f);
        let l_render = ctx.root_loop("render", f);
        let l_isect = ctx.nested_loop("intersect", l_render, f);
        let bar = InstrumentedBarrier::new(ctx, t, "barrier", f);

        let seed = cfg.seed;
        run_threads(t, |tid| {
            let _fg = enter_func(f);
            if tid == 0 {
                let _g = enter_loop(l_scene);
                let mut rng = Xoshiro256::seed_from(seed);
                for s in 0..ns {
                    scene.store(s * SF, rng.range_f64(0.1, 0.9)); // cx
                    scene.store(s * SF + 1, rng.range_f64(0.1, 0.9)); // cy
                    scene.store(s * SF + 2, rng.range_f64(1.0, 3.0)); // cz
                    scene.store(s * SF + 3, rng.range_f64(0.05, 0.25)); // r
                    scene.store(s * SF + 4, rng.range_f64(0.3, 1.0)); // brightness
                }
            }
            bar.wait();

            {
                let _rg = enter_loop(l_render);
                loop {
                    let tile = queue.fetch_add(0, 1) as usize;
                    if tile >= n_tiles {
                        break;
                    }
                    let (ty, tx) = (tile / tiles_x, tile % tiles_x);
                    for py in ty * TILE..(ty + 1) * TILE {
                        for px in tx * TILE..(tx + 1) * TILE {
                            // Orthographic ray through (x, y) along +z.
                            let rx = (px as f64 + 0.5) / w as f64;
                            let ry = (py as f64 + 0.5) / w as f64;
                            let mut best_z = f64::INFINITY;
                            let mut shade = 0.0;
                            {
                                let _ig = enter_loop(l_isect);
                                for s in 0..ns {
                                    let dx = rx - scene.load(s * SF);
                                    let dy = ry - scene.load(s * SF + 1);
                                    let r = scene.load(s * SF + 3);
                                    let d2 = dx * dx + dy * dy;
                                    if d2 > r * r {
                                        continue;
                                    }
                                    let dz = (r * r - d2).sqrt();
                                    let z = scene.load(s * SF + 2) - dz;
                                    if z < best_z {
                                        best_z = z;
                                        // Lambert shading with the surface
                                        // normal's z component.
                                        shade = scene.load(s * SF + 4) * (dz / r);
                                    }
                                }
                            }
                            image.store(py * w + px, shade);
                        }
                    }
                }
            }
        });

        // Deterministic image digest; require real hits and real misses.
        let mut hits = 0usize;
        let mut checksum = 0.0;
        for i in 0..w * w {
            let v = image.peek(i);
            assert!((0.0..=1.0).contains(&v));
            if v > 0.0 {
                hits += 1;
            }
            checksum += v * ((i % 31) as f64 + 1.0);
        }
        assert!(hits > 0, "no sphere was hit");
        assert!(hits < w * w, "background vanished");
        WorkloadResult { checksum }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InputSize;
    use lc_trace::{NoopSink, RecordingSink};

    #[test]
    fn image_is_schedule_independent() {
        let c = |t| {
            let ctx = TraceCtx::new(Arc::new(NoopSink), t);
            Raytrace
                .run(&ctx, &RunConfig::new(t, InputSize::SimDev, 23))
                .checksum
        };
        let base = c(1);
        for _ in 0..3 {
            assert!((c(4) - base).abs() < 1e-9);
        }
    }

    #[test]
    fn scene_is_built_by_one_and_read_in_intersect_loop() {
        let rec = Arc::new(RecordingSink::new());
        let ctx = TraceCtx::new(rec.clone(), 4);
        Raytrace.run(&ctx, &RunConfig::new(4, InputSize::SimDev, 1));
        let trace = rec.finish();
        let find = |name: &str| {
            ctx.loops()
                .all_loops()
                .into_iter()
                .find(|l| ctx.loops().name(*l) == name)
                .unwrap()
        };
        let build = find("build_scene");
        let isect = find("intersect");
        // Scene construction is single-writer (thread 0)...
        assert!(trace
            .events()
            .iter()
            .filter(|e| e.event.loop_id == build)
            .all(|e| e.event.tid == 0));
        // ...and the intersection loop consumes it heavily. (Which threads
        // do so is scheduling-dependent; volume is not.)
        let isect_reads = trace
            .events()
            .iter()
            .filter(|e| e.event.loop_id == isect)
            .count();
        assert!(isect_reads > 1_000, "intersect reads: {isect_reads}");
    }
}
