//! `volrend` — volume renderer (SPLASH-2 VOLREND skeleton).
//!
//! Two phases over a shared 3-D density volume: a parallel smoothing
//! `filter` pass over z-slabs (halo reads from neighbouring slab owners —
//! 1-D neighbour traffic), then a `raycast` pass where threads pull image
//! rows from a dynamic queue and integrate density along z through the
//! *whole* filtered volume — reading data written by every slab owner
//! (many-to-many, irregular).

use std::sync::Arc;

use lc_trace::{enter_func, enter_loop, run_threads, InstrumentedBarrier, TraceCtx, TracedBuffer};

use crate::rng::Xoshiro256;
use crate::util::chunk;
use crate::{RunConfig, Workload, WorkloadResult};

/// The volume-rendering workload.
pub struct Volrend;

impl Workload for Volrend {
    fn name(&self) -> &'static str {
        "volrend"
    }

    fn description(&self) -> &'static str {
        "volume render: slab-parallel filter, queue-driven full-volume raycast"
    }

    fn run(&self, ctx: &Arc<TraceCtx>, cfg: &RunConfig) -> WorkloadResult {
        let v = cfg.size.pick(16usize, 24, 32); // v³ voxels
        let t = cfg.threads.min(v);
        let vox = |z: usize, y: usize, x: usize| (z * v + y) * v + x;

        let raw: TracedBuffer<f64> = ctx.alloc(v * v * v);
        let filtered: TracedBuffer<f64> = ctx.alloc(v * v * v);
        let image: TracedBuffer<f64> = ctx.alloc(v * v);
        let queue: TracedBuffer<u64> = ctx.alloc(1);

        // Density: a few Gaussian blobs (untraced init).
        let mut rng = Xoshiro256::seed_from(cfg.seed);
        let blobs: Vec<(f64, f64, f64, f64)> = (0..4)
            .map(|_| {
                (
                    rng.range_f64(0.2, 0.8),
                    rng.range_f64(0.2, 0.8),
                    rng.range_f64(0.2, 0.8),
                    rng.range_f64(0.05, 0.15),
                )
            })
            .collect();
        for z in 0..v {
            for y in 0..v {
                for x in 0..v {
                    let (fx, fy, fz) = (
                        x as f64 / v as f64,
                        y as f64 / v as f64,
                        z as f64 / v as f64,
                    );
                    let mut d = 0.0;
                    for &(bx, by, bz, s) in &blobs {
                        let r2 = (fx - bx).powi(2) + (fy - by).powi(2) + (fz - bz).powi(2);
                        d += (-r2 / (2.0 * s * s)).exp();
                    }
                    raw.poke(vox(z, y, x), d);
                }
            }
        }

        let f = ctx.func("volrend");
        let l_filter = ctx.root_loop("filter", f);
        let l_cast = ctx.root_loop("raycast", f);
        let bar = InstrumentedBarrier::new(ctx, t, "barrier", f);

        run_threads(t, |tid| {
            let _fg = enter_func(f);
            let (zlo, zhi) = chunk(v, t, tid);
            {
                // 6-neighbour box smoothing of the owner's z-slab; z-face
                // neighbours live in adjacent slabs (halo reads).
                let _g = enter_loop(l_filter);
                for z in zlo..zhi {
                    for y in 0..v {
                        for x in 0..v {
                            let mut s = raw.load(vox(z, y, x)) * 2.0;
                            let mut w = 2.0;
                            if z > 0 {
                                s += raw.load(vox(z - 1, y, x));
                                w += 1.0;
                            }
                            if z + 1 < v {
                                s += raw.load(vox(z + 1, y, x));
                                w += 1.0;
                            }
                            if y > 0 {
                                s += raw.load(vox(z, y - 1, x));
                                w += 1.0;
                            }
                            if y + 1 < v {
                                s += raw.load(vox(z, y + 1, x));
                                w += 1.0;
                            }
                            if x > 0 {
                                s += raw.load(vox(z, y, x - 1));
                                w += 1.0;
                            }
                            if x + 1 < v {
                                s += raw.load(vox(z, y, x + 1));
                                w += 1.0;
                            }
                            filtered.store(vox(z, y, x), s / w);
                        }
                    }
                }
            }
            bar.wait();
            {
                // Front-to-back compositing along z for queue-pulled rows.
                let _g = enter_loop(l_cast);
                loop {
                    let y = queue.fetch_add(0, 1) as usize;
                    if y >= v {
                        break;
                    }
                    for x in 0..v {
                        let mut transparency = 1.0f64;
                        let mut bright = 0.0f64;
                        for z in 0..v {
                            let d = filtered.load(vox(z, y, x));
                            let alpha = (d * 0.4).min(1.0);
                            bright += transparency * alpha * d;
                            transparency *= 1.0 - alpha;
                            if transparency < 1e-3 {
                                break;
                            }
                        }
                        image.store(y * v + x, bright);
                    }
                }
            }
        });

        let mut checksum = 0.0;
        let mut lit = 0usize;
        for i in 0..v * v {
            let p = image.peek(i);
            assert!(p.is_finite() && p >= 0.0);
            if p > 1e-6 {
                lit += 1;
            }
            checksum += p * ((i % 13) as f64 + 1.0);
        }
        assert!(lit > 0, "rendered image is black");
        WorkloadResult { checksum }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InputSize;
    use lc_trace::{NoopSink, RecordingSink};

    #[test]
    fn render_is_schedule_independent() {
        let c = |t| {
            let ctx = TraceCtx::new(Arc::new(NoopSink), t);
            Volrend
                .run(&ctx, &RunConfig::new(t, InputSize::SimDev, 37))
                .checksum
        };
        assert!((c(1) - c(4)).abs() < 1e-9);
    }

    #[test]
    fn raycast_reads_cross_slab_voxels() {
        let rec = Arc::new(RecordingSink::new());
        let ctx = TraceCtx::new(rec.clone(), 4);
        Volrend.run(&ctx, &RunConfig::new(4, InputSize::SimDev, 3));
        let cast = ctx
            .loops()
            .all_loops()
            .into_iter()
            .find(|l| ctx.loops().name(*l) == "raycast")
            .unwrap();
        let trace = rec.finish();
        assert!(trace.events().iter().any(|e| e.event.loop_id == cast));
    }
}
