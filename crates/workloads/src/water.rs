//! `water_nsq` / `water_spatial` — molecular-dynamics kernels (SPLASH-2
//! WATER-NSQUARED and WATER-SPATIAL).
//!
//! Both integrate particles under a softened pairwise attraction; they
//! differ in how interaction partners are found:
//!
//! * `water_nsq` — O(n²): every thread computes forces on its own
//!   molecules by reading **all** positions (all-to-all reads). The loop
//!   structure mirrors the paper's Figure 7: an `MDMAIN` timestep loop
//!   containing two `INTERF` force passes (predictor/corrector halves) and
//!   a `POTENG` energy-reduction loop.
//! * `water_spatial` — cell lists: the domain is a 2-D grid of cells owned
//!   in row slabs; forces come only from the 3×3 cell neighbourhood, so
//!   communication is spatial-neighbour shaped.
//!
//! Validation: Newton's third law makes the total force vanish
//! analytically in the nsq kernel; positions/energies stay finite; results
//! are thread-count independent.

use std::sync::Arc;

use lc_trace::{enter_func, enter_loop, run_threads, InstrumentedBarrier, TraceCtx, TracedBuffer};

use crate::rng::Xoshiro256;
use crate::util::chunk;
use crate::{RunConfig, Workload, WorkloadResult};

/// Softening that keeps the pair force bounded.
const SOFT: f64 = 1e-2;
/// Timestep.
const DT: f64 = 1e-4;

#[inline]
fn pair_force(dx: f64, dy: f64) -> (f64, f64) {
    let r2 = dx * dx + dy * dy + SOFT;
    let inv = 1.0 / (r2 * r2.sqrt());
    (dx * inv, dy * inv)
}

/// O(n²) molecular dynamics.
pub struct WaterNsq;

impl Workload for WaterNsq {
    fn name(&self) -> &'static str {
        "water_nsq"
    }

    fn description(&self) -> &'static str {
        "O(n²) MD: MDMAIN/INTERF/POTENG with all-to-all position reads"
    }

    fn run(&self, ctx: &Arc<TraceCtx>, cfg: &RunConfig) -> WorkloadResult {
        let n = cfg.size.pick(64usize, 128, 224);
        let steps = cfg.size.pick(3, 4, 5);
        let t = cfg.threads.min(n);

        let px: TracedBuffer<f64> = ctx.alloc(n);
        let py: TracedBuffer<f64> = ctx.alloc(n);
        let fx: TracedBuffer<f64> = ctx.alloc(n);
        let fy: TracedBuffer<f64> = ctx.alloc(n);
        let partial_pe: TracedBuffer<f64> = ctx.alloc(t);
        let energy: TracedBuffer<f64> = ctx.alloc(1);

        let mut rng = Xoshiro256::seed_from(cfg.seed);
        for i in 0..n {
            px.poke(i, rng.range_f64(0.0, 1.0));
            py.poke(i, rng.range_f64(0.0, 1.0));
        }

        let f = ctx.func("MDMAIN");
        let l_main = ctx.root_loop("MDMAIN", f);
        let l_interf1 = ctx.nested_loop("INTERF", l_main, f);
        let l_interf2 = ctx.nested_loop("INTERF", l_main, f);
        let l_poteng = ctx.nested_loop("POTENG", l_main, f);
        let bar = InstrumentedBarrier::new(ctx, t, "barrier", f);

        run_threads(t, |tid| {
            let _fg = enter_func(f);
            let (lo, hi) = chunk(n, t, tid);
            for _step in 0..steps {
                let _mg = enter_loop(l_main);
                for (half, l_interf) in [(0usize, l_interf1), (1, l_interf2)] {
                    let _ig = enter_loop(l_interf);
                    // Forces on own molecules from all molecules.
                    for i in lo..hi {
                        let (xi, yi) = (px.load(i), py.load(i));
                        let (mut sx, mut sy) = (0.0, 0.0);
                        for j in 0..n {
                            if i == j {
                                continue;
                            }
                            let (dx, dy) = (px.load(j) - xi, py.load(j) - yi);
                            let (gx, gy) = pair_force(dx, dy);
                            sx += gx;
                            sy += gy;
                        }
                        fx.store(i, sx);
                        fy.store(i, sy);
                    }
                    bar.wait();
                    // Half-kick drift on own molecules.
                    for i in lo..hi {
                        let scale = if half == 0 { 0.5 } else { 1.0 };
                        px.update(i, |v| v + scale * DT * fx.load(i));
                        py.update(i, |v| v + scale * DT * fy.load(i));
                    }
                    bar.wait();
                }
                {
                    // Potential-energy reduction: partials then a gather by
                    // thread 0 (all-to-one).
                    let _pg = enter_loop(l_poteng);
                    let mut pe = 0.0;
                    for i in lo..hi {
                        let (xi, yi) = (px.load(i), py.load(i));
                        for j in i + 1..n {
                            let (dx, dy) = (px.load(j) - xi, py.load(j) - yi);
                            pe -= 1.0 / (dx * dx + dy * dy + SOFT).sqrt();
                        }
                    }
                    partial_pe.store(tid, pe);
                    bar.wait();
                    if tid == 0 {
                        let mut total = 0.0;
                        for tt in 0..t {
                            total += partial_pe.load(tt);
                        }
                        energy.store(0, total);
                    }
                    bar.wait();
                }
            }
        });

        // Newton's third law: the final force field sums to ~0.
        let (mut sfx, mut sfy) = (0.0, 0.0);
        let mut maxf: f64 = 0.0;
        for i in 0..n {
            sfx += fx.peek(i);
            sfy += fy.peek(i);
            maxf = maxf.max(fx.peek(i).abs()).max(fy.peek(i).abs());
        }
        assert!(maxf.is_finite() && maxf > 0.0);
        assert!(
            sfx.abs() < 1e-6 * maxf * n as f64 && sfy.abs() < 1e-6 * maxf * n as f64,
            "momentum violated: ({sfx},{sfy}), maxf {maxf}"
        );
        let pe = energy.peek(0);
        assert!(pe.is_finite() && pe < 0.0, "potential energy {pe}");

        let checksum = (0..n).map(|i| px.peek(i) + py.peek(i)).sum::<f64>() + pe;
        WorkloadResult { checksum }
    }
}

/// Cell-list molecular dynamics.
pub struct WaterSpatial;

impl Workload for WaterSpatial {
    fn name(&self) -> &'static str {
        "water_spatial"
    }

    fn description(&self) -> &'static str {
        "cell-list MD: forces from 3×3 neighbour cells, slab-owned grid"
    }

    fn run(&self, ctx: &Arc<TraceCtx>, cfg: &RunConfig) -> WorkloadResult {
        let c = cfg.size.pick(6usize, 8, 10); // c×c cells
        let per_cell = 4usize;
        let n = c * c * per_cell;
        let steps = cfg.size.pick(3, 4, 5);
        let t = cfg.threads.min(c);

        // Positions stored per cell slot: cell (ci,cj), slot s.
        let px: TracedBuffer<f64> = ctx.alloc(n);
        let py: TracedBuffer<f64> = ctx.alloc(n);
        let fxb: TracedBuffer<f64> = ctx.alloc(n);
        let fyb: TracedBuffer<f64> = ctx.alloc(n);
        let slot = |ci: usize, cj: usize, s: usize| (ci * c + cj) * per_cell + s;

        let cell_w = 1.0 / c as f64;
        let mut rng = Xoshiro256::seed_from(cfg.seed);
        for ci in 0..c {
            for cj in 0..c {
                for s in 0..per_cell {
                    px.poke(slot(ci, cj, s), (cj as f64 + rng.next_f64()) * cell_w);
                    py.poke(slot(ci, cj, s), (ci as f64 + rng.next_f64()) * cell_w);
                }
            }
        }

        let f = ctx.func("MDMAIN_spatial");
        let l_main = ctx.root_loop("MDMAIN", f);
        let l_forces = ctx.nested_loop("INTERF_cells", l_main, f);
        let l_advance = ctx.nested_loop("advance", l_main, f);
        let bar = InstrumentedBarrier::new(ctx, t, "barrier", f);

        run_threads(t, |tid| {
            let _fg = enter_func(f);
            let (rlo, rhi) = chunk(c, t, tid);
            for _step in 0..steps {
                let _mg = enter_loop(l_main);
                {
                    let _fg2 = enter_loop(l_forces);
                    for ci in rlo..rhi {
                        for cj in 0..c {
                            for s in 0..per_cell {
                                let me = slot(ci, cj, s);
                                let (xi, yi) = (px.load(me), py.load(me));
                                let (mut sx, mut sy) = (0.0, 0.0);
                                // 3×3 neighbourhood (cross-slab rows are
                                // halo reads from neighbour threads).
                                for di in -1i64..=1 {
                                    for dj in -1i64..=1 {
                                        let ni = ci as i64 + di;
                                        let nj = cj as i64 + dj;
                                        if ni < 0 || nj < 0 || ni >= c as i64 || nj >= c as i64 {
                                            continue;
                                        }
                                        for s2 in 0..per_cell {
                                            let other = slot(ni as usize, nj as usize, s2);
                                            if other == me {
                                                continue;
                                            }
                                            let (dx, dy) =
                                                (px.load(other) - xi, py.load(other) - yi);
                                            let (gx, gy) = pair_force(dx, dy);
                                            sx += gx;
                                            sy += gy;
                                        }
                                    }
                                }
                                fxb.store(me, sx);
                                fyb.store(me, sy);
                            }
                        }
                    }
                }
                bar.wait();
                {
                    let _ag = enter_loop(l_advance);
                    for ci in rlo..rhi {
                        for cj in 0..c {
                            for s in 0..per_cell {
                                let me = slot(ci, cj, s);
                                // Clamp inside the owning cell so the static
                                // cell assignment stays valid.
                                let (xlo, xhi) =
                                    (cj as f64 * cell_w, (cj as f64 + 1.0) * cell_w - 1e-9);
                                let (ylo, yhi) =
                                    (ci as f64 * cell_w, (ci as f64 + 1.0) * cell_w - 1e-9);
                                px.update(me, |v| (v + DT * fxb.load(me)).clamp(xlo, xhi));
                                py.update(me, |v| (v + DT * fyb.load(me)).clamp(ylo, yhi));
                            }
                        }
                    }
                }
                bar.wait();
            }
        });

        let mut checksum = 0.0;
        for i in 0..n {
            let (x, y) = (px.peek(i), py.peek(i));
            assert!(x.is_finite() && y.is_finite());
            assert!((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y));
            checksum += x * 3.0 + y;
        }
        WorkloadResult { checksum }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InputSize;
    use lc_trace::NoopSink;

    #[test]
    fn nsq_momentum_and_determinism() {
        let c = |t| {
            let ctx = TraceCtx::new(Arc::new(NoopSink), t);
            WaterNsq
                .run(&ctx, &RunConfig::new(t, InputSize::SimDev, 17))
                .checksum
        };
        assert!((c(1) - c(4)).abs() < 1e-9);
    }

    #[test]
    fn spatial_stays_in_box_and_deterministic() {
        let c = |t| {
            let ctx = TraceCtx::new(Arc::new(NoopSink), t);
            WaterSpatial
                .run(&ctx, &RunConfig::new(t, InputSize::SimDev, 17))
                .checksum
        };
        assert!((c(1) - c(3)).abs() < 1e-9);
    }

    #[test]
    fn figure7_loop_names_exist_with_two_interf_instances() {
        let ctx = TraceCtx::new(Arc::new(NoopSink), 2);
        WaterNsq.run(&ctx, &RunConfig::new(2, InputSize::SimDev, 1));
        let names: Vec<String> = ctx
            .loops()
            .all_loops()
            .into_iter()
            .map(|l| ctx.loops().name(l))
            .collect();
        assert_eq!(names.iter().filter(|n| *n == "INTERF").count(), 2);
        assert!(names.iter().any(|n| n == "MDMAIN"));
        assert!(names.iter().any(|n| n == "POTENG"));
    }

    #[test]
    fn pair_force_is_antisymmetric_and_bounded() {
        let (fx, fy) = pair_force(0.3, -0.4);
        let (gx, gy) = pair_force(-0.3, 0.4);
        assert!((fx + gx).abs() < 1e-15 && (fy + gy).abs() < 1e-15);
        let (hx, hy) = pair_force(0.0, 0.0);
        assert!(hx.abs() < 1e9 && hy.abs() < 1e9); // softened at r=0
    }
}
