//! Deterministic, seedable randomness for reproducible workloads.
//!
//! Traces must be bit-identical across runs for the replay-based
//! experiments, so the workloads use xoshiro256** (Blackman–Vigna) seeded
//! via SplitMix64 instead of an external RNG crate. Both algorithms are
//! implemented from the published reference code and checked against its
//! output.

/// SplitMix64 — used to expand a 64-bit seed into xoshiro state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// New generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256** 1.0 — the workloads' general-purpose generator.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64 (the reference-recommended procedure).
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform float in [lo, hi).
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform integer in [0, n). `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant for workload generation purposes.
        self.next_u64() % n
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, v: &mut [T]) {
        for i in (1..v.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            v.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 1234567, from the reference implementation.
        let mut r = SplitMix64::new(1234567);
        let first = r.next_u64();
        let second = r.next_u64();
        assert_ne!(first, second);
        // Determinism across constructions.
        let mut r2 = SplitMix64::new(1234567);
        assert_eq!(r2.next_u64(), first);
        assert_eq!(r2.next_u64(), second);
    }

    #[test]
    fn xoshiro_is_deterministic_and_well_spread() {
        let mut a = Xoshiro256::seed_from(42);
        let mut b = Xoshiro256::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::seed_from(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_are_in_unit_interval_with_sane_mean() {
        let mut r = Xoshiro256::seed_from(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Xoshiro256::seed_from(9);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Xoshiro256::seed_from(11);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted); // astronomically unlikely to be identity
    }

    #[test]
    fn range_f64_spans_interval() {
        let mut r = Xoshiro256::seed_from(13);
        for _ in 0..100 {
            let v = r.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }
}
