//! `barnes` — Barnes–Hut N-body (SPLASH-2 BARNES skeleton, 2-D).
//!
//! Per timestep: thread 0 builds the quadtree in shared (traced) arrays
//! (`maketree`), every thread then computes forces for its body chunk by
//! traversing the tree (`hackgrav` — the one-builder/many-reader broadcast
//! the paper's n-body pattern shows), and owners advance their bodies
//! (`advance`).
//!
//! Validation: the root's mass/center-of-mass must equal the exact totals,
//! and sampled Barnes–Hut forces must agree with the direct O(n²) sum
//! within the θ-approximation error.

use std::sync::Arc;

use lc_trace::{enter_func, enter_loop, run_threads, InstrumentedBarrier, TraceCtx, TracedBuffer};

use crate::rng::Xoshiro256;
use crate::util::chunk;
use crate::{RunConfig, Workload, WorkloadResult};

/// Opening criterion.
const THETA: f64 = 0.5;
/// Softening.
const SOFT: f64 = 1e-4;
/// Timestep.
const DT: f64 = 1e-5;
/// f64 fields per tree node: cx, cy, half, mass, comx, comy.
const NF: usize = 6;

#[inline]
fn accel(m: f64, dx: f64, dy: f64) -> (f64, f64) {
    let r2 = dx * dx + dy * dy + SOFT;
    let inv = m / (r2 * r2.sqrt());
    (dx * inv, dy * inv)
}

/// The Barnes–Hut workload.
pub struct Barnes;

impl Workload for Barnes {
    fn name(&self) -> &'static str {
        "barnes"
    }

    fn description(&self) -> &'static str {
        "Barnes-Hut N-body: serial tree build, parallel tree-walk forces"
    }

    fn run(&self, ctx: &Arc<TraceCtx>, cfg: &RunConfig) -> WorkloadResult {
        let n = cfg.size.pick(96usize, 192, 320);
        let steps = cfg.size.pick(2, 2, 3);
        let t = cfg.threads.min(n);
        let max_nodes = 16 * n;

        let bx: TracedBuffer<f64> = ctx.alloc(n);
        let by: TracedBuffer<f64> = ctx.alloc(n);
        let ax: TracedBuffer<f64> = ctx.alloc(n);
        let ay: TracedBuffer<f64> = ctx.alloc(n);
        let nodes: TracedBuffer<f64> = ctx.alloc(max_nodes * NF);
        let children: TracedBuffer<u64> = ctx.alloc(max_nodes * 4); // idx+1, 0=none
        let leaf_body: TracedBuffer<u64> = ctx.alloc(max_nodes); // body+1, 0=internal/empty
        let node_count: TracedBuffer<u64> = ctx.alloc(1);

        let mut rng = Xoshiro256::seed_from(cfg.seed);
        for i in 0..n {
            bx.poke(i, rng.range_f64(0.05, 0.95));
            by.poke(i, rng.range_f64(0.05, 0.95));
        }

        let f = ctx.func("barnes");
        let l_make = ctx.root_loop("maketree", f);
        let l_grav = ctx.root_loop("hackgrav", f);
        let l_adv = ctx.root_loop("advance", f);
        let bar = InstrumentedBarrier::new(ctx, t, "barrier", f);

        run_threads(t, |tid| {
            let _fg = enter_func(f);
            let (lo, hi) = chunk(n, t, tid);
            for step in 0..steps {
                if tid == 0 {
                    let _mg = enter_loop(l_make);
                    build_tree(
                        n,
                        max_nodes,
                        &bx,
                        &by,
                        &nodes,
                        &children,
                        &leaf_body,
                        &node_count,
                    );
                }
                bar.wait();

                {
                    let _gg = enter_loop(l_grav);
                    let mut stack: Vec<usize> = Vec::with_capacity(64);
                    for i in lo..hi {
                        let (xi, yi) = (bx.load(i), by.load(i));
                        let (mut sx, mut sy) = (0.0, 0.0);
                        stack.clear();
                        stack.push(0);
                        while let Some(nd) = stack.pop() {
                            let mass = nodes.load(nd * NF + 3);
                            if mass == 0.0 {
                                continue;
                            }
                            let lb = leaf_body.load(nd);
                            if lb == i as u64 + 1 {
                                continue; // self
                            }
                            let (comx, comy) = (nodes.load(nd * NF + 4), nodes.load(nd * NF + 5));
                            let (dx, dy) = (comx - xi, comy - yi);
                            let dist = (dx * dx + dy * dy).sqrt().max(1e-12);
                            let width = nodes.load(nd * NF + 2) * 2.0;
                            if lb != 0 || width / dist < THETA {
                                let (gx, gy) = accel(mass, dx, dy);
                                sx += gx;
                                sy += gy;
                            } else {
                                for q in 0..4 {
                                    let ch = children.load(nd * 4 + q);
                                    if ch != 0 {
                                        stack.push(ch as usize - 1);
                                    }
                                }
                            }
                        }
                        ax.store(i, sx);
                        ay.store(i, sy);
                    }
                }
                bar.wait();

                // Skip the last advance so the final tree/forces stay
                // consistent with the final positions for validation.
                if step + 1 < steps {
                    let _ag = enter_loop(l_adv);
                    for i in lo..hi {
                        bx.update(i, |v| (v + DT * ax.load(i)).clamp(0.0, 1.0));
                        by.update(i, |v| (v + DT * ay.load(i)).clamp(0.0, 1.0));
                    }
                }
                bar.wait();
            }
        });

        // Tree invariants: root aggregates are exact totals.
        let root_mass = nodes.peek(3);
        assert!(
            (root_mass - n as f64).abs() < 1e-9,
            "root mass {root_mass} != {n}"
        );
        let (mx, my): (f64, f64) = (0..n).fold((0.0, 0.0), |acc, i| {
            (acc.0 + bx.peek(i), acc.1 + by.peek(i))
        });
        // Hierarchical weighted averaging reassociates the sum; allow
        // floating-point slack.
        assert!((nodes.peek(4) - mx / n as f64).abs() < 1e-6);
        assert!((nodes.peek(5) - my / n as f64).abs() < 1e-6);

        // Sampled force accuracy vs direct sum.
        let mut rng2 = Xoshiro256::seed_from(cfg.seed ^ 0x5a5a);
        for _ in 0..8 {
            let i = rng2.below(n as u64) as usize;
            let (xi, yi) = (bx.peek(i), by.peek(i));
            let (mut dxs, mut dys) = (0.0, 0.0);
            for j in 0..n {
                if i == j {
                    continue;
                }
                let (gx, gy) = accel(1.0, bx.peek(j) - xi, by.peek(j) - yi);
                dxs += gx;
                dys += gy;
            }
            let (tx, ty) = (ax.peek(i), ay.peek(i));
            let mag = (dxs * dxs + dys * dys).sqrt().max(1e-9);
            let err = ((tx - dxs).powi(2) + (ty - dys).powi(2)).sqrt() / mag;
            assert!(err < 0.35, "BH force error {err} at body {i}");
        }

        let checksum = (0..n).map(|i| bx.peek(i) * 2.0 + by.peek(i)).sum();
        WorkloadResult { checksum }
    }
}

/// Serial quadtree construction into the shared traced arrays. Called by
/// thread 0 inside the `maketree` region.
#[allow(clippy::too_many_arguments)]
fn build_tree(
    n: usize,
    max_nodes: usize,
    bx: &TracedBuffer<f64>,
    by: &TracedBuffer<f64>,
    nodes: &TracedBuffer<f64>,
    children: &TracedBuffer<u64>,
    leaf_body: &TracedBuffer<u64>,
    node_count: &TracedBuffer<u64>,
) {
    // Reset the previously used prefix.
    let used = node_count.load(0) as usize;
    for nd in 0..used.max(1) {
        nodes.store(nd * NF + 3, 0.0);
        leaf_body.store(nd, 0);
        for q in 0..4 {
            children.store(nd * 4 + q, 0);
        }
    }
    // Root covers the unit square.
    nodes.store(0, 0.5);
    nodes.store(1, 0.5);
    nodes.store(2, 0.5);
    let mut next = 1usize;

    let alloc_child = |parent: usize, quad: usize, next: &mut usize| -> usize {
        let nd = *next;
        assert!(nd < max_nodes, "quadtree overflow");
        *next += 1;
        let pcx = nodes.load(parent * NF);
        let pcy = nodes.load(parent * NF + 1);
        let ph = nodes.load(parent * NF + 2);
        let h = ph * 0.5;
        let cx = pcx + if quad & 1 == 1 { h } else { -h };
        let cy = pcy + if quad & 2 == 2 { h } else { -h };
        nodes.store(nd * NF, cx);
        nodes.store(nd * NF + 1, cy);
        nodes.store(nd * NF + 2, h);
        nodes.store(nd * NF + 3, 0.0);
        leaf_body.store(nd, 0);
        for q in 0..4 {
            children.store(nd * 4 + q, 0);
        }
        children.store(parent * 4 + quad, nd as u64 + 1);
        nd
    };

    let quad_of = |nd: usize, x: f64, y: f64| -> usize {
        let cx = nodes.load(nd * NF);
        let cy = nodes.load(nd * NF + 1);
        usize::from(x >= cx) | (usize::from(y >= cy) << 1)
    };

    for b in 0..n {
        let (x, y) = (bx.load(b), by.load(b));
        let mut cur = 0usize;
        let mut depth = 0;
        loop {
            depth += 1;
            assert!(depth < 64, "quadtree degeneracy (coincident bodies?)");
            let lb = leaf_body.load(cur);
            let has_children = (0..4).any(|q| children.load(cur * 4 + q) != 0);
            if lb == 0 && !has_children {
                leaf_body.store(cur, b as u64 + 1);
                break;
            }
            if lb != 0 {
                // Occupied leaf: push the resident body one level down.
                let old = lb as usize - 1;
                let (ox, oy) = (bx.load(old), by.load(old));
                let oq = quad_of(cur, ox, oy);
                let child = alloc_child(cur, oq, &mut next);
                leaf_body.store(child, old as u64 + 1);
                leaf_body.store(cur, 0);
                // fall through: cur is now internal, keep descending.
            }
            let q = quad_of(cur, x, y);
            let ch = children.load(cur * 4 + q);
            cur = if ch == 0 {
                alloc_child(cur, q, &mut next)
            } else {
                ch as usize - 1
            };
        }
    }
    node_count.store(0, next as u64);

    // Bottom-up mass / centre-of-mass with an explicit post-order stack.
    let mut stack: Vec<(usize, bool)> = vec![(0, false)];
    while let Some((nd, expanded)) = stack.pop() {
        if !expanded {
            stack.push((nd, true));
            for q in 0..4 {
                let ch = children.load(nd * 4 + q);
                if ch != 0 {
                    stack.push((ch as usize - 1, false));
                }
            }
        } else {
            let lb = leaf_body.load(nd);
            if lb != 0 {
                let b = lb as usize - 1;
                nodes.store(nd * NF + 3, 1.0);
                nodes.store(nd * NF + 4, bx.load(b));
                nodes.store(nd * NF + 5, by.load(b));
            } else {
                let (mut m, mut sx, mut sy) = (0.0, 0.0, 0.0);
                for q in 0..4 {
                    let ch = children.load(nd * 4 + q);
                    if ch != 0 {
                        let cnd = ch as usize - 1;
                        let cm = nodes.load(cnd * NF + 3);
                        m += cm;
                        sx += cm * nodes.load(cnd * NF + 4);
                        sy += cm * nodes.load(cnd * NF + 5);
                    }
                }
                nodes.store(nd * NF + 3, m);
                if m > 0.0 {
                    nodes.store(nd * NF + 4, sx / m);
                    nodes.store(nd * NF + 5, sy / m);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InputSize;
    use lc_trace::{NoopSink, RecordingSink};

    #[test]
    fn invariants_hold_and_thread_independent() {
        let c = |t| {
            let ctx = TraceCtx::new(Arc::new(NoopSink), t);
            Barnes
                .run(&ctx, &RunConfig::new(t, InputSize::SimDev, 31))
                .checksum
        };
        assert!((c(1) - c(4)).abs() < 1e-9);
    }

    #[test]
    fn maketree_is_single_writer_hackgrav_many_reader() {
        let rec = Arc::new(RecordingSink::new());
        let ctx = TraceCtx::new(rec.clone(), 4);
        Barnes.run(&ctx, &RunConfig::new(4, InputSize::SimDev, 2));
        let trace = rec.finish();
        let make = ctx
            .loops()
            .all_loops()
            .into_iter()
            .find(|l| ctx.loops().name(*l) == "maketree")
            .unwrap();
        let grav = ctx
            .loops()
            .all_loops()
            .into_iter()
            .find(|l| ctx.loops().name(*l) == "hackgrav")
            .unwrap();
        // All maketree events come from thread 0.
        assert!(trace
            .events()
            .iter()
            .filter(|e| e.event.loop_id == make)
            .all(|e| e.event.tid == 0));
        // hackgrav is executed by every thread.
        let tids: std::collections::HashSet<u32> = trace
            .events()
            .iter()
            .filter(|e| e.event.loop_id == grav)
            .map(|e| e.event.tid)
            .collect();
        assert_eq!(tids.len(), 4);
    }
}
