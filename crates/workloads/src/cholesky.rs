//! `cholesky` — blocked Cholesky factorization (SPLASH-2 CHOLESKY, dense
//! skeleton).
//!
//! Right-looking factorization of a symmetric positive-definite matrix into
//! L·Lᵀ over the lower triangle. Per step: the diagonal owner factors
//! (`potrf`), panel owners solve against it (`trsm` — broadcast reads of
//! the diagonal block), and trailing owners update (`syrk`). SPLASH's
//! version is sparse/supernodal; the dense-blocked skeleton preserves the
//! broadcast + rank-update communication structure, which is what the
//! profiler observes.

use std::sync::Arc;

use lc_trace::{enter_func, enter_loop, run_threads, InstrumentedBarrier, TraceCtx, TracedBuffer};

use crate::rng::Xoshiro256;
use crate::{RunConfig, Workload, WorkloadResult};

/// Block edge length.
const B: usize = 8;

/// The Cholesky workload.
pub struct Cholesky;

impl Workload for Cholesky {
    fn name(&self) -> &'static str {
        "cholesky"
    }

    fn description(&self) -> &'static str {
        "blocked Cholesky (L·Lᵀ): potrf diag, trsm panel, syrk update"
    }

    fn run(&self, ctx: &Arc<TraceCtx>, cfg: &RunConfig) -> WorkloadResult {
        let n = cfg.size.pick(48usize, 96, 160);
        assert_eq!(n % B, 0);
        let nb = n / B;
        let t = cfg.threads;

        // SPD source (untraced): A = 0.5·(M + Mᵀ) + n·I.
        let mut rng = Xoshiro256::seed_from(cfg.seed);
        let mut a0 = vec![0.0f64; n * n];
        for r in 0..n {
            for c in 0..=r {
                let v = rng.range_f64(-1.0, 1.0);
                a0[r * n + c] = v;
                a0[c * n + r] = v;
            }
            a0[r * n + r] += n as f64;
        }

        let a: TracedBuffer<f64> = ctx.alloc(n * n);
        let idx = |bi: usize, bj: usize, i: usize, j: usize| (bi * B + i) * n + bj * B + j;
        let owner = |bi: usize, bj: usize| (bi + bj) % t;

        let f = ctx.func("cholesky");
        let l_touch = ctx.root_loop("touch", f);
        let l_outer = ctx.root_loop("cholesky", f);
        let l_trsm = ctx.nested_loop("trsm", l_outer, f);
        let l_syrk = ctx.nested_loop("syrk", l_outer, f);
        let l_inner = ctx.nested_loop("rank_update", l_syrk, f);
        let bar = InstrumentedBarrier::new(ctx, t, "barrier", f);

        run_threads(t, |tid| {
            let _fg = enter_func(f);
            {
                let _g = enter_loop(l_touch);
                for bi in 0..nb {
                    for bj in 0..=bi {
                        if owner(bi, bj) == tid {
                            for i in 0..B {
                                for j in 0..B {
                                    a.store(idx(bi, bj, i, j), a0[(bi * B + i) * n + bj * B + j]);
                                }
                            }
                        }
                    }
                }
            }
            bar.wait();

            for k in 0..nb {
                let _og = enter_loop(l_outer);
                // potrf on the diagonal block.
                if owner(k, k) == tid {
                    for i in 0..B {
                        let mut d = a.load(idx(k, k, i, i));
                        for l in 0..i {
                            let v = a.load(idx(k, k, i, l));
                            d -= v * v;
                        }
                        assert!(d > 0.0, "matrix lost positive definiteness");
                        let d = d.sqrt();
                        a.store(idx(k, k, i, i), d);
                        for r in i + 1..B {
                            let mut s = a.load(idx(k, k, r, i));
                            for l in 0..i {
                                s -= a.load(idx(k, k, r, l)) * a.load(idx(k, k, i, l));
                            }
                            a.store(idx(k, k, r, i), s / d);
                        }
                    }
                }
                bar.wait();

                // trsm: A(bi,k) ← A(bi,k) · L(k,k)⁻ᵀ.
                {
                    let _g = enter_loop(l_trsm);
                    for bi in k + 1..nb {
                        if owner(bi, k) != tid {
                            continue;
                        }
                        for r in 0..B {
                            for i in 0..B {
                                let mut s = a.load(idx(bi, k, r, i));
                                for l in 0..i {
                                    s -= a.load(idx(bi, k, r, l)) * a.load(idx(k, k, i, l));
                                }
                                a.store(idx(bi, k, r, i), s / a.load(idx(k, k, i, i)));
                            }
                        }
                    }
                }
                bar.wait();

                // syrk/gemm update of the trailing lower triangle:
                // A(bi,bj) -= A(bi,k) · A(bj,k)ᵀ,  k < bj ≤ bi.
                {
                    let _g = enter_loop(l_syrk);
                    for bi in k + 1..nb {
                        for bj in k + 1..=bi {
                            if owner(bi, bj) != tid {
                                continue;
                            }
                            for i in 0..B {
                                for j in 0..B {
                                    if bi == bj && j > i {
                                        continue; // strictly lower + diag
                                    }
                                    let _ig = enter_loop(l_inner);
                                    let mut s = 0.0;
                                    for l in 0..B {
                                        s += a.load(idx(bi, k, i, l)) * a.load(idx(bj, k, j, l));
                                    }
                                    a.update(idx(bi, bj, i, j), |v| v - s);
                                }
                            }
                        }
                    }
                }
                bar.wait();
            }
        });

        // Verify L·Lᵀ ≈ A0 on sampled lower-triangle entries.
        let get = |r: usize, c: usize| a.peek((r) * n + c);
        let mut rng2 = Xoshiro256::seed_from(cfg.seed ^ 0xbeef);
        for _ in 0..64 {
            let r = rng2.below(n as u64) as usize;
            let c = rng2.below(r as u64 + 1) as usize;
            let mut s = 0.0;
            for k in 0..=c {
                s += get(r, k) * get(c, k);
            }
            let want = a0[r * n + c];
            assert!(
                (s - want).abs() < 1e-6 * n as f64,
                "cholesky verify failed at ({r},{c}): {s} vs {want}"
            );
        }

        let checksum = (0..n).map(|i| get(i, i)).sum();
        WorkloadResult { checksum }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InputSize, Workload};
    use lc_trace::{NoopSink, RecordingSink};

    #[test]
    fn factorization_validates_and_is_deterministic() {
        let run = |t: usize| {
            let ctx = TraceCtx::new(Arc::new(NoopSink), t);
            Cholesky
                .run(&ctx, &RunConfig::new(t, InputSize::SimDev, 21))
                .checksum
        };
        assert!((run(1) - run(4)).abs() < 1e-9);
    }

    #[test]
    fn diagonal_of_l_is_positive() {
        let ctx = TraceCtx::new(Arc::new(NoopSink), 2);
        let r = Cholesky.run(&ctx, &RunConfig::new(2, InputSize::SimDev, 5));
        // Checksum is the trace of L; all diag entries are sqrt() > 0.
        assert!(r.checksum > 0.0);
    }

    #[test]
    fn generates_cross_thread_reads_of_diag_block() {
        let rec = Arc::new(RecordingSink::new());
        let ctx = TraceCtx::new(rec.clone(), 4);
        Cholesky.run(&ctx, &RunConfig::new(4, InputSize::SimDev, 2));
        // trsm loop exists and carries traffic.
        let trsm = ctx
            .loops()
            .all_loops()
            .into_iter()
            .find(|l| ctx.loops().name(*l) == "trsm")
            .unwrap();
        let trace = rec.finish();
        assert!(trace.events().iter().any(|e| e.event.loop_id == trsm));
    }
}
