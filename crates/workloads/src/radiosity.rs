//! `radiosity` — iterative patch-energy exchange (SPLASH-2 RADIOSITY
//! skeleton).
//!
//! Jacobi radiosity: `B_new[i] = E[i] + ρ · Σ_j F[i][j]·B_old[j]` over
//! statically partitioned patches. Every patch gathers from every other
//! patch's radiosity (written by its owner in the previous round), giving
//! the even, dense all-to-all pattern the paper's Figure 8c shows — "the
//! load is evenly distributed among threads". (SPLASH radiosity uses task
//! queues with stealing; at profiling-scale inputs a dynamic queue can
//! degenerate to one consumer, so the even static schedule — the behaviour
//! the paper reports — is used instead.)
//!
//! Form factors are precomputed read-only geometry (left uninstrumented,
//! like constant data excluded from analysis in §IV-A); the radiosity
//! vectors are fully traced.

use std::sync::Arc;

use lc_trace::{enter_func, enter_loop, run_threads, InstrumentedBarrier, TraceCtx, TracedBuffer};

use crate::rng::Xoshiro256;
use crate::{RunConfig, Workload, WorkloadResult};

/// Reflectivity (< 1 guarantees convergence of the Neumann series).
const RHO: f64 = 0.7;

/// The radiosity workload.
pub struct Radiosity;

impl Workload for Radiosity {
    fn name(&self) -> &'static str {
        "radiosity"
    }

    fn description(&self) -> &'static str {
        "Jacobi radiosity, static patch ownership: even all-to-all gather"
    }

    fn run(&self, ctx: &Arc<TraceCtx>, cfg: &RunConfig) -> WorkloadResult {
        let np = cfg.size.pick(64usize, 96, 144);
        let iters = cfg.size.pick(6, 8, 10);
        let t = cfg.threads;

        // Geometry-flavoured form factors: patch positions on the unit
        // square, F[i][j] ∝ area_j / d², rows normalized to sum to 1.
        let mut rng = Xoshiro256::seed_from(cfg.seed);
        let pos: Vec<(f64, f64)> = (0..np).map(|_| (rng.next_f64(), rng.next_f64())).collect();
        let area: Vec<f64> = (0..np).map(|_| rng.range_f64(0.5, 1.5)).collect();
        let mut ff = vec![0.0f64; np * np];
        for i in 0..np {
            let mut row = 0.0;
            for j in 0..np {
                if i != j {
                    let (dx, dy) = (pos[i].0 - pos[j].0, pos[i].1 - pos[j].1);
                    let v = area[j] / (dx * dx + dy * dy + 0.05);
                    ff[i * np + j] = v;
                    row += v;
                }
            }
            for j in 0..np {
                ff[i * np + j] /= row;
            }
        }
        let emission: Vec<f64> = (0..np)
            .map(|_| if rng.next_f64() < 0.2 { 1.0 } else { 0.0 })
            .collect();

        let b_old: TracedBuffer<f64> = ctx.alloc(np);
        let b_new: TracedBuffer<f64> = ctx.alloc(np);
        let delta_partial: TracedBuffer<f64> = ctx.alloc(t);
        for (i, &e) in emission.iter().enumerate() {
            b_old.poke(i, e);
        }

        let f = ctx.func("radiosity");
        let l_iter = ctx.root_loop("radiosity_iter", f);
        let l_gather = ctx.nested_loop("gather", l_iter, f);
        let bar = InstrumentedBarrier::new(ctx, t, "barrier", f);

        let ff = &ff;
        let emission = &emission;
        run_threads(t, |tid| {
            let _fg = enter_func(f);
            let (lo, hi) = crate::util::chunk(np, t, tid);
            for it in 0..iters {
                let _ig = enter_loop(l_iter);
                let (src, dst) = if it % 2 == 0 {
                    (&b_old, &b_new)
                } else {
                    (&b_new, &b_old)
                };
                let mut local_delta = 0.0;
                {
                    let _gg = enter_loop(l_gather);
                    for i in lo..hi {
                        let mut s = 0.0;
                        for j in 0..np {
                            s += ff[i * np + j] * src.load(j);
                        }
                        let v = emission[i] + RHO * s;
                        local_delta += (v - src.load(i)).abs();
                        dst.store(i, v);
                    }
                }
                delta_partial.store(tid, local_delta);
                bar.wait();
            }
        });

        let final_b = if iters % 2 == 0 { &b_old } else { &b_new };
        // Physical sanity: radiosity ≥ emission, bounded by the series sum.
        let mut checksum = 0.0;
        for (i, &e) in emission.iter().enumerate() {
            let v = final_b.peek(i);
            assert!(v.is_finite() && v >= e - 1e-12);
            assert!(v <= 1.0 / (1.0 - RHO) + 1e-9, "unbounded radiosity {v}");
            checksum += v;
        }
        assert!(checksum > 0.0, "no energy in the scene");
        WorkloadResult { checksum }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InputSize;
    use lc_trace::{NoopSink, RecordingSink};

    #[test]
    fn converges_identically_for_any_schedule() {
        let c = |t| {
            let ctx = TraceCtx::new(Arc::new(NoopSink), t);
            Radiosity
                .run(&ctx, &RunConfig::new(t, InputSize::SimDev, 29))
                .checksum
        };
        let base = c(1);
        assert!((c(4) - base).abs() < 1e-9);
        assert!((c(3) - base).abs() < 1e-9);
    }

    #[test]
    fn gather_loop_reads_all_patches() {
        let rec = Arc::new(RecordingSink::new());
        let ctx = TraceCtx::new(rec.clone(), 4);
        Radiosity.run(&ctx, &RunConfig::new(4, InputSize::SimDev, 2));
        let trace = rec.finish();
        assert!(trace.len() > 20_000);
        let gather = ctx
            .loops()
            .all_loops()
            .into_iter()
            .find(|l| ctx.loops().name(*l) == "gather")
            .unwrap();
        let tids: std::collections::HashSet<u32> = trace
            .events()
            .iter()
            .filter(|e| e.event.loop_id == gather)
            .map(|e| e.event.tid)
            .collect();
        assert!(tids.len() >= 2);
    }
}
