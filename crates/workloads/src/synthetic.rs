//! Synthetic topology workloads — labelled ground truth for §VI.
//!
//! Each [`Topology`] runs a real multi-threaded traced program whose
//! inter-thread RAW communication follows one canonical pattern: in every
//! round, each edge's producer writes a dedicated region and its consumer
//! reads it after a barrier. Profiling one of these and classifying the
//! resulting matrix is the end-to-end test of the paper's pattern-
//! detection claim.

use std::sync::Arc;

use lc_trace::{enter_func, enter_loop, run_threads, InstrumentedBarrier, TraceCtx, TracedBuffer};

use crate::{RunConfig, Workload, WorkloadResult};

/// Canonical communication topologies (mirrors
/// `lc_profiler::classify::PatternClass`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Topology {
    /// i → i+1 chain.
    Pipeline,
    /// Symmetric ring exchange.
    Ring1D,
    /// Symmetric 4-neighbour grid exchange.
    Grid2D,
    /// Thread 0 ↔ workers.
    MasterWorker,
    /// i ↔ i xor 2^k hypercube.
    Butterfly,
    /// Dense symmetric all-to-all.
    AllToAll,
    /// i → i/2 binary-tree convergence.
    ReductionTree,
}

impl Topology {
    /// Every topology.
    pub const ALL: [Topology; 7] = [
        Topology::Pipeline,
        Topology::Ring1D,
        Topology::Grid2D,
        Topology::MasterWorker,
        Topology::Butterfly,
        Topology::AllToAll,
        Topology::ReductionTree,
    ];

    /// Stable name, matching `PatternClass::name`.
    pub fn name(self) -> &'static str {
        match self {
            Topology::Pipeline => "pipeline",
            Topology::Ring1D => "ring-1d",
            Topology::Grid2D => "grid-2d",
            Topology::MasterWorker => "master-worker",
            Topology::Butterfly => "butterfly",
            Topology::AllToAll => "all-to-all",
            Topology::ReductionTree => "reduction-tree",
        }
    }

    /// The directed edge list `(src, dst, words_per_round)` for `t` threads.
    pub fn edges(self, t: usize) -> Vec<(usize, usize, usize)> {
        let mut e = Vec::new();
        match self {
            Topology::Pipeline => {
                for i in 0..t - 1 {
                    e.push((i, i + 1, 16));
                }
            }
            Topology::Ring1D => {
                for i in 0..t {
                    e.push((i, (i + 1) % t, 8));
                    e.push(((i + 1) % t, i, 8));
                }
            }
            Topology::Grid2D => {
                // Same width convention as classify::patterns::generate.
                let w = ((t as f64).sqrt().round() as usize).max(2);
                for i in 0..t {
                    let (x, _y) = (i % w, i / w);
                    if x + 1 < w && i + 1 < t {
                        e.push((i, i + 1, 8));
                        e.push((i + 1, i, 8));
                    }
                    if i + w < t {
                        e.push((i, i + w, 8));
                        e.push((i + w, i, 8));
                    }
                }
            }
            Topology::MasterWorker => {
                for i in 1..t {
                    e.push((0, i, 12));
                    e.push((i, 0, 4));
                }
            }
            Topology::Butterfly => {
                let mut k = 1;
                while k < t {
                    for i in 0..t {
                        let j = i ^ k;
                        if j < t && j > i {
                            e.push((i, j, 8));
                            e.push((j, i, 8));
                        }
                    }
                    k <<= 1;
                }
            }
            Topology::AllToAll => {
                for i in 0..t {
                    for j in 0..t {
                        if i != j {
                            e.push((i, j, 4));
                        }
                    }
                }
            }
            Topology::ReductionTree => {
                for i in 1..t {
                    e.push((i, i / 2, 16));
                }
            }
        }
        e
    }
}

/// A synthetic-pattern workload.
pub struct SyntheticPattern {
    /// The topology to exercise.
    pub topology: Topology,
}

impl Workload for SyntheticPattern {
    fn name(&self) -> &'static str {
        self.topology.name()
    }

    fn description(&self) -> &'static str {
        "synthetic labelled communication-topology generator"
    }

    fn run(&self, ctx: &Arc<TraceCtx>, cfg: &RunConfig) -> WorkloadResult {
        let t = cfg.threads;
        assert!(t >= 4, "topologies need at least 4 threads");
        let rounds = cfg.size.pick(4, 8, 16);
        let edges = self.topology.edges(t);
        let max_words = edges.iter().map(|e| e.2).max().unwrap_or(1);

        // One region per edge; fresh values each round force new RAW edges.
        let region: Vec<TracedBuffer<u64>> =
            edges.iter().map(|_| ctx.alloc::<u64>(max_words)).collect();

        let f = ctx.func(self.topology.name());
        let l_round = ctx.root_loop("exchange_round", f);
        let bar = InstrumentedBarrier::new(ctx, t, "barrier", f);

        let edges = &edges;
        let region = &region;
        run_threads(t, |tid| {
            let _fg = enter_func(f);
            for round in 0..rounds {
                let _rg = enter_loop(l_round);
                for (ei, &(src, _dst, words)) in edges.iter().enumerate() {
                    if src == tid {
                        for wd in 0..words {
                            region[ei].store(wd, (round * 1000 + wd) as u64);
                        }
                    }
                }
                bar.wait();
                for (ei, &(_src, dst, words)) in edges.iter().enumerate() {
                    if dst == tid {
                        let mut acc = 0u64;
                        for wd in 0..words {
                            acc = acc.wrapping_add(region[ei].load(wd));
                        }
                        std::hint::black_box(acc);
                    }
                }
                bar.wait();
            }
        });

        WorkloadResult {
            checksum: edges.len() as f64 * rounds as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InputSize;
    use lc_trace::NoopSink;

    #[test]
    fn edges_are_valid_for_various_thread_counts() {
        for t in [4usize, 8, 16] {
            for topo in Topology::ALL {
                let edges = topo.edges(t);
                assert!(!edges.is_empty(), "{topo:?} t={t}");
                for (s, d, w) in edges {
                    assert!(s < t && d < t && s != d && w > 0);
                }
            }
        }
    }

    #[test]
    fn all_topologies_run() {
        for topo in Topology::ALL {
            let ctx = TraceCtx::new(Arc::new(NoopSink), 8);
            let r = SyntheticPattern { topology: topo }
                .run(&ctx, &RunConfig::new(8, InputSize::SimDev, 1));
            assert!(r.checksum > 0.0);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Topology::ALL.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }
}
