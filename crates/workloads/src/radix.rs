//! `radix` — parallel LSD radix sort (SPLASH-2 RADIX skeleton).
//!
//! Per pass: each thread histograms its key chunk into a private row of the
//! shared histogram, all threads then read *every* row to compute their
//! scatter offsets (the all-to-all "scan" communication), and finally
//! permute their keys into the destination buffer. Barrier-separated, like
//! the original's `slave_sort`.

use std::sync::Arc;

use lc_trace::{enter_func, enter_loop, run_threads, InstrumentedBarrier, TraceCtx};

use crate::rng::Xoshiro256;
use crate::util::chunk;
use crate::{RunConfig, Workload, WorkloadResult};

/// Digit width in bits (256-way radix, 4 passes over 32-bit keys).
const RADIX_BITS: usize = 8;
/// Buckets per pass.
const BUCKETS: usize = 1 << RADIX_BITS;
/// Key width in bits.
const KEY_BITS: usize = 32;

/// The radix-sort workload.
pub struct Radix;

impl Workload for Radix {
    fn name(&self) -> &'static str {
        "radix"
    }

    fn description(&self) -> &'static str {
        "parallel LSD radix sort: private histograms, all-to-all scan, permute"
    }

    fn run(&self, ctx: &Arc<TraceCtx>, cfg: &RunConfig) -> WorkloadResult {
        let n = cfg.size.pick(4_096, 16_384, 65_536);
        let t = cfg.threads;
        assert!(n >= t, "need at least one key per thread");

        let keys = ctx.alloc::<u64>(n);
        let spare = ctx.alloc::<u64>(n);
        let hist = ctx.alloc::<u64>(t * BUCKETS);
        let offsets = ctx.alloc::<u64>(t * BUCKETS);

        // Untraced input generation (the paper's "code that should not be
        // analyzed").
        let mut rng = Xoshiro256::seed_from(cfg.seed);
        for i in 0..n {
            keys.poke(i, rng.next_u64() & 0xffff_ffff);
        }

        let f = ctx.func("radix_sort");
        let l_pass = ctx.root_loop("pass", f);
        let l_hist = ctx.nested_loop("histogram", l_pass, f);
        let l_scan = ctx.nested_loop("scan", l_pass, f);
        let l_perm = ctx.nested_loop("permute", l_pass, f);
        let bar = InstrumentedBarrier::new(ctx, t, "radix_barrier", f);

        let passes = KEY_BITS / RADIX_BITS;
        run_threads(t, |tid| {
            let _fg = enter_func(f);
            let (lo, hi) = chunk(n, t, tid);
            for pass in 0..passes {
                let _pg = enter_loop(l_pass);
                let shift = pass * RADIX_BITS;
                let (src, dst) = if pass % 2 == 0 {
                    (&keys, &spare)
                } else {
                    (&spare, &keys)
                };

                {
                    let _g = enter_loop(l_hist);
                    for d in 0..BUCKETS {
                        hist.store(tid * BUCKETS + d, 0);
                    }
                    for i in lo..hi {
                        let k = src.load(i);
                        let d = (k >> shift) as usize & (BUCKETS - 1);
                        hist.update(tid * BUCKETS + d, |v| v + 1);
                    }
                }
                bar.wait();

                {
                    // Every thread reads every thread's histogram row: the
                    // all-to-all exchange that dominates radix's pattern.
                    let _g = enter_loop(l_scan);
                    let mut below_digits = 0u64;
                    for d in 0..BUCKETS {
                        let mut my_off = below_digits;
                        for tt in 0..t {
                            let h = hist.load(tt * BUCKETS + d);
                            if tt < tid {
                                my_off += h;
                            }
                            below_digits += h;
                        }
                        offsets.store(tid * BUCKETS + d, my_off);
                    }
                }
                bar.wait();

                {
                    let _g = enter_loop(l_perm);
                    for i in lo..hi {
                        let k = src.load(i);
                        let d = (k >> shift) as usize & (BUCKETS - 1);
                        let pos = offsets.update(tid * BUCKETS + d, |v| v + 1) - 1;
                        dst.store(pos as usize, k);
                    }
                }
                bar.wait();
            }
        });

        // `passes` is even, so the sorted output is back in `keys`.
        let mut prev = 0u64;
        let mut checksum = 0.0f64;
        for i in 0..n {
            let v = keys.peek(i);
            assert!(v >= prev, "radix output not sorted at index {i}");
            prev = v;
            checksum += (v as f64) * ((i % 97) as f64 + 1.0);
        }
        WorkloadResult { checksum }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InputSize;
    use lc_trace::{CountingSink, NoopSink, RecordingSink};

    #[test]
    fn sorts_and_is_deterministic() {
        let run = || {
            let ctx = TraceCtx::new(Arc::new(NoopSink), 4);
            Radix
                .run(&ctx, &RunConfig::new(4, InputSize::SimDev, 42))
                .checksum
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn single_thread_matches_parallel_checksum() {
        let c1 = {
            let ctx = TraceCtx::new(Arc::new(NoopSink), 1);
            Radix
                .run(&ctx, &RunConfig::new(1, InputSize::SimDev, 7))
                .checksum
        };
        let c4 = {
            let ctx = TraceCtx::new(Arc::new(NoopSink), 4);
            Radix
                .run(&ctx, &RunConfig::new(4, InputSize::SimDev, 7))
                .checksum
        };
        assert_eq!(c1, c4);
    }

    #[test]
    fn emits_loop_annotated_events() {
        let rec = Arc::new(RecordingSink::new());
        let ctx = TraceCtx::new(rec.clone(), 4);
        Radix.run(&ctx, &RunConfig::new(4, InputSize::SimDev, 1));
        let trace = rec.finish();
        assert!(trace.len() > 10_000);
        // Every access is attributed to a registered loop.
        assert!(trace.events().iter().all(|e| e.event.loop_id.is_some()));
        // The loop table knows histogram/scan/permute under "pass".
        let names: Vec<String> = ctx
            .loops()
            .all_loops()
            .into_iter()
            .map(|l| ctx.loops().name(l))
            .collect();
        for expect in ["pass", "histogram", "scan", "permute"] {
            assert!(names.iter().any(|n| n == expect), "missing loop {expect}");
        }
    }

    #[test]
    fn input_sizes_scale_event_counts() {
        let count = |size| {
            let c = Arc::new(CountingSink::new());
            let ctx = TraceCtx::new(c.clone(), 2);
            Radix.run(&ctx, &RunConfig::new(2, size, 3));
            c.total()
        };
        assert!(count(InputSize::SimSmall) > count(InputSize::SimDev));
    }
}
