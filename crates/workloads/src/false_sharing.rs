//! Engineered false-sharing workloads for the coherence backend.
//!
//! Two kernels that exhibit false sharing *on demand*, so the detector's
//! teeth can be tested both ways:
//!
//! * [`FsCounters`] — the classic padded/unpadded per-thread counter
//!   array. Unpadded, every thread's counter lives in one cache line and
//!   each increment ping-pongs the line; padded (one line per counter)
//!   the same computation is coherence-silent. The final reduction by
//!   thread 0 is the only inter-thread RAW communication, so the RAW
//!   matrices of the two variants are identical — only the coherence
//!   report tells them apart.
//! * [`FsStraddle`] — a producer/consumer ring whose three-word records
//!   straddle cache-line boundaries: each record's tail shares a line
//!   with the next producer's head, so consumers pull neighbour data
//!   they never read (false bytes) alongside the record itself (true
//!   bytes) — a mixed split, unlike the counter pair's all-or-nothing.

use std::sync::Arc;

use lc_trace::{enter_func, enter_loop, run_threads, InstrumentedBarrier, TraceCtx, TracedBuffer};

use crate::{RunConfig, Workload, WorkloadResult};

/// Words per 64-byte cache line — the padding stride.
const LINE_WORDS: usize = 8;

/// Per-thread counter array, padded (one line per counter) or unpadded
/// (all counters in consecutive words).
pub struct FsCounters {
    /// When true, counters are spaced one cache line apart.
    pub padded: bool,
}

impl Workload for FsCounters {
    fn name(&self) -> &'static str {
        if self.padded {
            "fs_padded"
        } else {
            "fs_unpadded"
        }
    }

    fn description(&self) -> &'static str {
        if self.padded {
            "per-thread counters, one cache line apart (coherence-silent twin)"
        } else {
            "per-thread counters packed into shared cache lines (false-sharing ping-pong)"
        }
    }

    fn run(&self, ctx: &Arc<TraceCtx>, cfg: &RunConfig) -> WorkloadResult {
        let t = cfg.threads;
        let rounds = cfg.size.pick(16, 128, 1024);
        let stride = if self.padded { LINE_WORDS } else { 1 };
        let counters: TracedBuffer<u64> = ctx.alloc::<u64>(t * stride);
        let sum: TracedBuffer<u64> = ctx.alloc::<u64>(1);

        let f = ctx.func(self.name());
        let l_bump = ctx.root_loop("bump", f);
        let l_reduce = ctx.root_loop("reduce", f);
        let bar = InstrumentedBarrier::new(ctx, t, "barrier", f);

        let counters = &counters;
        let sum = &sum;
        run_threads(t, |tid| {
            let _fg = enter_func(f);
            {
                let _lg = enter_loop(l_bump);
                for _ in 0..rounds {
                    let idx = tid * stride;
                    let c = counters.load(idx);
                    counters.store(idx, c + 1);
                }
            }
            bar.wait();
            if tid == 0 {
                let _lg = enter_loop(l_reduce);
                let mut acc = 0u64;
                for i in 0..t {
                    acc = acc.wrapping_add(counters.load(i * stride));
                }
                sum.store(0, acc);
            }
            bar.wait();
        });

        let total = sum.peek(0);
        assert_eq!(
            total,
            (t * rounds) as u64,
            "every increment must be observed by the reduction"
        );
        WorkloadResult {
            checksum: total as f64,
        }
    }
}

/// Producer/consumer ring whose records straddle cache-line boundaries.
///
/// Record `i` occupies words `{8i+6, 8i+7, 8i+8}`: its tail shares line
/// `i+1` with record `i+1`'s head. Thread `i` produces record `i`; thread
/// `(i+1) % t` consumes it after a barrier.
pub struct FsStraddle;

/// Words per record (one word crosses the line boundary).
const RECORD_WORDS: usize = 3;
/// Word offset of record `i` within the shared buffer.
const RECORD_OFFSET: usize = 6;

impl Workload for FsStraddle {
    fn name(&self) -> &'static str {
        "fs_straddle"
    }

    fn description(&self) -> &'static str {
        "line-straddling producer/consumer ring (mixed true/false sharing)"
    }

    fn run(&self, ctx: &Arc<TraceCtx>, cfg: &RunConfig) -> WorkloadResult {
        let t = cfg.threads;
        assert!(t >= 2, "the ring needs at least 2 threads");
        let rounds = cfg.size.pick(8, 64, 512);
        let buf: TracedBuffer<u64> = ctx.alloc::<u64>(t * LINE_WORDS + LINE_WORDS);

        let f = ctx.func("fs_straddle");
        let l_round = ctx.root_loop("handoff_round", f);
        let bar = InstrumentedBarrier::new(ctx, t, "barrier", f);

        let buf = &buf;
        run_threads(t, |tid| {
            let _fg = enter_func(f);
            for round in 0..rounds {
                let _rg = enter_loop(l_round);
                let base = tid * LINE_WORDS + RECORD_OFFSET;
                for w in 0..RECORD_WORDS {
                    buf.store(base + w, (round * 100 + tid * 10 + w) as u64);
                }
                bar.wait();
                let src = (tid + t - 1) % t;
                let sbase = src * LINE_WORDS + RECORD_OFFSET;
                let mut acc = 0u64;
                for w in 0..RECORD_WORDS {
                    acc = acc.wrapping_add(buf.load(sbase + w));
                }
                let expect: u64 = (0..RECORD_WORDS)
                    .map(|w| (round * 100 + src * 10 + w) as u64)
                    .sum();
                assert_eq!(acc, expect, "consumer must see the produced record");
                bar.wait();
            }
        });

        WorkloadResult {
            checksum: (t * rounds * RECORD_WORDS) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InputSize;
    use lc_trace::{NoopSink, TraceCtx};

    fn run(w: &dyn Workload, t: usize) -> WorkloadResult {
        let ctx = TraceCtx::new(Arc::new(NoopSink), t);
        w.run(&ctx, &RunConfig::new(t, InputSize::SimDev, 7))
    }

    #[test]
    fn counters_validate_both_variants() {
        for padded in [false, true] {
            let r = run(&FsCounters { padded }, 4);
            assert_eq!(r.checksum, 4.0 * 16.0);
        }
    }

    #[test]
    fn straddle_records_cross_line_boundaries() {
        // Record i's word range must span two 64-byte lines.
        for i in 0..8usize {
            let first = (i * LINE_WORDS + RECORD_OFFSET) / LINE_WORDS;
            let last = (i * LINE_WORDS + RECORD_OFFSET + RECORD_WORDS - 1) / LINE_WORDS;
            assert_eq!(last, first + 1, "record {i} must straddle");
        }
        let r = run(&FsStraddle, 4);
        assert_eq!(r.checksum, (4 * 8 * RECORD_WORDS) as f64);
    }
}
