//! `fmm` — fast-multipole-style N-body (SPLASH-2 FMM skeleton, 2-D,
//! monopole expansion).
//!
//! The domain is a uniform grid of cells. Per step: owners aggregate their
//! cells' particles into cell monopoles (`p2m`), far-field forces come from
//! the monopoles of every non-adjacent cell (`m2l_far` — the low-volume
//! all-to-all aggregate exchange), near-field forces are direct pair sums
//! with the 3×3 neighbourhood (`p2p_near` — spatial-neighbour traffic), and
//! owners advance their particles.
//!
//! Full FMM uses higher-order multipoles and a tree; the monopole/uniform-
//! grid skeleton preserves the near/far communication split — which is the
//! property the communication profiler observes. Documented as a
//! substitution in DESIGN.md.

use std::sync::Arc;

use lc_trace::{enter_func, enter_loop, run_threads, InstrumentedBarrier, TraceCtx, TracedBuffer};

use crate::rng::Xoshiro256;
use crate::util::chunk;
use crate::{RunConfig, Workload, WorkloadResult};

const SOFT: f64 = 1e-3;
const DT: f64 = 1e-5;

#[inline]
fn accel(m: f64, dx: f64, dy: f64) -> (f64, f64) {
    let r2 = dx * dx + dy * dy + SOFT;
    let inv = m / (r2 * r2.sqrt());
    (dx * inv, dy * inv)
}

/// The FMM-style workload.
pub struct Fmm;

impl Workload for Fmm {
    fn name(&self) -> &'static str {
        "fmm"
    }

    fn description(&self) -> &'static str {
        "uniform-grid multipole N-body: p2m aggregate, far-field m2l, near-field p2p"
    }

    fn run(&self, ctx: &Arc<TraceCtx>, cfg: &RunConfig) -> WorkloadResult {
        let c = cfg.size.pick(6usize, 8, 10);
        let per_cell = 4usize;
        let n = c * c * per_cell;
        let steps = cfg.size.pick(2, 3, 3);
        let t = cfg.threads.min(c);
        let cell_w = 1.0 / c as f64;

        let px: TracedBuffer<f64> = ctx.alloc(n);
        let py: TracedBuffer<f64> = ctx.alloc(n);
        let axb: TracedBuffer<f64> = ctx.alloc(n);
        let ayb: TracedBuffer<f64> = ctx.alloc(n);
        // Cell monopoles: mass, comx, comy.
        let cm: TracedBuffer<f64> = ctx.alloc(c * c);
        let cx: TracedBuffer<f64> = ctx.alloc(c * c);
        let cy: TracedBuffer<f64> = ctx.alloc(c * c);
        let slot = |ci: usize, cj: usize, s: usize| (ci * c + cj) * per_cell + s;

        let mut rng = Xoshiro256::seed_from(cfg.seed);
        for ci in 0..c {
            for cj in 0..c {
                for s in 0..per_cell {
                    px.poke(slot(ci, cj, s), (cj as f64 + rng.next_f64()) * cell_w);
                    py.poke(slot(ci, cj, s), (ci as f64 + rng.next_f64()) * cell_w);
                }
            }
        }

        let f = ctx.func("fmm");
        let l_step = ctx.root_loop("fmm_step", f);
        let l_p2m = ctx.nested_loop("p2m", l_step, f);
        let l_far = ctx.nested_loop("m2l_far", l_step, f);
        let l_near = ctx.nested_loop("p2p_near", l_step, f);
        let l_adv = ctx.nested_loop("advance", l_step, f);
        let bar = InstrumentedBarrier::new(ctx, t, "barrier", f);

        run_threads(t, |tid| {
            let _fg = enter_func(f);
            let (rlo, rhi) = chunk(c, t, tid);
            for step in 0..steps {
                let _sg = enter_loop(l_step);
                {
                    let _g = enter_loop(l_p2m);
                    for ci in rlo..rhi {
                        for cj in 0..c {
                            let (mut m, mut sx, mut sy) = (0.0, 0.0, 0.0);
                            for s in 0..per_cell {
                                m += 1.0;
                                sx += px.load(slot(ci, cj, s));
                                sy += py.load(slot(ci, cj, s));
                            }
                            cm.store(ci * c + cj, m);
                            cx.store(ci * c + cj, sx / m);
                            cy.store(ci * c + cj, sy / m);
                        }
                    }
                }
                bar.wait();
                {
                    // Far field: monopoles of all non-adjacent cells,
                    // evaluated at each particle's own position.
                    let _g = enter_loop(l_far);
                    for ci in rlo..rhi {
                        for cj in 0..c {
                            for s in 0..per_cell {
                                let me = slot(ci, cj, s);
                                let (xi, yi) = (px.load(me), py.load(me));
                                let (mut fx2, mut fy2) = (0.0, 0.0);
                                for oi in 0..c {
                                    for oj in 0..c {
                                        if oi.abs_diff(ci) <= 1 && oj.abs_diff(cj) <= 1 {
                                            continue; // near field handled directly
                                        }
                                        let m = cm.load(oi * c + oj);
                                        let (gx, gy) = accel(
                                            m,
                                            cx.load(oi * c + oj) - xi,
                                            cy.load(oi * c + oj) - yi,
                                        );
                                        fx2 += gx;
                                        fy2 += gy;
                                    }
                                }
                                axb.store(me, fx2);
                                ayb.store(me, fy2);
                            }
                        }
                    }
                }
                {
                    // Near field: direct pairs within the 3×3 neighbourhood.
                    let _g = enter_loop(l_near);
                    for ci in rlo..rhi {
                        for cj in 0..c {
                            for s in 0..per_cell {
                                let me = slot(ci, cj, s);
                                let (xi, yi) = (px.load(me), py.load(me));
                                let (mut sx, mut sy) = (0.0, 0.0);
                                for di in -1i64..=1 {
                                    for dj in -1i64..=1 {
                                        let (ni, nj) = (ci as i64 + di, cj as i64 + dj);
                                        if ni < 0 || nj < 0 || ni >= c as i64 || nj >= c as i64 {
                                            continue;
                                        }
                                        for s2 in 0..per_cell {
                                            let other = slot(ni as usize, nj as usize, s2);
                                            if other == me {
                                                continue;
                                            }
                                            let (gx, gy) = accel(
                                                1.0,
                                                px.load(other) - xi,
                                                py.load(other) - yi,
                                            );
                                            sx += gx;
                                            sy += gy;
                                        }
                                    }
                                }
                                axb.update(me, |v| v + sx);
                                ayb.update(me, |v| v + sy);
                            }
                        }
                    }
                }
                bar.wait();
                // Skip the final advance so forces stay consistent with the
                // final positions for validation.
                if step + 1 < steps {
                    let _g = enter_loop(l_adv);
                    for ci in rlo..rhi {
                        for cj in 0..c {
                            for s in 0..per_cell {
                                let me = slot(ci, cj, s);
                                let (xlo, xhi) =
                                    (cj as f64 * cell_w, (cj as f64 + 1.0) * cell_w - 1e-9);
                                let (ylo, yhi) =
                                    (ci as f64 * cell_w, (ci as f64 + 1.0) * cell_w - 1e-9);
                                px.update(me, |v| (v + DT * axb.load(me)).clamp(xlo, xhi));
                                py.update(me, |v| (v + DT * ayb.load(me)).clamp(ylo, yhi));
                            }
                        }
                    }
                }
                bar.wait();
            }
        });

        // Mass conservation in the aggregates is exact.
        let total_mass: f64 = (0..c * c).map(|i| cm.peek(i)).sum();
        assert!((total_mass - n as f64).abs() < 1e-9);

        // Sampled accuracy vs direct sum (monopole ⇒ loose tolerance).
        let mut rng2 = Xoshiro256::seed_from(cfg.seed ^ 0x77);
        for _ in 0..6 {
            let i = rng2.below(n as u64) as usize;
            let (xi, yi) = (px.peek(i), py.peek(i));
            let (mut dx, mut dy) = (0.0, 0.0);
            for j in 0..n {
                if i != j {
                    let (gx, gy) = accel(1.0, px.peek(j) - xi, py.peek(j) - yi);
                    dx += gx;
                    dy += gy;
                }
            }
            let (tx, ty) = (axb.peek(i), ayb.peek(i));
            let mag = (dx * dx + dy * dy).sqrt().max(1e-9);
            let err = ((tx - dx).powi(2) + (ty - dy).powi(2)).sqrt() / mag;
            assert!(err < 0.5, "fmm force error {err} at particle {i}");
        }

        let checksum = (0..n).map(|i| px.peek(i) + 2.0 * py.peek(i)).sum();
        WorkloadResult { checksum }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InputSize;
    use lc_trace::{NoopSink, RecordingSink};

    #[test]
    fn conserves_mass_and_is_thread_independent() {
        let c = |t| {
            let ctx = TraceCtx::new(Arc::new(NoopSink), t);
            Fmm.run(&ctx, &RunConfig::new(t, InputSize::SimDev, 19))
                .checksum
        };
        assert!((c(1) - c(3)).abs() < 1e-9);
    }

    #[test]
    fn has_near_and_far_phases() {
        let rec = Arc::new(RecordingSink::new());
        let ctx = TraceCtx::new(rec.clone(), 3);
        Fmm.run(&ctx, &RunConfig::new(3, InputSize::SimDev, 4));
        let names: Vec<String> = ctx
            .loops()
            .all_loops()
            .into_iter()
            .map(|l| ctx.loops().name(l))
            .collect();
        for expect in ["p2m", "m2l_far", "p2p_near", "advance"] {
            assert!(names.iter().any(|n| n == expect), "missing {expect}");
        }
        assert!(rec.finish().len() > 10_000);
    }
}
