//! Schedule-space exploration: exhaustive DFS, seeded random sampling,
//! trace replay, and greedy minimization of failing schedules.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering as AtomOrd;
use std::sync::Arc;

use crate::rt::{
    current_ctx, Decider, Runtime, SimAbort, SimCtx, Status, Violation, ViolationKind, ACTIVE_SIMS,
    CTX,
};

/// Deterministic splitmix64 stream for seeded random exploration.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// Exploration configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// DFS preemption bound: maximum number of decisions that switch away
    /// from a still-runnable thread, per execution. `None` = unbounded.
    pub max_preemptions: Option<usize>,
    /// Hard per-execution step cap (runaway-scenario guard).
    pub max_steps: u64,
    /// Hard cap on executions per exhaustive exploration; exceeded sets
    /// `truncated` in the report instead of running forever.
    pub max_schedules: u64,
    /// Fault mutants to activate inside the simulation (see
    /// [`crate::mutant_active`]).
    pub mutants: Vec<String>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_preemptions: Some(2),
            max_steps: 100_000,
            max_schedules: 100_000,
            mutants: Vec::new(),
        }
    }
}

/// A schedule as the sequence of thread ids chosen at each branching
/// decision point — sufficient to replay the execution exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleTrace {
    /// Chosen simulated tid at each recorded (branching) decision.
    pub choices: Vec<u16>,
    /// Preemptions the schedule used.
    pub preemptions: usize,
    /// Total decision-point steps the execution took.
    pub steps: u64,
}

impl ScheduleTrace {
    /// One-line serialization (`choices=1,0,2;preemptions=1;steps=40`),
    /// parseable by [`ScheduleTrace::parse_line`] for replay.
    pub fn to_line(&self) -> String {
        let cs: Vec<String> = self.choices.iter().map(|c| c.to_string()).collect();
        format!(
            "choices={};preemptions={};steps={}",
            cs.join(","),
            self.preemptions,
            self.steps
        )
    }

    /// Parse the output of [`ScheduleTrace::to_line`].
    pub fn parse_line(line: &str) -> Option<ScheduleTrace> {
        let mut choices = None;
        let mut preemptions = 0usize;
        let mut steps = 0u64;
        for part in line.trim().split(';') {
            let (k, v) = part.split_once('=')?;
            match k {
                "choices" => {
                    let cs: Result<Vec<u16>, _> = if v.is_empty() {
                        Ok(Vec::new())
                    } else {
                        v.split(',').map(|c| c.parse()).collect()
                    };
                    choices = Some(cs.ok()?);
                }
                "preemptions" => preemptions = v.parse().ok()?,
                "steps" => steps = v.parse().ok()?,
                _ => return None,
            }
        }
        Some(ScheduleTrace {
            choices: choices?,
            preemptions,
            steps,
        })
    }
}

/// A violation found during exploration, with its repro traces.
#[derive(Debug, Clone)]
pub struct ViolationReport {
    /// Failure classification.
    pub kind: ViolationKind,
    /// Human-readable description.
    pub message: String,
    /// 0-based index of the failing schedule within the exploration.
    pub schedule_index: u64,
    /// The failing schedule as recorded.
    pub trace: ScheduleTrace,
    /// Greedily minimized variant (fewer non-default choices), when
    /// minimization could re-reproduce the failure.
    pub minimized: Option<ScheduleTrace>,
}

/// Result of an exploration run.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Number of executions performed.
    pub schedules: u64,
    /// True when the exhaustive frontier was cut off by `max_schedules`.
    pub truncated: bool,
    /// Maximum decision-point steps over all executions.
    pub max_steps_seen: u64,
    /// Maximum branching-decision count over all executions.
    pub max_decisions: u64,
    /// First violation found, if any (exploration stops at the first).
    pub violation: Option<ViolationReport>,
}

impl ExploreReport {
    /// True when no violation was found.
    pub fn ok(&self) -> bool {
        self.violation.is_none()
    }
}

struct ExecOutcome {
    decisions: Vec<(Vec<u16>, usize)>,
    violation: Option<Violation>,
    preemptions: usize,
    steps: u64,
}

impl ExecOutcome {
    fn schedule(&self) -> ScheduleTrace {
        ScheduleTrace {
            choices: self
                .decisions
                .iter()
                .map(|(enabled, idx)| enabled[*idx])
                .collect(),
            preemptions: self.preemptions,
            steps: self.steps,
        }
    }
}

/// Drives scenarios through the schedule space.
pub struct Explorer {
    cfg: SimConfig,
}

impl Explorer {
    /// Build an explorer with the given configuration.
    pub fn new(cfg: SimConfig) -> Self {
        Explorer { cfg }
    }

    /// Run `scenario` once under the given decider, as simulated thread 0.
    fn run_one<F: Fn()>(&self, scenario: &F, decider: Decider) -> ExecOutcome {
        assert!(
            current_ctx().is_none(),
            "nested simulations are not supported"
        );
        let rt = Arc::new(Runtime::new(
            decider,
            self.cfg.max_preemptions,
            self.cfg.max_steps,
            self.cfg.mutants.clone(),
        ));
        ACTIVE_SIMS.fetch_add(1, AtomOrd::SeqCst);
        CTX.with(|c| {
            *c.borrow_mut() = Some(SimCtx {
                rt: Arc::clone(&rt),
                tid: 0,
            })
        });
        let r = catch_unwind(AssertUnwindSafe(scenario));
        {
            let mut st = rt.lock_state();
            match r {
                Ok(()) => {
                    let leaked = st
                        .threads
                        .iter()
                        .skip(1)
                        .filter(|t| t.status != Status::Finished)
                        .count();
                    if leaked > 0 && st.violation.is_none() {
                        rt.record_violation(
                            &mut st,
                            ViolationKind::LeakedThread,
                            format!("scenario returned with {leaked} unfinished thread(s)"),
                        );
                    }
                }
                Err(p) => {
                    if p.downcast_ref::<SimAbort>().is_none() && st.violation.is_none() {
                        let msg = if let Some(s) = p.downcast_ref::<&str>() {
                            (*s).to_string()
                        } else if let Some(s) = p.downcast_ref::<String>() {
                            s.clone()
                        } else {
                            "non-string panic payload".into()
                        };
                        rt.record_violation(
                            &mut st,
                            ViolationKind::Panic,
                            format!("scenario panicked: {msg}"),
                        );
                    }
                }
            }
            // Tear down any still-parked threads.
            st.aborting = true;
            rt.cv.notify_all();
        }
        let handles: Vec<_> = rt
            .os_handles
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
        CTX.with(|c| *c.borrow_mut() = None);
        ACTIVE_SIMS.fetch_sub(1, AtomOrd::SeqCst);
        let st = rt.lock_state();
        ExecOutcome {
            decisions: st
                .trace
                .iter()
                .map(|d| (d.enabled.clone(), d.chosen_idx))
                .collect(),
            violation: st.violation.clone(),
            preemptions: st.preemptions,
            steps: st.steps,
        }
    }

    fn report_violation<F: Fn()>(
        &self,
        scenario: &F,
        exec: &ExecOutcome,
        schedule_index: u64,
    ) -> ViolationReport {
        let v = exec.violation.clone().expect("violation present");
        let trace = exec.schedule();
        let minimized = self.minimize(scenario, exec);
        ViolationReport {
            kind: v.kind,
            message: v.message,
            schedule_index,
            trace,
            minimized,
        }
    }

    /// Exhaustive DFS over branching decisions, depth-first backtracking
    /// from the last decision with unexplored alternatives. Stops at the
    /// first violation (reported with a minimized repro) or when the
    /// frontier is exhausted / `max_schedules` is hit.
    pub fn explore_exhaustive<F: Fn()>(&self, scenario: F) -> ExploreReport {
        let mut prefix: Vec<usize> = Vec::new();
        let mut report = ExploreReport {
            schedules: 0,
            truncated: false,
            max_steps_seen: 0,
            max_decisions: 0,
            violation: None,
        };
        loop {
            let exec = self.run_one(
                &scenario,
                Decider::Dfs {
                    prefix: prefix.clone(),
                    pos: 0,
                },
            );
            report.schedules += 1;
            report.max_steps_seen = report.max_steps_seen.max(exec.steps);
            report.max_decisions = report.max_decisions.max(exec.decisions.len() as u64);
            if exec.violation.is_some() {
                report.violation =
                    Some(self.report_violation(&scenario, &exec, report.schedules - 1));
                return report;
            }
            if report.schedules >= self.cfg.max_schedules {
                report.truncated = true;
                return report;
            }
            // Backtrack: deepest decision with an unexplored alternative.
            let mut stack = exec.decisions;
            loop {
                let Some((enabled, chosen_idx)) = stack.pop() else {
                    return report; // frontier exhausted
                };
                if chosen_idx + 1 < enabled.len() {
                    prefix = stack.iter().map(|(_, idx)| *idx).collect();
                    prefix.push(chosen_idx + 1);
                    break;
                }
            }
        }
    }

    /// `n` independent executions with seeded random decisions
    /// (deterministic per seed). Stops at the first violation.
    pub fn explore_random<F: Fn()>(&self, seed: u64, n: u64, scenario: F) -> ExploreReport {
        let mut report = ExploreReport {
            schedules: 0,
            truncated: false,
            max_steps_seen: 0,
            max_decisions: 0,
            violation: None,
        };
        for i in 0..n {
            let exec = self.run_one(
                &scenario,
                Decider::Random(SplitMix64(
                    seed.wrapping_add(i).wrapping_mul(0x2545F4914F6CDD1D),
                )),
            );
            report.schedules += 1;
            report.max_steps_seen = report.max_steps_seen.max(exec.steps);
            report.max_decisions = report.max_decisions.max(exec.decisions.len() as u64);
            if exec.violation.is_some() {
                report.violation =
                    Some(self.report_violation(&scenario, &exec, report.schedules - 1));
                return report;
            }
        }
        report
    }

    /// Replay one recorded schedule. Divergence (the trace asking for a
    /// thread that is not enabled) is itself reported as a violation.
    pub fn replay<F: Fn()>(&self, trace: &ScheduleTrace, scenario: F) -> ExploreReport {
        let exec = self.run_one(
            &scenario,
            Decider::Replay {
                choices: trace.choices.clone(),
                pos: 0,
            },
        );
        let violation = exec.violation.clone().map(|v| ViolationReport {
            kind: v.kind,
            message: v.message,
            schedule_index: 0,
            trace: exec.schedule(),
            minimized: None,
        });
        ExploreReport {
            schedules: 1,
            truncated: false,
            max_steps_seen: exec.steps,
            max_decisions: exec.decisions.len() as u64,
            violation,
        }
    }

    /// Greedy minimization: for each decision that deviated from the
    /// default (index 0, "don't switch"), try forcing the default there
    /// and rerunning with default continuation; keep any variant that
    /// still fails. Converges to a schedule where every remaining switch
    /// is necessary for the failure.
    fn minimize<F: Fn()>(&self, scenario: &F, failing: &ExecOutcome) -> Option<ScheduleTrace> {
        let mut best: Vec<usize> = failing.decisions.iter().map(|(_, idx)| *idx).collect();
        let mut best_trace: Option<ScheduleTrace> = None;
        let mut budget = 256u32; // replays, not schedules: keep repros cheap
        loop {
            let mut improved = false;
            for i in 0..best.len() {
                if best[i] == 0 {
                    continue;
                }
                if budget == 0 {
                    return best_trace;
                }
                budget -= 1;
                // Force the default at i, truncate the suffix (the enabled
                // sets beyond i may differ), continue with defaults.
                let mut candidate = best[..i].to_vec();
                candidate.push(0);
                let exec = self.run_one(
                    scenario,
                    Decider::Dfs {
                        prefix: candidate,
                        pos: 0,
                    },
                );
                if exec.violation.is_some() {
                    best = exec.decisions.iter().map(|(_, idx)| *idx).collect();
                    best_trace = Some(exec.schedule());
                    improved = true;
                    break;
                }
            }
            if !improved {
                return best_trace.or_else(|| {
                    // Nothing shrank; the original trace is already minimal.
                    Some(failing.schedule())
                });
            }
        }
    }
}
