//! The cooperative scheduling runtime.
//!
//! One [`Runtime`] drives one *execution*: real OS threads serialized by a
//! baton so that exactly one simulated thread runs at a time. Control can
//! transfer only at *decision points* — the entry of every shim sync
//! operation ([`crate::sync`]) — so the set of reachable interleavings is
//! exactly the set of decision sequences, which the explorer enumerates.
//!
//! Besides serialization the runtime tracks, per thread, a vector clock
//! that release stores / acquire loads / mutex hand-offs propagate. Each
//! shim cell records the clock of its creator ("birth"); an access by a
//! thread whose clock has not caught up to the birth means the cell was
//! published without a happens-before edge from its initialization — the
//! classic relaxed-publish bug — and is reported as a violation even
//! though the interleaving semantics here are sequentially consistent.

use std::panic::panic_any;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AtomOrd};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Number of simulations currently running anywhere in the process. Lets
/// the shim fast path skip the thread-local probe entirely in normal runs.
pub(crate) static ACTIVE_SIMS: AtomicUsize = AtomicUsize::new(0);

/// Monotonic id distinguishing executions, so cell metadata left over from
/// a previous execution is recognized as stale instead of misread.
pub(crate) static EXEC_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    pub(crate) static CTX: std::cell::RefCell<Option<SimCtx>> =
        const { std::cell::RefCell::new(None) };
}

/// Per-OS-thread simulation context: which runtime, which simulated tid.
#[derive(Clone)]
pub(crate) struct SimCtx {
    pub rt: Arc<Runtime>,
    pub tid: usize,
}

pub(crate) fn current_ctx() -> Option<SimCtx> {
    if ACTIVE_SIMS.load(AtomOrd::Relaxed) == 0 {
        return None;
    }
    CTX.with(|c| c.borrow().clone())
}

/// Panic payload used to tear down sibling threads after a violation or at
/// the end of an execution with leaked threads. Caught (and swallowed) by
/// the per-thread wrapper and by the explorer.
pub(crate) struct SimAbort;

/// A vector clock over simulated thread ids.
pub(crate) type Vc = Vec<u32>;

pub(crate) fn vc_join(into: &mut Vc, other: &Vc) {
    if into.len() < other.len() {
        into.resize(other.len(), 0);
    }
    for (i, &v) in other.iter().enumerate() {
        if into[i] < v {
            into[i] = v;
        }
    }
}

pub(crate) fn vc_leq(a: &Vc, b: &Vc) -> bool {
    a.iter()
        .enumerate()
        .all(|(i, &v)| v <= b.get(i).copied().unwrap_or(0))
}

/// What went wrong in an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// An oracle assertion (or any other panic) fired inside the scenario.
    Panic,
    /// No runnable or sleeping thread remains but some are blocked.
    Deadlock,
    /// A shim cell was accessed by a thread with no happens-before edge to
    /// the cell's initialization (relaxed-publish class of bug).
    InitRace,
    /// A replayed decision trace asked for a thread that is not enabled.
    ReplayDivergence,
    /// The scenario returned while spawned threads were still unfinished.
    LeakedThread,
}

/// A violation plus the decision trace that produces it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Classification of the failure.
    pub kind: ViolationKind,
    /// Human-readable description (panic message, lock cycle, cell info).
    pub message: String,
}

/// One recorded scheduling decision: the enabled set at a branching point
/// (len > 1 always — unforced points only) and the index chosen.
#[derive(Debug, Clone)]
pub(crate) struct Decision {
    pub enabled: Vec<u16>,
    pub chosen_idx: usize,
}

/// How the runtime picks among enabled threads at a decision point.
pub(crate) enum Decider {
    /// Follow `prefix` by index, then always pick index 0 (run-to-block).
    Dfs { prefix: Vec<usize>, pos: usize },
    /// Seeded splitmix64 choices.
    Random(crate::explore::SplitMix64),
    /// Follow recorded tids exactly; divergence is a violation.
    Replay { choices: Vec<u16>, pos: usize },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    Runnable,
    /// Waiting for a shim mutex identified by its address.
    BlockedMutex(usize),
    /// Waiting for another simulated thread to finish.
    BlockedJoin(usize),
    /// Virtual-time sleep until the given microsecond tick.
    Sleeping(u64),
    Finished,
}

pub(crate) struct ThreadSlot {
    pub status: Status,
    pub vc: Vc,
}

pub(crate) struct RtState {
    pub threads: Vec<ThreadSlot>,
    /// The simulated tid currently holding the baton.
    pub current: usize,
    pub decider: Decider,
    pub trace: Vec<Decision>,
    pub preemptions: usize,
    pub steps: u64,
    pub clock_us: u64,
    pub violation: Option<Violation>,
    pub aborting: bool,
    /// Serialized log of scenario-level annotations, in execution order.
    pub op_log: Vec<(usize, [u64; 4])>,
}

/// One deterministic execution: the baton, the shared state, the config.
pub struct Runtime {
    pub(crate) exec_id: u64,
    pub(crate) state: StdMutex<RtState>,
    pub(crate) cv: Condvar,
    pub(crate) max_preemptions: Option<usize>,
    pub(crate) max_steps: u64,
    pub(crate) mutants: Vec<String>,
    /// OS handles of spawned threads, joined by the explorer at teardown.
    pub(crate) os_handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

fn lock_recover<T>(m: &StdMutex<T>) -> StdMutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl Runtime {
    pub(crate) fn new(
        decider: Decider,
        max_preemptions: Option<usize>,
        max_steps: u64,
        mutants: Vec<String>,
    ) -> Self {
        Runtime {
            exec_id: EXEC_IDS.fetch_add(1, AtomOrd::Relaxed),
            state: StdMutex::new(RtState {
                threads: vec![ThreadSlot {
                    status: Status::Runnable,
                    vc: vec![1],
                }],
                current: 0,
                decider,
                trace: Vec::new(),
                preemptions: 0,
                steps: 0,
                clock_us: 0,
                violation: None,
                aborting: false,
                op_log: Vec::new(),
            }),
            cv: Condvar::new(),
            max_preemptions,
            max_steps,
            mutants,
            os_handles: StdMutex::new(Vec::new()),
        }
    }

    pub(crate) fn lock_state(&self) -> StdMutexGuard<'_, RtState> {
        lock_recover(&self.state)
    }

    pub(crate) fn record_violation(&self, st: &mut RtState, kind: ViolationKind, message: String) {
        if st.violation.is_none() {
            st.violation = Some(Violation { kind, message });
        }
        st.aborting = true;
        self.cv.notify_all();
    }

    /// Enabled threads at a decision point, in deterministic order:
    /// the previously-running thread first when runnable (so index 0 is
    /// always "don't preempt"), then the rest by ascending tid.
    fn enabled_set(st: &RtState) -> Vec<u16> {
        let prev = st.current;
        let mut out = Vec::new();
        if st.threads[prev].status == Status::Runnable {
            out.push(prev as u16);
        }
        for (tid, t) in st.threads.iter().enumerate() {
            if tid != prev && t.status == Status::Runnable {
                out.push(tid as u16);
            }
        }
        out
    }

    /// Pick the next thread to run and hand it the baton. Called with the
    /// state locked, by whichever thread is giving up the baton. Returns
    /// the chosen tid; the caller updates `st.current` and notifies.
    ///
    /// Only *branching* points (more than one enabled thread, preemption
    /// budget permitting) consume a decision and are recorded in the trace;
    /// forced moves keep traces small and the DFS frontier exact.
    pub(crate) fn choose_next(&self, st: &mut RtState) -> usize {
        loop {
            let mut enabled = Self::enabled_set(st);
            if enabled.is_empty() {
                // Wake sleepers by advancing virtual time to the earliest
                // deadline; if none, the system is deadlocked.
                let min_wake = st
                    .threads
                    .iter()
                    .filter_map(|t| match t.status {
                        Status::Sleeping(at) => Some(at),
                        _ => None,
                    })
                    .min();
                match min_wake {
                    Some(at) => {
                        st.clock_us = st.clock_us.max(at);
                        for t in st.threads.iter_mut() {
                            if let Status::Sleeping(w) = t.status {
                                if w <= st.clock_us {
                                    t.status = Status::Runnable;
                                }
                            }
                        }
                        continue;
                    }
                    None => {
                        if st.threads.iter().all(|t| t.status == Status::Finished) {
                            // Nothing left to schedule; callers handle this
                            // only from thread-exit, where it is legal.
                            return st.current;
                        }
                        let blocked: Vec<String> = st
                            .threads
                            .iter()
                            .enumerate()
                            .filter(|(_, t)| t.status != Status::Finished)
                            .map(|(i, t)| format!("t{} {:?}", i, t.status))
                            .collect();
                        self.record_violation(
                            st,
                            ViolationKind::Deadlock,
                            format!("deadlock: no runnable thread ({})", blocked.join(", ")),
                        );
                        return st.current;
                    }
                }
            }

            let prev = st.current;
            let prev_enabled = enabled.first() == Some(&(prev as u16));
            // Preemption budget exhausted: keep running the current thread.
            if prev_enabled
                && enabled.len() > 1
                && self
                    .max_preemptions
                    .is_some_and(|max| st.preemptions >= max)
            {
                enabled.truncate(1);
            }

            if enabled.len() == 1 {
                return enabled[0] as usize;
            }

            let chosen_idx = match &mut st.decider {
                Decider::Dfs { prefix, pos } => {
                    let idx = prefix.get(*pos).copied().unwrap_or(0);
                    *pos += 1;
                    idx.min(enabled.len() - 1)
                }
                Decider::Random(rng) => (rng.next_u64() % enabled.len() as u64) as usize,
                Decider::Replay { choices, pos } => {
                    let want = choices.get(*pos).copied();
                    *pos += 1;
                    match want.and_then(|w| enabled.iter().position(|&e| e == w)) {
                        Some(idx) => idx,
                        None => {
                            self.record_violation(
                                st,
                                ViolationKind::ReplayDivergence,
                                format!(
                                    "replay divergence at decision {}: wanted {:?}, enabled {:?}",
                                    st.trace.len(),
                                    want,
                                    enabled
                                ),
                            );
                            return st.current;
                        }
                    }
                }
            };
            let chosen = enabled[chosen_idx] as usize;
            if prev_enabled && chosen != prev {
                st.preemptions += 1;
            }
            st.trace.push(Decision {
                enabled,
                chosen_idx,
            });
            return chosen;
        }
    }

    /// Transfer the baton to `next` and, unless it is `me`, park until the
    /// baton comes back (or the execution aborts, in which case unwind).
    pub(crate) fn hand_off(&self, mut st: StdMutexGuard<'_, RtState>, me: usize, next: usize) {
        if next != me {
            st.current = next;
            self.cv.notify_all();
            while st.current != me && !st.aborting {
                st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
            }
        }
        if st.aborting {
            drop(st);
            panic_any(SimAbort);
        }
    }

    /// The decision point entered by every shim operation. Advances the
    /// thread's clock component and virtual time, then possibly reschedules.
    pub(crate) fn yield_point(&self, me: usize) {
        if std::thread::panicking() {
            // Shim ops that run during unwind (Drop impls) must not
            // reschedule: a SimAbort here would double-panic and abort.
            return;
        }
        let mut st = self.lock_state();
        debug_assert_eq!(st.current, me, "yield from a thread without the baton");
        st.steps += 1;
        st.clock_us += 1;
        st.threads[me].vc[me] += 1;
        if st.steps > self.max_steps {
            self.record_violation(
                &mut st,
                ViolationKind::Panic,
                format!(
                    "execution exceeded {} steps (runaway scenario?)",
                    self.max_steps
                ),
            );
            drop(st);
            panic_any(SimAbort);
        }
        let next = self.choose_next(&mut st);
        self.hand_off(st, me, next);
    }

    /// Block the calling thread with the given status and schedule someone
    /// else; returns when the baton is handed back.
    pub(crate) fn block_current(&self, me: usize, status: Status) {
        let mut st = self.lock_state();
        st.threads[me].status = status;
        let next = self.choose_next(&mut st);
        self.hand_off(st, me, next);
    }

    /// Virtual-time sleep: no wall-clock waiting, the scheduler advances
    /// the clock when nothing else is runnable.
    pub(crate) fn sleep_us(&self, me: usize, us: u64) {
        let wake = {
            let st = self.lock_state();
            st.clock_us.saturating_add(us.max(1))
        };
        self.block_current(me, Status::Sleeping(wake));
    }

    pub(crate) fn now_us(&self) -> u64 {
        self.lock_state().clock_us
    }

    /// Append a ground-truth annotation to the serialized op log. No
    /// rescheduling happens here, so a shim op followed immediately by its
    /// annotation is atomic with respect to the explored interleavings.
    pub(crate) fn annotate(&self, me: usize, data: [u64; 4]) {
        let mut st = self.lock_state();
        st.op_log.push((me, data));
    }
}

/// State attached to every shim cell (atomic or mutex): birth clock and
/// the release clock of the last release-store / unlock, plus for mutexes
/// the holder. Guarded by a plain mutex — only the baton holder touches it.
#[derive(Debug, Default)]
pub(crate) struct CellMeta {
    inner: StdMutex<CellState>,
}

#[derive(Debug, Default)]
struct CellState {
    exec: u64,
    birth: Option<Vc>,
    rel: Option<Vc>,
    held_by: Option<usize>,
}

impl CellMeta {
    /// Record the creating thread's clock, if a simulation is active.
    pub fn on_create(ctx: &SimCtx) -> Self {
        let meta = CellMeta::default();
        {
            let mut cs = lock_recover(&meta.inner);
            let st = ctx.rt.lock_state();
            cs.exec = ctx.rt.exec_id;
            cs.birth = Some(st.threads[ctx.tid].vc.clone());
        }
        meta
    }

    fn with_state<R>(&self, ctx: &SimCtx, f: impl FnOnce(&mut CellState) -> R) -> R {
        let mut cs = lock_recover(&self.inner);
        if cs.exec != ctx.rt.exec_id {
            // Cell created outside this execution (or before any sim):
            // treat as pre-existing with no constraints.
            *cs = CellState {
                exec: ctx.rt.exec_id,
                ..CellState::default()
            };
        }
        f(&mut cs)
    }

    /// Check the initialization happens-before edge for an in-sim access.
    pub fn check_birth(&self, ctx: &SimCtx, what: &str) {
        let bad = self.with_state(ctx, |cs| {
            let st = ctx.rt.lock_state();
            match &cs.birth {
                Some(birth) => !vc_leq(birth, &st.threads[ctx.tid].vc),
                None => false,
            }
        });
        if bad {
            let mut st = ctx.rt.lock_state();
            ctx.rt.record_violation(
                &mut st,
                ViolationKind::InitRace,
                format!(
                    "t{} accessed a {} with no happens-before edge to its \
                     initialization (pointer published without release/acquire?)",
                    ctx.tid, what
                ),
            );
            drop(st);
            panic_any(SimAbort);
        }
    }

    /// Acquire-side of a load/RMW/lock: join the cell's release clock.
    pub fn acquire_from(&self, ctx: &SimCtx, acquire: bool) {
        if !acquire {
            return;
        }
        self.with_state(ctx, |cs| {
            if let Some(rel) = &cs.rel {
                let mut st = ctx.rt.lock_state();
                let rel = rel.clone();
                vc_join(&mut st.threads[ctx.tid].vc, &rel);
            }
        });
    }

    /// Release-side of a store/RMW/unlock. For RMWs (`continue_seq`) the
    /// previous release clock stays visible — the release sequence
    /// continues through the RMW; plain stores replace it.
    pub fn release_to(&self, ctx: &SimCtx, release: bool, continue_seq: bool) {
        self.with_state(ctx, |cs| {
            let st = ctx.rt.lock_state();
            let my = st.threads[ctx.tid].vc.clone();
            drop(st);
            match (release, continue_seq) {
                (true, true) => match &mut cs.rel {
                    Some(rel) => vc_join(rel, &my),
                    None => cs.rel = Some(my),
                },
                (true, false) => cs.rel = Some(my),
                (false, true) => {} // relaxed RMW: sequence continues as-is
                (false, false) => cs.rel = None,
            }
        });
    }

    /// Simulated mutex acquire attempt. Returns true when the lock was
    /// free (now held by `ctx.tid`, clocks joined).
    pub fn try_lock_sim(&self, ctx: &SimCtx) -> bool {
        self.with_state(ctx, |cs| {
            if cs.held_by.is_some() {
                return false;
            }
            cs.held_by = Some(ctx.tid);
            if let Some(rel) = &cs.rel {
                let mut st = ctx.rt.lock_state();
                let rel = rel.clone();
                vc_join(&mut st.threads[ctx.tid].vc, &rel);
            }
            true
        })
    }

    /// Simulated mutex release: publish the holder's clock and wake
    /// threads blocked on this mutex (identified by its address `key`).
    pub fn unlock_sim(&self, ctx: &SimCtx, key: usize) {
        self.with_state(ctx, |cs| {
            let mut st = ctx.rt.lock_state();
            let my = st.threads[ctx.tid].vc.clone();
            match &mut cs.rel {
                Some(rel) => vc_join(rel, &my),
                None => cs.rel = Some(my),
            }
            cs.held_by = None;
            for t in st.threads.iter_mut() {
                if t.status == Status::BlockedMutex(key) {
                    t.status = Status::Runnable;
                }
            }
        });
    }
}
