//! Drop-in sync primitives for the concurrency core.
//!
//! Mirrors the std/parking_lot API surface the sigmem and profiler crates
//! use (`AtomicU32/U64/Usize/Bool`, `AtomicPtr`, `Ordering`, `Mutex`).
//! Outside a simulation every operation delegates straight to the real
//! primitive with the caller's ordering — one relaxed static load of
//! overhead — so the `sched` feature is safe to leave enabled for normal
//! builds and tests. Inside a simulation every operation is a scheduler
//! decision point: it yields the baton, performs the access under
//! sequentially-consistent value semantics, tracks vector clocks for the
//! acquire/release edges the *requested* ordering implies, and flags
//! accesses to cells whose initialization the accessor has no
//! happens-before edge to (the relaxed-publish bug class).

pub use std::sync::atomic::Ordering;

use crate::rt::{current_ctx, CellMeta, SimCtx, Status};

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn pre_op(ctx: &SimCtx) {
    ctx.rt.yield_point(ctx.tid);
}

macro_rules! shim_atomic {
    ($name:ident, $std:ty, $prim:ty) => {
        /// Shim atomic: std semantics outside a simulation, a scheduler
        /// decision point plus clock tracking inside one.
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $std,
            meta: CellMeta,
        }

        impl $name {
            /// Create the cell; inside a simulation the creator's clock is
            /// recorded as the cell's birth.
            pub fn new(v: $prim) -> Self {
                let meta = match current_ctx() {
                    Some(ctx) => CellMeta::on_create(&ctx),
                    None => CellMeta::default(),
                };
                Self {
                    inner: <$std>::new(v),
                    meta,
                }
            }

            /// Atomic load.
            #[inline]
            pub fn load(&self, order: Ordering) -> $prim {
                match current_ctx() {
                    None => self.inner.load(order),
                    Some(ctx) => {
                        pre_op(&ctx);
                        self.meta.check_birth(&ctx, "shim atomic");
                        self.meta.acquire_from(&ctx, is_acquire(order));
                        self.inner.load(Ordering::SeqCst)
                    }
                }
            }

            /// Atomic store.
            #[inline]
            pub fn store(&self, v: $prim, order: Ordering) {
                match current_ctx() {
                    None => self.inner.store(v, order),
                    Some(ctx) => {
                        pre_op(&ctx);
                        self.meta.check_birth(&ctx, "shim atomic");
                        self.meta.release_to(&ctx, is_release(order), false);
                        self.inner.store(v, Ordering::SeqCst)
                    }
                }
            }

            /// Atomic swap.
            #[inline]
            pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                match current_ctx() {
                    None => self.inner.swap(v, order),
                    Some(ctx) => {
                        pre_op(&ctx);
                        self.meta.check_birth(&ctx, "shim atomic");
                        self.meta.acquire_from(&ctx, is_acquire(order));
                        self.meta.release_to(&ctx, is_release(order), true);
                        self.inner.swap(v, Ordering::SeqCst)
                    }
                }
            }

            /// Atomic fetch-or.
            #[inline]
            pub fn fetch_or(&self, v: $prim, order: Ordering) -> $prim {
                match current_ctx() {
                    None => self.inner.fetch_or(v, order),
                    Some(ctx) => {
                        pre_op(&ctx);
                        self.meta.check_birth(&ctx, "shim atomic");
                        self.meta.acquire_from(&ctx, is_acquire(order));
                        self.meta.release_to(&ctx, is_release(order), true);
                        self.inner.fetch_or(v, Ordering::SeqCst)
                    }
                }
            }

            /// Atomic compare-exchange.
            #[inline]
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                match current_ctx() {
                    None => self.inner.compare_exchange(current, new, success, failure),
                    Some(ctx) => {
                        pre_op(&ctx);
                        self.meta.check_birth(&ctx, "shim atomic");
                        let r = self.inner.compare_exchange(
                            current,
                            new,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        );
                        match r {
                            Ok(_) => {
                                self.meta.acquire_from(&ctx, is_acquire(success));
                                self.meta.release_to(&ctx, is_release(success), true);
                            }
                            Err(_) => self.meta.acquire_from(&ctx, is_acquire(failure)),
                        }
                        r
                    }
                }
            }

            /// Non-atomic access through `&mut` (no simulation involvement).
            #[inline]
            pub fn get_mut(&mut self) -> &mut $prim {
                self.inner.get_mut()
            }

            /// Consume and return the value.
            #[inline]
            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }
        }
    };
}

macro_rules! shim_fetch_add {
    ($name:ident, $prim:ty) => {
        impl $name {
            /// Atomic fetch-add.
            #[inline]
            pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                match current_ctx() {
                    None => self.inner.fetch_add(v, order),
                    Some(ctx) => {
                        pre_op(&ctx);
                        self.meta.check_birth(&ctx, "shim atomic");
                        self.meta.acquire_from(&ctx, is_acquire(order));
                        self.meta.release_to(&ctx, is_release(order), true);
                        self.inner.fetch_add(v, Ordering::SeqCst)
                    }
                }
            }
        }
    };
}

shim_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
shim_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
shim_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
shim_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
shim_fetch_add!(AtomicU32, u32);
shim_fetch_add!(AtomicU64, u64);
shim_fetch_add!(AtomicUsize, usize);

/// Shim atomic pointer: std semantics outside a simulation, a decision
/// point plus clock tracking inside one. The acquire/release clock edges
/// are exactly what makes publish-via-CAS sound to the model checker.
#[derive(Debug)]
pub struct AtomicPtr<T> {
    inner: std::sync::atomic::AtomicPtr<T>,
    meta: CellMeta,
}

impl<T> Default for AtomicPtr<T> {
    fn default() -> Self {
        Self::new(std::ptr::null_mut())
    }
}

impl<T> AtomicPtr<T> {
    /// Create the cell; inside a simulation the creator's clock is
    /// recorded as the cell's birth.
    pub fn new(p: *mut T) -> Self {
        let meta = match current_ctx() {
            Some(ctx) => CellMeta::on_create(&ctx),
            None => CellMeta::default(),
        };
        Self {
            inner: std::sync::atomic::AtomicPtr::new(p),
            meta,
        }
    }

    /// Atomic load.
    #[inline]
    pub fn load(&self, order: Ordering) -> *mut T {
        match current_ctx() {
            None => self.inner.load(order),
            Some(ctx) => {
                pre_op(&ctx);
                self.meta.check_birth(&ctx, "shim atomic pointer");
                self.meta.acquire_from(&ctx, is_acquire(order));
                self.inner.load(Ordering::SeqCst)
            }
        }
    }

    /// Atomic store.
    #[inline]
    pub fn store(&self, p: *mut T, order: Ordering) {
        match current_ctx() {
            None => self.inner.store(p, order),
            Some(ctx) => {
                pre_op(&ctx);
                self.meta.check_birth(&ctx, "shim atomic pointer");
                self.meta.release_to(&ctx, is_release(order), false);
                self.inner.store(p, Ordering::SeqCst)
            }
        }
    }

    /// Atomic swap.
    #[inline]
    pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
        match current_ctx() {
            None => self.inner.swap(p, order),
            Some(ctx) => {
                pre_op(&ctx);
                self.meta.check_birth(&ctx, "shim atomic pointer");
                self.meta.acquire_from(&ctx, is_acquire(order));
                self.meta.release_to(&ctx, is_release(order), true);
                self.inner.swap(p, Ordering::SeqCst)
            }
        }
    }

    /// Atomic compare-exchange.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        match current_ctx() {
            None => self.inner.compare_exchange(current, new, success, failure),
            Some(ctx) => {
                pre_op(&ctx);
                self.meta.check_birth(&ctx, "shim atomic pointer");
                let r =
                    self.inner
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst);
                match r {
                    Ok(_) => {
                        self.meta.acquire_from(&ctx, is_acquire(success));
                        self.meta.release_to(&ctx, is_release(success), true);
                    }
                    Err(_) => self.meta.acquire_from(&ctx, is_acquire(failure)),
                }
                r
            }
        }
    }

    /// Non-atomic access through `&mut` (no simulation involvement).
    #[inline]
    pub fn get_mut(&mut self) -> &mut *mut T {
        self.inner.get_mut()
    }
}

/// Shim mutex with the parking_lot-style API the profiler uses: `lock`
/// returns a guard directly, `try_lock` an `Option`. Outside a simulation
/// it IS the workspace `parking_lot::Mutex`. Inside one, lock ownership is
/// simulated at the scheduler level (with blocking, waking and clock
/// hand-off) and the real inner lock is only ever taken uncontended.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    meta: CellMeta,
}

/// Guard for [`Mutex`]. Dropping it is a decision point inside a
/// simulation (so other threads can observe the lock held), then releases.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    sim: Option<SimCtx>,
}

impl<T> Mutex<T> {
    /// Create the mutex; inside a simulation the creator's clock is
    /// recorded as the birth.
    pub fn new(value: T) -> Self {
        let meta = match current_ctx() {
            Some(ctx) => CellMeta::on_create(&ctx),
            None => CellMeta::default(),
        };
        Self {
            inner: std::sync::Mutex::new(value),
            meta,
        }
    }

    fn key(&self) -> usize {
        self as *const Self as usize
    }

    fn inner_guard(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire, blocking (in virtual time when simulated).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match current_ctx() {
            None => MutexGuard {
                lock: self,
                inner: Some(self.inner_guard()),
                sim: None,
            },
            Some(ctx) => {
                loop {
                    ctx.rt.yield_point(ctx.tid);
                    self.meta.check_birth(&ctx, "shim mutex");
                    if self.meta.try_lock_sim(&ctx) {
                        break;
                    }
                    ctx.rt
                        .block_current(ctx.tid, Status::BlockedMutex(self.key()));
                }
                // Simulated ownership is exclusive, so the real lock is free.
                MutexGuard {
                    lock: self,
                    inner: Some(self.inner_guard()),
                    sim: Some(ctx),
                }
            }
        }
    }

    /// Acquire without blocking; `None` when held.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match current_ctx() {
            None => match self.inner.try_lock() {
                Ok(g) => Some(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    sim: None,
                }),
                Err(_) => None,
            },
            Some(ctx) => {
                ctx.rt.yield_point(ctx.tid);
                self.meta.check_birth(&ctx, "shim mutex");
                if self.meta.try_lock_sim(&ctx) {
                    Some(MutexGuard {
                        lock: self,
                        inner: Some(self.inner_guard()),
                        sim: Some(ctx),
                    })
                } else {
                    None
                }
            }
        }
    }

    /// Exclusive access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }

    /// Consume the mutex and return the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first so the next simulated owner finds it
        // free, then release the simulated ownership (publishing clocks and
        // waking blocked threads). The pre-release yield is what lets other
        // threads observe the lock *held* — without it no simulated thread
        // could ever witness contention.
        drop(self.inner.take());
        if let Some(ctx) = self.sim.take() {
            if !std::thread::panicking() {
                ctx.rt.yield_point(ctx.tid);
            }
            self.lock.meta.unlock_sim(&ctx, self.lock.key());
        }
    }
}
