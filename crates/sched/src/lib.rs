//! `lc-sched` — deterministic concurrency model checking for loopcomm.
//!
//! A loom-style scheduler (cf. CDSChecker and the dynamic-analysis lineage
//! in PAPERS.md): scenarios run on real OS threads that are serialized by a
//! baton so only one simulated thread executes at a time, and control moves
//! between threads only at *decision points* — the entry of every operation
//! on the shim primitives in [`sync`]. An execution is therefore fully
//! described by its sequence of scheduling decisions, which the
//! [`explore::Explorer`] enumerates exhaustively (DFS with an optional
//! preemption bound) or samples with a seeded RNG, replays from a recorded
//! trace, and minimizes on failure.
//!
//! Value semantics are sequentially consistent (every load sees the latest
//! store), but the scheduler additionally tracks per-thread vector clocks
//! through the acquire/release edges *requested* by each operation and
//! flags any access to a cell whose initialization the accessing thread
//! has no happens-before edge to. That is precisely the observable symptom
//! of publishing a pointer with `Relaxed` where release/acquire is
//! required, so ordering bugs are caught even though plain (non-atomic)
//! memory is not modeled. See DESIGN.md §11 for the full model and its
//! soundness caveats.

#![warn(missing_docs)]

pub mod explore;
mod rt;
pub mod sync;

pub use explore::{ExploreReport, Explorer, ScheduleTrace, SimConfig, ViolationReport};
pub use rt::{Violation, ViolationKind};

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use rt::{current_ctx, vc_join, Runtime, SimAbort, Status, ThreadSlot, CTX};

/// True when the calling OS thread is executing inside a simulation.
///
/// The guard the instrumented crates use to decide between real and
/// simulated behavior; compiled in even with the `sched` feature enabled
/// everywhere, it costs one relaxed static load when no simulation exists
/// anywhere in the process.
#[inline]
pub fn in_sim() -> bool {
    current_ctx().is_some()
}

/// True when the named fault mutant is active in the current simulation.
///
/// Mutants are deliberately-broken variants of production code paths,
/// compiled behind `feature = "sched"` and selected per-simulation via
/// [`SimConfig::mutants`], so parallel tests never interfere. Outside a
/// simulation this is always false: production behavior is untouched.
#[inline]
pub fn mutant_active(name: &str) -> bool {
    match current_ctx() {
        Some(ctx) => ctx.rt.mutants.iter().any(|m| m == name),
        None => false,
    }
}

/// Append a ground-truth record to the execution's serialized op log.
///
/// Annotations do not reschedule, so "shim op, then annotate" is atomic
/// with respect to the explored interleavings — the log order equals the
/// execution order of the annotated operations. Scenarios read it back
/// with [`op_log`] to drive the perfect oracle. No-op outside a sim.
#[inline]
pub fn annotate(data: [u64; 4]) {
    if let Some(ctx) = current_ctx() {
        ctx.rt.annotate(ctx.tid, data);
    }
}

/// Snapshot of the current execution's op log as `(tid, data)` records.
pub fn op_log() -> Vec<(usize, [u64; 4])> {
    match current_ctx() {
        Some(ctx) => ctx.rt.lock_state().op_log.clone(),
        None => Vec::new(),
    }
}

/// Virtual-time now, in microseconds, when simulated.
pub fn virtual_now_us() -> Option<u64> {
    current_ctx().map(|ctx| ctx.rt.now_us())
}

/// Virtual-time sleep when simulated; returns false (and does nothing)
/// otherwise. The scheduler advances the clock past the deadline whenever
/// no thread is runnable, so sleeps cost no wall-clock time.
pub fn virtual_sleep_us(us: u64) -> bool {
    match current_ctx() {
        Some(ctx) => {
            ctx.rt.sleep_us(ctx.tid, us);
            true
        }
        None => false,
    }
}

/// Handle to a simulated thread, returned by [`spawn`].
pub struct JoinHandle {
    tid: usize,
    rt: Arc<Runtime>,
}

impl JoinHandle {
    /// Wait (in simulated time) for the thread to finish. Joining also
    /// merges the child's vector clock into the caller's, mirroring the
    /// happens-before edge a real `join` provides.
    pub fn join(self) {
        let ctx = current_ctx().expect("lc_sched::JoinHandle::join outside a simulation");
        assert!(Arc::ptr_eq(&ctx.rt, &self.rt), "join across simulations");
        loop {
            self.rt.yield_point(ctx.tid);
            let mut st = self.rt.lock_state();
            if st.threads[self.tid].status == Status::Finished {
                let child_vc = st.threads[self.tid].vc.clone();
                vc_join(&mut st.threads[ctx.tid].vc, &child_vc);
                return;
            }
            st.threads[ctx.tid].status = Status::BlockedJoin(self.tid);
            let next = self.rt.choose_next(&mut st);
            self.rt.hand_off(st, ctx.tid, next);
        }
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Spawn a simulated thread. Must be called from inside a simulation; the
/// child starts runnable (candidate at the very next decision point) with
/// the spawner's clock — the happens-before edge a real `spawn` provides.
pub fn spawn<F>(f: F) -> JoinHandle
where
    F: FnOnce() + Send + 'static,
{
    let ctx = current_ctx().expect("lc_sched::spawn outside a simulation");
    let child = {
        let mut st = ctx.rt.lock_state();
        let child = st.threads.len();
        let mut vc = st.threads[ctx.tid].vc.clone();
        if vc.len() <= child {
            vc.resize(child + 1, 0);
        }
        vc[child] += 1;
        st.threads.push(ThreadSlot {
            status: Status::Runnable,
            vc,
        });
        child
    };
    let rt = Arc::clone(&ctx.rt);
    let os = std::thread::Builder::new()
        .name(format!("lc-sim-{child}"))
        .spawn(move || {
            CTX.with(|c| {
                *c.borrow_mut() = Some(rt::SimCtx {
                    rt: Arc::clone(&rt),
                    tid: child,
                })
            });
            // Wait for the first baton grant before touching user code.
            {
                let mut st = rt.lock_state();
                while st.current != child && !st.aborting {
                    st = rt.cv.wait(st).unwrap_or_else(|p| p.into_inner());
                }
                if st.aborting {
                    st.threads[child].status = Status::Finished;
                    rt.cv.notify_all();
                    return;
                }
            }
            let r = catch_unwind(AssertUnwindSafe(f));
            finish_thread(&rt, child, r);
        })
        .expect("failed to spawn simulated thread");
    ctx.rt
        .os_handles
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .push(os);
    // Decision point: the child is now a scheduling candidate.
    ctx.rt.yield_point(ctx.tid);
    JoinHandle {
        tid: child,
        rt: Arc::clone(&ctx.rt),
    }
}

fn finish_thread(rt: &Arc<Runtime>, me: usize, r: Result<(), Box<dyn std::any::Any + Send>>) {
    let mut st = rt.lock_state();
    if let Err(p) = r {
        if p.downcast_ref::<SimAbort>().is_none() {
            let msg = panic_message(p.as_ref());
            rt.record_violation(
                &mut st,
                ViolationKind::Panic,
                format!("simulated thread t{me} panicked: {msg}"),
            );
        }
    }
    st.threads[me].status = Status::Finished;
    for t in st.threads.iter_mut() {
        if t.status == Status::BlockedJoin(me) {
            t.status = Status::Runnable;
        }
    }
    if st.aborting {
        rt.cv.notify_all();
        return;
    }
    let next = rt.choose_next(&mut st);
    if next != me {
        st.current = next;
        rt.cv.notify_all();
    }
}

#[cfg(test)]
mod tests;
