//! Unit tests for the scheduler itself: determinism, mutual exclusion,
//! deadlock detection, the init-race (relaxed publish) detector, replay
//! and minimization. Scenario-level model checks for the signature memory
//! live in the workspace root's `tests/sched_model_check.rs`.

use std::sync::Arc;

use crate::sync::{AtomicPtr, AtomicU64, Mutex, Ordering};
use crate::{Explorer, ScheduleTrace, SimConfig};

fn cfg(max_preemptions: Option<usize>) -> SimConfig {
    SimConfig {
        max_preemptions,
        ..SimConfig::default()
    }
}

#[test]
fn shim_atomics_work_outside_any_simulation() {
    let a = AtomicU64::new(1);
    assert_eq!(a.fetch_add(2, Ordering::Relaxed), 1);
    assert_eq!(a.load(Ordering::Acquire), 3);
    a.store(9, Ordering::Release);
    assert_eq!(a.swap(4, Ordering::AcqRel), 9);
    assert_eq!(
        a.compare_exchange(4, 5, Ordering::AcqRel, Ordering::Acquire),
        Ok(4)
    );
    let m = Mutex::new(7u32);
    *m.lock() += 1;
    assert_eq!(*m.try_lock().expect("uncontended"), 8);
}

#[test]
fn two_increments_explore_multiple_schedules_and_never_lose_updates() {
    let explorer = Explorer::new(cfg(None));
    let report = explorer.explore_exhaustive(|| {
        let c = Arc::new(AtomicU64::new(0));
        let mut hs = Vec::new();
        for _ in 0..2 {
            let c = Arc::clone(&c);
            hs.push(crate::spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        for h in hs {
            h.join();
        }
        assert_eq!(c.load(Ordering::Relaxed), 4);
    });
    assert!(report.ok(), "violation: {:?}", report.violation);
    // 2 threads x 2 ops: at minimum the C(4,2)=6 op interleavings exist.
    assert!(
        report.schedules >= 6,
        "expected >= 6 schedules, got {}",
        report.schedules
    );
    assert!(!report.truncated);
}

#[test]
fn exploration_is_deterministic() {
    let run = || {
        Explorer::new(cfg(Some(2))).explore_exhaustive(|| {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&c);
            let h = crate::spawn(move || {
                c2.fetch_add(5, Ordering::Relaxed);
            });
            c.fetch_add(3, Ordering::Relaxed);
            h.join();
            assert_eq!(c.load(Ordering::Relaxed), 8);
        })
    };
    let (a, b) = (run(), run());
    assert_eq!(a.schedules, b.schedules);
    assert_eq!(a.max_steps_seen, b.max_steps_seen);
    assert_eq!(a.max_decisions, b.max_decisions);
}

#[test]
fn mutex_provides_mutual_exclusion_in_every_schedule() {
    let explorer = Explorer::new(cfg(None));
    let report = explorer.explore_exhaustive(|| {
        let m = Arc::new(Mutex::new(0u64));
        let mut hs = Vec::new();
        for _ in 0..2 {
            let m = Arc::clone(&m);
            hs.push(crate::spawn(move || {
                // Non-atomic read-modify-write under the lock: any failure
                // of mutual exclusion loses an update.
                let mut g = m.lock();
                let v = *g;
                *g = v + 1;
            }));
        }
        for h in hs {
            h.join();
        }
        assert_eq!(*m.lock(), 2);
    });
    assert!(report.ok(), "violation: {:?}", report.violation);
    assert!(report.schedules > 1);
}

#[test]
fn abba_lock_order_deadlock_is_detected_and_replayable() {
    let explorer = Explorer::new(cfg(None));
    let scenario = || {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        let h1 = crate::spawn(move || {
            let _ga = a1.lock();
            let _gb = b1.lock();
        });
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let h2 = crate::spawn(move || {
            let _gb = b2.lock();
            let _ga = a2.lock();
        });
        h1.join();
        h2.join();
    };
    let report = explorer.explore_exhaustive(scenario);
    let v = report.violation.expect("ABBA deadlock must be found");
    assert_eq!(v.kind, crate::ViolationKind::Deadlock, "{}", v.message);
    // The recorded trace reproduces the deadlock on replay.
    let replay = explorer.replay(&v.trace, scenario);
    let rv = replay.violation.expect("replay reproduces");
    assert_eq!(rv.kind, crate::ViolationKind::Deadlock);
    // And so does the minimized trace, when one was produced.
    if let Some(min) = &v.minimized {
        let replay = explorer.replay(min, scenario);
        assert!(replay.violation.is_some(), "minimized trace reproduces");
        assert!(min.choices.len() <= v.trace.choices.len());
    }
}

/// Publish an atomic through a pointer. With a release store + acquire
/// load every schedule is clean; with relaxed orderings the consumer can
/// reach the cell without a happens-before edge to its initialization,
/// which the vector-clock birth check reports.
fn publish_scenario(store_order: Ordering, load_order: Ordering) {
    let slot: Arc<AtomicPtr<AtomicU64>> = Arc::new(AtomicPtr::new(std::ptr::null_mut()));
    let producer = {
        let slot = Arc::clone(&slot);
        crate::spawn(move || {
            let cell = Box::into_raw(Box::new(AtomicU64::new(41)));
            slot.store(cell, store_order);
        })
    };
    let consumer = {
        let slot = Arc::clone(&slot);
        crate::spawn(move || {
            let p = slot.load(load_order);
            if !p.is_null() {
                // Safety: points at the producer's leaked box, freed below.
                unsafe { &*p }.fetch_add(1, Ordering::Relaxed);
            }
        })
    };
    producer.join();
    consumer.join();
    let p = slot.load(Ordering::Acquire);
    assert!(!p.is_null());
    // Safety: both threads joined; sole owner now.
    let cell = unsafe { Box::from_raw(p) };
    let v = cell.load(Ordering::Relaxed);
    assert!(v == 41 || v == 42, "unexpected value {v}");
}

#[test]
fn release_acquire_publish_is_clean_in_every_schedule() {
    let report = Explorer::new(cfg(None))
        .explore_exhaustive(|| publish_scenario(Ordering::Release, Ordering::Acquire));
    assert!(report.ok(), "violation: {:?}", report.violation);
    assert!(report.schedules > 1);
}

#[test]
fn relaxed_publish_is_caught_as_init_race() {
    let explorer = Explorer::new(cfg(None));
    let report =
        explorer.explore_exhaustive(|| publish_scenario(Ordering::Relaxed, Ordering::Relaxed));
    let v = report.violation.expect("relaxed publish must be caught");
    assert_eq!(v.kind, crate::ViolationKind::InitRace, "{}", v.message);
    assert!(
        v.message.contains("happens-before"),
        "diagnostic names the missing edge: {}",
        v.message
    );
}

#[test]
fn seeded_random_exploration_is_deterministic_per_seed() {
    let run = |seed: u64| {
        Explorer::new(cfg(None)).explore_random(seed, 20, || {
            publish_scenario(Ordering::Release, Ordering::Acquire)
        })
    };
    let (a, b) = (run(7), run(7));
    assert_eq!(a.schedules, b.schedules);
    assert_eq!(a.max_steps_seen, b.max_steps_seen);
    assert_eq!(a.ok(), b.ok());
}

#[test]
fn virtual_sleep_lets_watchdog_style_timeouts_run_without_wall_clock() {
    // A sleeper waiting "10 seconds" of virtual time finishes instantly:
    // the clock jumps when nothing else is runnable.
    let report = Explorer::new(cfg(Some(1))).explore_exhaustive(|| {
        let before = crate::virtual_now_us().expect("in sim");
        let h = crate::spawn(|| {
            assert!(crate::virtual_sleep_us(10_000_000));
        });
        h.join();
        let after = crate::virtual_now_us().expect("in sim");
        assert!(
            after - before >= 10_000_000,
            "clock advanced only {} us",
            after - before
        );
    });
    assert!(report.ok(), "violation: {:?}", report.violation);
}

#[test]
fn schedule_trace_round_trips_through_text() {
    let t = ScheduleTrace {
        choices: vec![1, 0, 2, 1],
        preemptions: 2,
        steps: 37,
    };
    assert_eq!(ScheduleTrace::parse_line(&t.to_line()), Some(t));
    let empty = ScheduleTrace {
        choices: vec![],
        preemptions: 0,
        steps: 4,
    };
    assert_eq!(ScheduleTrace::parse_line(&empty.to_line()), Some(empty));
    assert_eq!(ScheduleTrace::parse_line("garbage"), None);
}

#[test]
fn annotations_form_a_serialized_op_log() {
    let report = Explorer::new(cfg(None)).explore_exhaustive(|| {
        let c = Arc::new(AtomicU64::new(0));
        let mut hs = Vec::new();
        for t in 0..2u64 {
            let c = Arc::clone(&c);
            hs.push(crate::spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
                crate::annotate([1, t, 0, 0]);
            }));
        }
        for h in hs {
            h.join();
        }
        let log = crate::op_log();
        assert_eq!(log.len(), 2, "both annotations recorded");
        let tids: Vec<u64> = log.iter().map(|(_, d)| d[1]).collect();
        assert!(tids.contains(&0) && tids.contains(&1));
    });
    assert!(report.ok(), "violation: {:?}", report.violation);
}

#[test]
fn preemption_bound_zero_still_covers_blocking_switches() {
    // With no preemptions allowed a thread is never switched away from
    // while runnable, but forced switches (block/finish) still branch
    // among successors — so the space stays correct, just much smaller
    // than the unbounded one.
    let scenario = || {
        let c = Arc::new(AtomicU64::new(0));
        let mut hs = Vec::new();
        for _ in 0..2 {
            let c = Arc::clone(&c);
            hs.push(crate::spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        for h in hs {
            h.join();
        }
        assert_eq!(c.load(Ordering::Relaxed), 2);
    };
    let bounded = Explorer::new(cfg(Some(0))).explore_exhaustive(scenario);
    assert!(bounded.ok(), "violation: {:?}", bounded.violation);
    let unbounded = Explorer::new(cfg(None)).explore_exhaustive(scenario);
    assert!(unbounded.ok(), "violation: {:?}", unbounded.violation);
    assert!(
        bounded.schedules < unbounded.schedules,
        "bound 0 ({}) must shrink the space vs unbounded ({})",
        bounded.schedules,
        unbounded.schedules
    );
}

#[test]
fn mutant_flag_is_scoped_to_the_simulation() {
    assert!(!crate::mutant_active("anything"));
    let report = Explorer::new(SimConfig {
        mutants: vec!["demo-mutant".into()],
        ..SimConfig::default()
    })
    .explore_exhaustive(|| {
        assert!(crate::mutant_active("demo-mutant"));
        assert!(!crate::mutant_active("other"));
    });
    assert!(report.ok(), "violation: {:?}", report.violation);
    assert!(!crate::mutant_active("demo-mutant"));
}
