//! Two-level read signature (Fig. 3a of the paper).
//!
//! A fixed first-level array of `n` slots is indexed by a MurmurHash of the
//! memory address. Each occupied slot holds a pointer to a second-level
//! Bloom filter recording the set of thread ids that have read addresses
//! mapping to that slot. Slots are allocated lazily on first insert and
//! published with a release-CAS so that a thread observing the pointer also
//! observes a fully-constructed filter.
//!
//! Memory is bounded: at most `n` filters of fixed geometry can ever exist,
//! so the footprint never depends on the profiled program's input size —
//! the property Figures 5a/5b demonstrate.

use crate::concurrent_bloom::{BloomGeometry, ConcurrentBloom};
use crate::sync::{AtomicPtr, AtomicUsize, Ordering};
use crate::traits::ReaderSet;

/// The two-level concurrent read signature.
#[derive(Debug)]
pub struct ReadSignature {
    slots: Box<[AtomicPtr<ConcurrentBloom>]>,
    geometry: BloomGeometry,
    allocated: AtomicUsize,
}

impl ReadSignature {
    /// Create a signature with `n_slots` first-level slots, second-level
    /// filters sized for `threads` readers at `fp_rate`.
    pub fn new(n_slots: usize, threads: usize, fp_rate: f64) -> Self {
        assert!(n_slots > 0, "signature needs at least one slot");
        let slots = (0..n_slots)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect();
        Self {
            slots,
            geometry: BloomGeometry::for_threads(threads, fp_rate),
            allocated: AtomicUsize::new(0),
        }
    }

    /// First-level slot index for an address (the shared routing of
    /// [`crate::slot`], so the replay partitioner can never disagree).
    #[inline]
    fn slot_index(&self, addr: u64) -> usize {
        crate::slot::slot_index(addr, self.slots.len())
    }

    /// Get the filter for `addr`, allocating (and racing to publish) it if
    /// absent. The losing allocation of a publish race is freed immediately.
    fn filter_or_insert(&self, addr: u64) -> &ConcurrentBloom {
        let slot = &self.slots[self.slot_index(addr)];
        // Fault mutant for the model checker: publish and consume the
        // filter pointer with `Relaxed` instead of release/acquire. Under
        // real hardware a consumer could then observe the pointer before
        // the filter's contents; the scheduler's vector-clock birth check
        // reports exactly that missing happens-before edge (DESIGN.md §11).
        #[cfg(feature = "sched")]
        if lc_sched::mutant_active("readsig-relaxed-publish") {
            let p = slot.load(Ordering::Relaxed);
            if !p.is_null() {
                // Safety: mutant mirrors the correct path's lifetime rules.
                return unsafe { &*p };
            }
            let fresh = Box::into_raw(Box::new(ConcurrentBloom::new(self.geometry)));
            return match slot.compare_exchange(
                std::ptr::null_mut(),
                fresh,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.allocated.fetch_add(1, Ordering::Relaxed);
                    // Safety: we just published `fresh`.
                    unsafe { &*fresh }
                }
                Err(winner) => {
                    // Safety: `fresh` was never shared; reclaim it.
                    drop(unsafe { Box::from_raw(fresh) });
                    // Safety: `winner` is the published pointer.
                    unsafe { &*winner }
                }
            };
        }
        let p = slot.load(Ordering::Acquire);
        if !p.is_null() {
            // Safety: a non-null pointer was published by a release-CAS after
            // full construction and is never freed before `self` drops.
            return unsafe { &*p };
        }
        let fresh = Box::into_raw(Box::new(ConcurrentBloom::new(self.geometry)));
        match slot.compare_exchange(
            std::ptr::null_mut(),
            fresh,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => {
                self.allocated.fetch_add(1, Ordering::Relaxed);
                // Safety: we just published `fresh`; it stays alive until drop.
                unsafe { &*fresh }
            }
            Err(winner) => {
                // Safety: `fresh` was never shared; reclaim it.
                drop(unsafe { Box::from_raw(fresh) });
                // Safety: `winner` is the published pointer (see above).
                unsafe { &*winner }
            }
        }
    }

    /// Filter for `addr` if one has been allocated.
    #[inline]
    fn filter(&self, addr: u64) -> Option<&ConcurrentBloom> {
        let p = self.slots[self.slot_index(addr)].load(Ordering::Acquire);
        // Safety: published pointers stay valid until `self` drops.
        (!p.is_null()).then(|| unsafe { &*p })
    }

    /// Number of first-level slots.
    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }

    /// Second-level filter geometry.
    pub fn geometry(&self) -> BloomGeometry {
        self.geometry
    }

    /// How many second-level filters have been allocated so far.
    pub fn allocated_filters(&self) -> usize {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Online per-slot Bloom saturation: popcount up to `max_filters`
    /// allocated filters (front-to-back over the slot array — murmur
    /// spreads occupancy uniformly, so a prefix is an unbiased sample) and
    /// summarize their fill and live false-positive estimate. Scrape-time
    /// cost only; never called on the access path.
    pub fn bloom_saturation(&self, max_filters: usize) -> crate::diagnostics::BloomSaturation {
        let mut sampled = 0usize;
        let mut fill_sum = 0.0f64;
        let mut fp_sum = 0.0f64;
        let mut max_fill = 0.0f64;
        for slot in self.slots.iter() {
            if sampled >= max_filters {
                break;
            }
            let p = slot.load(Ordering::Acquire);
            if p.is_null() {
                continue;
            }
            // Safety: published pointers stay valid until `self` drops.
            let f = unsafe { &*p };
            let fill = f.fill();
            fill_sum += fill;
            fp_sum += f.est_fp_rate();
            max_fill = max_fill.max(fill);
            sampled += 1;
        }
        crate::diagnostics::BloomSaturation {
            filters_sampled: sampled,
            mean_fill: if sampled == 0 {
                0.0
            } else {
                fill_sum / sampled as f64
            },
            max_fill,
            est_fp_rate: if sampled == 0 {
                0.0
            } else {
                fp_sum / sampled as f64
            },
        }
    }
}

impl ReaderSet for ReadSignature {
    #[inline]
    fn insert(&self, addr: u64, tid: u32) {
        self.filter_or_insert(addr).insert(tid as u64);
    }

    #[inline]
    fn contains(&self, addr: u64, tid: u32) -> bool {
        self.filter(addr).is_some_and(|f| f.contains(tid as u64))
    }

    #[inline]
    fn clear_addr(&self, addr: u64) {
        if let Some(f) = self.filter(addr) {
            f.clear();
        }
    }

    fn memory_bytes(&self) -> usize {
        // 8 = the production size of one slot pointer. Kept literal so the
        // figure matches Eq. 2 even when the `sched` feature swaps in the
        // (physically larger) instrumented shim atomics.
        self.slots.len() * 8
            + self.allocated_filters()
                * (self.geometry.bytes_per_filter() + std::mem::size_of::<ConcurrentBloom>())
    }
}

impl Drop for ReadSignature {
    fn drop(&mut self) {
        for slot in self.slots.iter() {
            let p = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                // Safety: sole owner at drop time; pointer came from Box::into_raw.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn insert_contains_clear_cycle() {
        let sig = ReadSignature::new(1024, 8, 0.001);
        assert!(!sig.contains(0x1000, 3));
        sig.insert(0x1000, 3);
        assert!(sig.contains(0x1000, 3));
        assert!(!sig.contains(0x1000, 4));
        sig.clear_addr(0x1000);
        assert!(!sig.contains(0x1000, 3));
    }

    #[test]
    fn lazy_allocation_counts_filters() {
        let sig = ReadSignature::new(1 << 16, 8, 0.01);
        assert_eq!(sig.allocated_filters(), 0);
        let empty = sig.memory_bytes();
        for a in 0..100u64 {
            sig.insert(a * 640, 0); // spread across slots
        }
        assert!(sig.allocated_filters() > 0);
        assert!(sig.allocated_filters() <= 100);
        assert!(sig.memory_bytes() > empty);
    }

    #[test]
    fn memory_is_bounded_by_slot_count() {
        let sig = ReadSignature::new(64, 8, 0.01);
        for a in 0..10_000u64 {
            sig.insert(a, (a % 8) as u32);
        }
        assert!(sig.allocated_filters() <= 64);
        let cap = 64 * 8
            + 64 * (sig.geometry().bytes_per_filter() + std::mem::size_of::<ConcurrentBloom>());
        assert!(sig.memory_bytes() <= cap);
    }

    #[test]
    fn collisions_share_filters_but_keep_no_false_negatives() {
        // With one slot, every address aliases; membership inserted must
        // still be reported.
        let sig = ReadSignature::new(1, 16, 0.001);
        for a in 0..16u64 {
            sig.insert(a, a as u32);
        }
        for a in 0..16u64 {
            assert!(sig.contains(a, a as u32));
        }
        assert_eq!(sig.allocated_filters(), 1);
    }

    #[test]
    fn concurrent_insert_race_allocates_once_per_slot() {
        let sig = Arc::new(ReadSignature::new(4, 32, 0.001));
        let mut handles = Vec::new();
        for tid in 0..16u32 {
            let sig = Arc::clone(&sig);
            handles.push(std::thread::spawn(move || {
                for a in 0..1000u64 {
                    sig.insert(a, tid);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(sig.allocated_filters() <= 4);
        for tid in 0..16u32 {
            assert!(sig.contains(7, tid));
        }
    }
}
