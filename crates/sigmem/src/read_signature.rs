//! Two-level read signature (Fig. 3a of the paper).
//!
//! A fixed first-level array of `n` slots is indexed by a MurmurHash of the
//! memory address. Each occupied slot owns a second-level Bloom filter
//! recording the set of thread ids that have read addresses mapping to that
//! slot. Filter storage lives in a segmented [`FilterArena`]: slots share
//! segment allocations of [`crate::slot::ARENA_SEGMENT_FILTERS`] filters,
//! published lazily with a release-CAS so a thread observing a segment also
//! observes its zeroed contents. Compared to the original one-heap-object-
//! per-slot layout this removes a dependent pointer load from every probe
//! and keeps neighbouring slots' filters on adjacent cache lines
//! (DESIGN.md §12).
//!
//! Memory is bounded: at most `n` filters of fixed geometry can ever exist,
//! so the footprint never depends on the profiled program's input size —
//! the property Figures 5a/5b demonstrate.
//!
//! Two further hot-path economies over the original implementation:
//!
//! * **Per-tid probe masks.** Filter probes need the Kirsch–Mitzenmacher
//!   probe bits of the *thread id*, not the address — and for a fixed
//!   geometry those `k` bit positions are a constant per tid, all inside
//!   one cache-line-local block. They are folded into per-word OR masks at
//!   construction (for every `tid < threads`), so an insert is at most
//!   `block_bits/64` check-before-set word operations instead of `k`
//!   atomic RMWs, and a membership query is the same number of plain word
//!   loads instead of `k` bit tests. The resulting bit state and
//!   membership answers are identical to the per-probe schedule
//!   ([`crate::BloomGeometry::probe_bit`]), which out-of-range tids still
//!   take.
//! * **Hashed entry points.** [`ReaderSet::insert_hashed`] and friends
//!   accept `fmix64(addr)` computed once by the caller (batched replay
//!   hashes whole address blocks via [`crate::murmur::hash_block`]), so the
//!   address is hashed exactly once per event no matter how many signature
//!   consultations the detector makes.

use crate::bloom::hash_pair;
use crate::concurrent_bloom::{BloomGeometry, BLOOM_BLOCK_BITS};
use crate::murmur::fmix64;
use crate::slot::{slot_of_hash, FilterArena, FilterRef};
use crate::traits::ReaderSet;

/// Per-word probe masks of one thread id: the union of its `k` probe bits,
/// folded by word. All probes of one item land inside a single
/// cache-line-local block (≤ 512 bits = 8 words), so a fixed-size mask
/// array plus the block's first word fully describe the probe set.
#[derive(Clone, Copy, Debug)]
struct TidMasks {
    /// First filter word of this tid's block.
    base_word: u32,
    /// Live words in `masks` (`block_bits / 64`).
    n_words: u32,
    /// OR mask per block word; a word whose mask is zero is never touched.
    masks: [u64; BLOOM_BLOCK_BITS / 64],
}

impl TidMasks {
    fn for_item(geometry: &BloomGeometry, item: u64) -> Self {
        let (ha, hb) = hash_pair(item);
        let words_per_block = geometry.block_bits / 64;
        let mut masks = [0u64; BLOOM_BLOCK_BITS / 64];
        let mut base_word = 0u32;
        for i in 0..geometry.k {
            let bit = geometry.probe_bit(ha, hb, i);
            base_word = (bit / 64 / words_per_block * words_per_block) as u32;
            masks[bit / 64 % words_per_block] |= 1u64 << (bit % 64);
        }
        Self {
            base_word,
            n_words: words_per_block as u32,
            masks,
        }
    }
}

/// The two-level concurrent read signature.
#[derive(Debug)]
pub struct ReadSignature {
    arena: FilterArena,
    geometry: BloomGeometry,
    /// Precomputed probe-bit word masks per thread id.
    tid_masks: Box<[TidMasks]>,
}

impl ReadSignature {
    /// Create a signature with `n_slots` first-level slots, second-level
    /// filters sized for `threads` readers at `fp_rate`.
    pub fn new(n_slots: usize, threads: usize, fp_rate: f64) -> Self {
        assert!(n_slots > 0, "signature needs at least one slot");
        let geometry = BloomGeometry::for_threads(threads, fp_rate);
        Self {
            arena: FilterArena::new(n_slots, geometry.words_per_filter()),
            geometry,
            tid_masks: (0..threads as u64)
                .map(|t| TidMasks::for_item(&geometry, t))
                .collect(),
        }
    }

    #[inline]
    fn set_tid(&self, f: FilterRef<'_>, tid: u32) {
        match self.tid_masks.get(tid as usize) {
            Some(m) => {
                for (i, &mask) in m.masks[..m.n_words as usize].iter().enumerate() {
                    if mask != 0 {
                        f.or_word_missing(m.base_word as usize + i, mask);
                    }
                }
            }
            None => {
                // Out-of-range tid: same probe schedule, computed on demand.
                let (ha, hb) = hash_pair(tid as u64);
                for i in 0..self.geometry.k {
                    f.set_bit(self.geometry.probe_bit(ha, hb, i));
                }
            }
        }
    }

    #[inline]
    fn has_tid(&self, f: FilterRef<'_>, tid: u32) -> bool {
        match self.tid_masks.get(tid as usize) {
            Some(m) => m.masks[..m.n_words as usize]
                .iter()
                .enumerate()
                .all(|(i, &mask)| mask == 0 || f.word_covers(m.base_word as usize + i, mask)),
            None => {
                let (ha, hb) = hash_pair(tid as u64);
                (0..self.geometry.k).all(|i| f.get_bit(self.geometry.probe_bit(ha, hb, i)))
            }
        }
    }

    /// Number of first-level slots.
    pub fn n_slots(&self) -> usize {
        self.arena.n_filters()
    }

    /// Second-level filter geometry.
    pub fn geometry(&self) -> BloomGeometry {
        self.geometry
    }

    /// How many second-level filters have been allocated so far. Counted at
    /// arena-segment grain: touching one slot allocates (and counts) the
    /// whole segment covering it, because that is the memory actually
    /// committed.
    pub fn allocated_filters(&self) -> usize {
        self.arena.allocated_filters()
    }

    /// Snapshot every non-empty second-level filter as `(slot, words)`,
    /// slot-ascending. Unallocated and all-zero filters are omitted: a
    /// zero filter answers `contains == false` for every tid exactly like
    /// an unallocated one, so the sparse dump plus the construction
    /// parameters reproduce identical membership behaviour — the
    /// checkpoint serialization contract.
    pub fn snapshot_filters(&self) -> Vec<(u64, Vec<u64>)> {
        let mut out = Vec::new();
        for slot in 0..self.arena.n_filters() {
            let Some(f) = self.arena.filter(slot) else {
                continue;
            };
            let words: Vec<u64> = (0..f.n_words()).map(|i| f.load_word(i)).collect();
            if words.iter().any(|&w| w != 0) {
                out.push((slot as u64, words));
            }
        }
        out
    }

    /// Restore one filter's words (allocating its segment), the inverse of
    /// [`Self::snapshot_filters`]. Single-threaded by contract: restore
    /// happens before profiling resumes.
    pub fn restore_filter(&self, slot: usize, words: &[u64]) {
        let f = self.arena.filter_or_alloc(slot);
        assert_eq!(
            words.len(),
            f.n_words(),
            "checkpoint filter geometry mismatch"
        );
        for (i, &w) in words.iter().enumerate() {
            f.store_word(i, w);
        }
    }

    /// Online per-slot Bloom saturation: popcount up to `max_filters`
    /// *non-empty* filters (front-to-back over the slot array — murmur
    /// spreads occupancy uniformly, so a prefix is an unbiased sample) and
    /// summarize their fill and live false-positive estimate. Untouched
    /// filters inside allocated segments are skipped: segment-grain
    /// allocation would otherwise dilute the sample with slots no event
    /// ever reached. Scrape-time cost only; never called on the access
    /// path.
    pub fn bloom_saturation(&self, max_filters: usize) -> crate::diagnostics::BloomSaturation {
        let mut sampled = 0usize;
        let mut fill_sum = 0.0f64;
        let mut fp_sum = 0.0f64;
        let mut max_fill = 0.0f64;
        for slot in 0..self.arena.n_filters() {
            if sampled >= max_filters {
                break;
            }
            let Some(f) = self.arena.filter(slot) else {
                continue;
            };
            let ones = f.count_ones();
            if ones == 0 {
                continue;
            }
            let fill = ones as f64 / self.geometry.m_bits as f64;
            fill_sum += fill;
            fp_sum += fill.powi(self.geometry.k as i32);
            max_fill = max_fill.max(fill);
            sampled += 1;
        }
        crate::diagnostics::BloomSaturation {
            filters_sampled: sampled,
            mean_fill: if sampled == 0 {
                0.0
            } else {
                fill_sum / sampled as f64
            },
            max_fill,
            est_fp_rate: if sampled == 0 {
                0.0
            } else {
                fp_sum / sampled as f64
            },
        }
    }
}

impl ReaderSet for ReadSignature {
    #[inline]
    fn insert(&self, addr: u64, tid: u32) {
        self.insert_hashed(addr, fmix64(addr), tid);
    }

    #[inline]
    fn contains(&self, addr: u64, tid: u32) -> bool {
        self.contains_hashed(addr, fmix64(addr), tid)
    }

    #[inline]
    fn clear_addr(&self, addr: u64) {
        self.clear_addr_hashed(addr, fmix64(addr));
    }

    #[inline]
    fn insert_hashed(&self, _addr: u64, h: u64, tid: u32) {
        let f = self
            .arena
            .filter_or_alloc(slot_of_hash(h, self.arena.n_filters()));
        self.set_tid(f, tid);
    }

    #[inline]
    fn contains_hashed(&self, _addr: u64, h: u64, tid: u32) -> bool {
        match self.arena.filter(slot_of_hash(h, self.arena.n_filters())) {
            Some(f) => self.has_tid(f, tid),
            None => false,
        }
    }

    /// One slot resolution and one word pass: each probe word is loaded
    /// once, coverage is tested against the precomputed tid mask, and the
    /// atomic OR fires only for words with missing bits — exactly
    /// `contains` + `insert` fused.
    #[inline]
    fn insert_contains_hashed(&self, _addr: u64, h: u64, tid: u32) -> bool {
        let f = self
            .arena
            .filter_or_alloc(slot_of_hash(h, self.arena.n_filters()));
        match self.tid_masks.get(tid as usize) {
            Some(m) => {
                let mut present = true;
                for (i, &mask) in m.masks[..m.n_words as usize].iter().enumerate() {
                    if mask != 0 && !f.word_covers(m.base_word as usize + i, mask) {
                        present = false;
                        f.or_word_missing(m.base_word as usize + i, mask);
                    }
                }
                present
            }
            None => {
                let (ha, hb) = hash_pair(tid as u64);
                let mut present = true;
                for i in 0..self.geometry.k {
                    present &= f.set_bit(self.geometry.probe_bit(ha, hb, i));
                }
                present
            }
        }
    }

    #[inline]
    fn clear_addr_hashed(&self, _addr: u64, h: u64) {
        if let Some(f) = self.arena.filter(slot_of_hash(h, self.arena.n_filters())) {
            f.clear();
        }
    }

    #[inline]
    fn prefetch(&self, h: u64) {
        self.arena.prefetch(slot_of_hash(h, self.arena.n_filters()));
    }

    /// One Bloom filter per first-level slot, and `clear_addr_hashed`
    /// clears that whole filter — the slot index *is* the clear
    /// granularity.
    #[inline]
    fn elision_class_hashed(&self, _addr: u64, h: u64) -> Option<u64> {
        Some(slot_of_hash(h, self.arena.n_filters()) as u64)
    }

    fn memory_bytes(&self) -> usize {
        self.arena.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slot::ARENA_SEGMENT_FILTERS;
    use std::sync::Arc;

    #[test]
    fn insert_contains_clear_cycle() {
        let sig = ReadSignature::new(1024, 8, 0.001);
        assert!(!sig.contains(0x1000, 3));
        sig.insert(0x1000, 3);
        assert!(sig.contains(0x1000, 3));
        assert!(!sig.contains(0x1000, 4));
        sig.clear_addr(0x1000);
        assert!(!sig.contains(0x1000, 3));
    }

    #[test]
    fn lazy_allocation_counts_filters() {
        let sig = ReadSignature::new(1 << 16, 8, 0.01);
        assert_eq!(sig.allocated_filters(), 0);
        let empty = sig.memory_bytes();
        for a in 0..100u64 {
            sig.insert(a * 640, 0); // spread across slots
        }
        assert!(sig.allocated_filters() > 0);
        // Segment-grain accounting: at most one whole segment per insert.
        assert!(sig.allocated_filters() <= 100 * ARENA_SEGMENT_FILTERS);
        assert!(sig.memory_bytes() > empty);
    }

    #[test]
    fn memory_is_bounded_by_slot_count() {
        let sig = ReadSignature::new(64, 8, 0.01);
        for a in 0..10_000u64 {
            sig.insert(a, (a % 8) as u32);
        }
        assert!(sig.allocated_filters() <= 64);
        let cap =
            64usize.div_ceil(ARENA_SEGMENT_FILTERS) * 8 + 64 * sig.geometry().bytes_per_filter();
        assert!(sig.memory_bytes() <= cap);
    }

    #[test]
    fn collisions_share_filters_but_keep_no_false_negatives() {
        // With one slot, every address aliases; membership inserted must
        // still be reported.
        let sig = ReadSignature::new(1, 16, 0.001);
        for a in 0..16u64 {
            sig.insert(a, a as u32);
        }
        for a in 0..16u64 {
            assert!(sig.contains(a, a as u32));
        }
        assert_eq!(sig.allocated_filters(), 1);
    }

    #[test]
    fn hashed_entry_points_match_plain_ones() {
        let sig = ReadSignature::new(1 << 10, 8, 0.001);
        let ref_sig = ReadSignature::new(1 << 10, 8, 0.001);
        let addrs: Vec<u64> = (0..500).map(|i| i * 24 + 0x4000).collect();
        for (i, &a) in addrs.iter().enumerate() {
            let tid = (i % 8) as u32;
            sig.insert_hashed(a, fmix64(a), tid);
            ref_sig.insert(a, tid);
        }
        for &a in &addrs {
            for tid in 0..8u32 {
                assert_eq!(
                    sig.contains_hashed(a, fmix64(a), tid),
                    ref_sig.contains(a, tid),
                    "divergence at addr {a:#x} tid {tid}"
                );
            }
        }
        sig.clear_addr_hashed(addrs[0], fmix64(addrs[0]));
        ref_sig.clear_addr(addrs[0]);
        for tid in 0..8u32 {
            assert_eq!(sig.contains(addrs[0], tid), ref_sig.contains(addrs[0], tid));
        }
    }

    #[test]
    fn masked_probes_set_exactly_the_canonical_probe_bits() {
        // The per-tid word masks must reproduce probe_bit's bit set
        // exactly — for single-block and multi-block geometries alike.
        for threads in [2usize, 8, 32, 64, 256] {
            let sig = ReadSignature::new(4, threads, 0.001);
            let g = sig.geometry();
            for tid in 0..threads as u32 {
                sig.insert(0x40, tid);
                let f = sig.arena.filter(slot_of_hash(fmix64(0x40), 4)).unwrap();
                let (ha, hb) = hash_pair(tid as u64);
                let expect: std::collections::BTreeSet<usize> =
                    (0..g.k).map(|i| g.probe_bit(ha, hb, i)).collect();
                let got: std::collections::BTreeSet<usize> =
                    (0..g.m_bits).filter(|&b| f.get_bit(b)).collect();
                assert_eq!(got, expect, "threads={threads} tid={tid}");
                assert!(sig.contains(0x40, tid));
                f.clear();
            }
        }
    }

    #[test]
    fn out_of_range_tids_fall_back_to_computed_hashes() {
        // tid ≥ threads misses the cache; answers must still be exact
        // (same derived-hash formula, computed on demand).
        let sig = ReadSignature::new(256, 4, 0.01);
        sig.insert(0x99, 4_000_000);
        assert!(sig.contains(0x99, 4_000_000));
        assert!(!sig.contains(0x99, 4_000_001) || sig.geometry().k < 2);
    }

    #[test]
    fn concurrent_insert_race_allocates_once_per_slot() {
        let sig = Arc::new(ReadSignature::new(4, 32, 0.001));
        let mut handles = Vec::new();
        for tid in 0..16u32 {
            let sig = Arc::clone(&sig);
            handles.push(std::thread::spawn(move || {
                for a in 0..1000u64 {
                    sig.insert(a, tid);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(sig.allocated_filters() <= 4);
        for tid in 0..16u32 {
            assert!(sig.contains(7, tid));
        }
    }
}
