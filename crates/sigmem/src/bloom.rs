//! Sequential Bloom filter with paper-style automatic sizing.
//!
//! The second level of the read signature stores, per address class, the set
//! of thread ids that have read that address. The paper sizes these filters
//! automatically: "The bloom filter uses a bit vector of size m, where m
//! depends on the number of threads available in the target program. Also a
//! linear combination of hash functions has been devised to automatically
//! adjust the number of hash functions according to the false positive rate
//! required by the user" (§IV-D2).
//!
//! This module provides the single-threaded reference implementation used by
//! tests and offline analysis; [`crate::concurrent_bloom`] provides the
//! lock-free variant used on the online profiling path.

use crate::murmur::hash_addr;

/// Number of bits for a Bloom filter expected to hold `n` elements with
/// false-positive probability `fp_rate`.
///
/// Classic optimum: `m = -n * ln(p) / ln(2)^2`, rounded up to a multiple of
/// 64 so the bit vector packs into whole words.
pub fn optimal_bits(n: usize, fp_rate: f64) -> usize {
    assert!(n > 0, "bloom filter must be sized for at least one element");
    assert!(
        fp_rate > 0.0 && fp_rate < 1.0,
        "false-positive rate must be in (0, 1), got {fp_rate}"
    );
    let m = (-(n as f64) * fp_rate.ln() / (core::f64::consts::LN_2.powi(2))).ceil() as usize;
    m.max(64).div_ceil(64) * 64
}

/// Number of hash functions minimizing the false-positive rate for `m` bits
/// and `n` expected elements: `k = (m/n) * ln(2)`.
pub fn optimal_hashes(m_bits: usize, n: usize) -> usize {
    assert!(n > 0);
    let k = ((m_bits as f64 / n as f64) * core::f64::consts::LN_2).round() as usize;
    k.clamp(1, 16)
}

/// Theoretical false-positive rate after `inserted` insertions into a filter
/// of `m_bits` bits using `k` hash functions: `(1 - e^{-k·n/m})^k`.
///
/// Degenerate geometries are clamped instead of poisoning the result:
/// `m_bits = 0` (no bits: every probe "hits") and `k = 0` (no probes:
/// nothing can miss) both report a certain false positive, and the result
/// is always a probability in `[0, 1]` — never NaN. The boundary proptests
/// below pin this.
pub fn theoretical_fp_rate(m_bits: usize, k: usize, inserted: usize) -> f64 {
    if m_bits == 0 || k == 0 {
        return 1.0;
    }
    let exponent = -(k as f64) * (inserted as f64) / (m_bits as f64);
    (1.0 - exponent.exp()).powi(k as i32)
}

/// Seeds for the two base hashes from which the `k` filter hashes are
/// linearly combined (`h_i = h_a + i * h_b`, Kirsch–Mitzenmacher).
const SEED_A: u64 = 0x9368_7fbc_a1b2_c3d4;
const SEED_B: u64 = 0x1f83_d9ab_fb41_bd6b;

/// The two base hashes every derived hash of `item` combines: `(h_a, h_b)`
/// with `h_b` forced odd so strides cover all bits.
///
/// Computing this pair costs two `fmix64` — and it is the *whole* hashing
/// cost of a Bloom operation. The pre-fix hot path recomputed both bases
/// inside every probe (`2k` finalizer runs per insert instead of 2), the
/// "hash re-entry" half of the PR 4 batching regression (DESIGN.md §12).
/// Callers that probe the same item repeatedly (the read signature's items
/// are thread ids) cache the pair once per item.
#[inline]
pub fn hash_pair(item: u64) -> (u64, u64) {
    (hash_addr(item, SEED_A), hash_addr(item, SEED_B) | 1)
}

/// Compute the `i`-th derived hash of `item` from its base pair.
#[inline]
pub(crate) fn derived_from(ha: u64, hb: u64, i: usize) -> u64 {
    ha.wrapping_add(hb.wrapping_mul(i as u64))
}

/// Compute the `i`-th derived hash of `item`.
#[inline]
pub(crate) fn derived_hash(item: u64, i: usize) -> u64 {
    let (ha, hb) = hash_pair(item);
    derived_from(ha, hb, i)
}

/// A plain (single-threaded) Bloom filter over `u64` items.
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u64>,
    m_bits: usize,
    k: usize,
    inserted: usize,
}

impl BloomFilter {
    /// Create a filter sized for `expected` elements at `fp_rate`.
    pub fn with_rate(expected: usize, fp_rate: f64) -> Self {
        let m_bits = optimal_bits(expected, fp_rate);
        let k = optimal_hashes(m_bits, expected);
        Self::with_params(m_bits, k)
    }

    /// Create a filter with explicit geometry.
    pub fn with_params(m_bits: usize, k: usize) -> Self {
        assert!(
            m_bits >= 64 && m_bits % 64 == 0,
            "m_bits must be a positive multiple of 64"
        );
        assert!(k >= 1);
        Self {
            bits: vec![0u64; m_bits / 64],
            m_bits,
            k,
            inserted: 0,
        }
    }

    /// Insert an item.
    pub fn insert(&mut self, item: u64) {
        for i in 0..self.k {
            let bit = (derived_hash(item, i) % self.m_bits as u64) as usize;
            self.bits[bit / 64] |= 1u64 << (bit % 64);
        }
        self.inserted += 1;
    }

    /// Membership query. False positives possible, false negatives never.
    pub fn contains(&self, item: u64) -> bool {
        (0..self.k).all(|i| {
            let bit = (derived_hash(item, i) % self.m_bits as u64) as usize;
            self.bits[bit / 64] & (1u64 << (bit % 64)) != 0
        })
    }

    /// Remove every element (reset all bits).
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.inserted = 0;
    }

    /// Number of bits in the filter.
    pub fn m_bits(&self) -> usize {
        self.m_bits
    }

    /// Number of hash functions.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of `insert` calls since creation/clear (not deduplicated).
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Count of set bits (useful to estimate saturation).
    pub fn ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Heap footprint of the bit vector in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

/// A plain (single-threaded) **blocked** Bloom filter — the sequential
/// reference for the cache-line-local layout the concurrent path uses.
///
/// Shares the probe schedule with [`crate::ConcurrentBloom`] through
/// [`crate::BloomGeometry::probe_bit`], so the two structures set and test
/// identical bits for identical items; `tests/batched_hot_path.rs` pins
/// that differentially against recorded traces.
#[derive(Clone, Debug)]
pub struct BlockedBloomFilter {
    bits: Vec<u64>,
    geometry: crate::BloomGeometry,
    inserted: usize,
}

impl BlockedBloomFilter {
    /// Create an empty filter with the given blocked geometry.
    pub fn new(geometry: crate::BloomGeometry) -> Self {
        Self {
            bits: vec![0u64; geometry.words_per_filter()],
            geometry,
            inserted: 0,
        }
    }

    /// Insert an item.
    pub fn insert(&mut self, item: u64) {
        let (ha, hb) = hash_pair(item);
        for i in 0..self.geometry.k {
            let bit = self.geometry.probe_bit(ha, hb, i);
            self.bits[bit / 64] |= 1u64 << (bit % 64);
        }
        self.inserted += 1;
    }

    /// Membership query. False positives possible, false negatives never.
    pub fn contains(&self, item: u64) -> bool {
        let (ha, hb) = hash_pair(item);
        (0..self.geometry.k).all(|i| {
            let bit = self.geometry.probe_bit(ha, hb, i);
            self.bits[bit / 64] & (1u64 << (bit % 64)) != 0
        })
    }

    /// The blocked geometry.
    pub fn geometry(&self) -> crate::BloomGeometry {
        self.geometry
    }

    /// Number of `insert` calls since creation.
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Count of set bits.
    pub fn ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The raw filter words (for differential tests against the
    /// concurrent implementation).
    pub fn words(&self) -> &[u64] {
        &self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_rate(64, 0.001);
        for i in 0..64u64 {
            f.insert(i * 0x9e37);
        }
        for i in 0..64u64 {
            assert!(f.contains(i * 0x9e37));
        }
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::with_rate(32, 0.01);
        assert!(!f.contains(42));
        assert_eq!(f.ones(), 0);
    }

    #[test]
    fn clear_resets_membership() {
        let mut f = BloomFilter::with_rate(32, 0.01);
        f.insert(7);
        assert!(f.contains(7));
        f.clear();
        assert!(!f.contains(7));
        assert_eq!(f.inserted(), 0);
    }

    #[test]
    fn fp_rate_within_expectation() {
        // Insert the designed-for number of elements, then probe many
        // non-members; the observed FP rate must stay within ~4x of target.
        let target = 0.01;
        let n = 1000;
        let mut f = BloomFilter::with_rate(n, target);
        for i in 0..n as u64 {
            f.insert(i);
        }
        let probes = 100_000u64;
        let fps = (0..probes).filter(|p| f.contains(p + 1_000_000)).count();
        let observed = fps as f64 / probes as f64;
        assert!(
            observed < target * 4.0,
            "observed FP rate {observed} far above target {target}"
        );
    }

    #[test]
    fn optimal_bits_monotone_in_strictness() {
        assert!(optimal_bits(32, 0.001) > optimal_bits(32, 0.01));
        assert!(optimal_bits(64, 0.01) > optimal_bits(32, 0.01));
    }

    #[test]
    fn optimal_hashes_reasonable() {
        let m = optimal_bits(32, 0.001);
        let k = optimal_hashes(m, 32);
        // For p = 0.001 the optimum is ~ -log2(p) ≈ 10.
        assert!((8..=12).contains(&k), "k = {k}");
    }

    #[test]
    fn theoretical_rate_grows_with_load() {
        let m = optimal_bits(32, 0.01);
        let k = optimal_hashes(m, 32);
        let light = theoretical_fp_rate(m, k, 8);
        let heavy = theoretical_fp_rate(m, k, 64);
        assert!(light < heavy);
    }

    #[test]
    fn geometry_accessors() {
        let f = BloomFilter::with_params(128, 3);
        assert_eq!(f.m_bits(), 128);
        assert_eq!(f.k(), 3);
        assert_eq!(f.memory_bytes(), 16);
    }

    #[test]
    fn hash_pair_matches_derived_hash_family() {
        for item in 0..64u64 {
            let (ha, hb) = hash_pair(item);
            assert_eq!(hb & 1, 1, "stride must be odd");
            for i in 0..16 {
                assert_eq!(derived_from(ha, hb, i), derived_hash(item, i));
            }
        }
    }

    #[test]
    fn blocked_filter_no_false_negatives() {
        let g = crate::BloomGeometry::for_threads(64, 0.001); // multi-block
        assert!(g.blocks() > 1, "want a genuinely blocked geometry");
        let mut f = BlockedBloomFilter::new(g);
        for i in 0..64u64 {
            f.insert(i);
        }
        for i in 0..64u64 {
            assert!(f.contains(i), "false negative at {i}");
        }
    }

    #[test]
    fn blocked_fp_rate_near_design_point() {
        // Blocking confines each item to one 512-bit block, which costs a
        // small constant over the unblocked optimum; the observed rate
        // must stay within the same 2x band telemetry pins live estimates
        // to (here 4x of the configured target, matching the unblocked
        // filter's own tolerance test above).
        let target = 0.001;
        let n = 64;
        let g = crate::BloomGeometry::for_threads(n, target);
        let mut f = BlockedBloomFilter::new(g);
        for i in 0..n as u64 {
            f.insert(i);
        }
        let probes = 200_000u64;
        let fps = (0..probes).filter(|p| f.contains(p + 1_000_000)).count();
        let observed = fps as f64 / probes as f64;
        assert!(
            observed < target * 4.0,
            "blocked FP rate {observed} far above target {target}"
        );
    }

    // ---- boundary proptests for the parameter math (ISSUE 6 satellite) ----

    use proptest::prelude::*;

    proptest! {
        #[test]
        fn optimal_bits_is_word_rounded_and_bounded_below(
            n in 1usize..100_000,
            // Drive fp_rate across extremes, including nearly-1 and
            // vanishingly small.
            neg_exp in 1u32..300,
        ) {
            let fp = (10f64).powi(-(neg_exp as i32)).min(0.999_999);
            let m = optimal_bits(n, fp);
            prop_assert!(m >= 64, "whole-word minimum violated: {m}");
            prop_assert_eq!(m % 64, 0, "not word-rounded: {}", m);
            // Never below the classic optimum it rounds.
            let ideal = -(n as f64) * fp.ln() / core::f64::consts::LN_2.powi(2);
            prop_assert!(m as f64 >= ideal);
        }

        #[test]
        fn optimal_hashes_always_in_clamp_band(
            m_exp in 0u32..24,
            n in 1usize..1_000_000,
        ) {
            let k = optimal_hashes(1usize << m_exp, n);
            prop_assert!((1..=16).contains(&k), "k = {} escaped [1, 16]", k);
        }

        #[test]
        fn theoretical_fp_rate_is_a_probability_everywhere(
            m in 0usize..100_000,
            k in 0usize..32,
            inserted in 0usize..1_000_000,
        ) {
            let p = theoretical_fp_rate(m, k, inserted);
            prop_assert!(p.is_finite(), "NaN/inf at m={} k={} n={}", m, k, inserted);
            prop_assert!((0.0..=1.0).contains(&p), "p = {} escaped [0, 1]", p);
        }

        #[test]
        fn theoretical_fp_rate_monotone_in_load(
            m_exp in 6u32..20,
            k in 1usize..16,
            n1 in 0usize..10_000,
            extra in 1usize..10_000,
        ) {
            let m = 1usize << m_exp;
            let light = theoretical_fp_rate(m, k, n1);
            let heavy = theoretical_fp_rate(m, k, n1 + extra);
            prop_assert!(light <= heavy, "rate fell as load grew");
        }
    }

    #[test]
    fn theoretical_fp_rate_degenerate_geometries_are_certain() {
        // No bits: every probe hits. No probes: nothing can miss.
        assert_eq!(theoretical_fp_rate(0, 4, 10), 1.0);
        assert_eq!(theoretical_fp_rate(128, 0, 10), 1.0);
        // Empty filter never false-positives.
        assert_eq!(theoretical_fp_rate(128, 4, 0), 0.0);
    }

    #[test]
    fn tiny_expected_and_extreme_rates_build_working_filters() {
        // The clamps must produce usable geometry at the boundaries the
        // satellite names: one expected element, near-1 and near-0 rates.
        for fp in [0.999, 0.5, 1e-9] {
            let m = optimal_bits(1, fp);
            let k = optimal_hashes(m, 1);
            let mut f = BloomFilter::with_params(m, k);
            f.insert(42);
            assert!(f.contains(42));
        }
    }
}
