//! Sequential Bloom filter with paper-style automatic sizing.
//!
//! The second level of the read signature stores, per address class, the set
//! of thread ids that have read that address. The paper sizes these filters
//! automatically: "The bloom filter uses a bit vector of size m, where m
//! depends on the number of threads available in the target program. Also a
//! linear combination of hash functions has been devised to automatically
//! adjust the number of hash functions according to the false positive rate
//! required by the user" (§IV-D2).
//!
//! This module provides the single-threaded reference implementation used by
//! tests and offline analysis; [`crate::concurrent_bloom`] provides the
//! lock-free variant used on the online profiling path.

use crate::murmur::hash_addr;

/// Number of bits for a Bloom filter expected to hold `n` elements with
/// false-positive probability `fp_rate`.
///
/// Classic optimum: `m = -n * ln(p) / ln(2)^2`, rounded up to a multiple of
/// 64 so the bit vector packs into whole words.
pub fn optimal_bits(n: usize, fp_rate: f64) -> usize {
    assert!(n > 0, "bloom filter must be sized for at least one element");
    assert!(
        fp_rate > 0.0 && fp_rate < 1.0,
        "false-positive rate must be in (0, 1), got {fp_rate}"
    );
    let m = (-(n as f64) * fp_rate.ln() / (core::f64::consts::LN_2.powi(2))).ceil() as usize;
    m.max(64).div_ceil(64) * 64
}

/// Number of hash functions minimizing the false-positive rate for `m` bits
/// and `n` expected elements: `k = (m/n) * ln(2)`.
pub fn optimal_hashes(m_bits: usize, n: usize) -> usize {
    assert!(n > 0);
    let k = ((m_bits as f64 / n as f64) * core::f64::consts::LN_2).round() as usize;
    k.clamp(1, 16)
}

/// Theoretical false-positive rate after `inserted` insertions into a filter
/// of `m_bits` bits using `k` hash functions: `(1 - e^{-k·n/m})^k`.
pub fn theoretical_fp_rate(m_bits: usize, k: usize, inserted: usize) -> f64 {
    let exponent = -(k as f64) * (inserted as f64) / (m_bits as f64);
    (1.0 - exponent.exp()).powi(k as i32)
}

/// Seeds for the two base hashes from which the `k` filter hashes are
/// linearly combined (`h_i = h_a + i * h_b`, Kirsch–Mitzenmacher).
const SEED_A: u64 = 0x9368_7fbc_a1b2_c3d4;
const SEED_B: u64 = 0x1f83_d9ab_fb41_bd6b;

/// Compute the `i`-th derived hash of `item`.
#[inline]
pub(crate) fn derived_hash(item: u64, i: usize) -> u64 {
    let ha = hash_addr(item, SEED_A);
    let hb = hash_addr(item, SEED_B) | 1; // force odd so strides cover all bits
    ha.wrapping_add(hb.wrapping_mul(i as u64))
}

/// A plain (single-threaded) Bloom filter over `u64` items.
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u64>,
    m_bits: usize,
    k: usize,
    inserted: usize,
}

impl BloomFilter {
    /// Create a filter sized for `expected` elements at `fp_rate`.
    pub fn with_rate(expected: usize, fp_rate: f64) -> Self {
        let m_bits = optimal_bits(expected, fp_rate);
        let k = optimal_hashes(m_bits, expected);
        Self::with_params(m_bits, k)
    }

    /// Create a filter with explicit geometry.
    pub fn with_params(m_bits: usize, k: usize) -> Self {
        assert!(
            m_bits >= 64 && m_bits % 64 == 0,
            "m_bits must be a positive multiple of 64"
        );
        assert!(k >= 1);
        Self {
            bits: vec![0u64; m_bits / 64],
            m_bits,
            k,
            inserted: 0,
        }
    }

    /// Insert an item.
    pub fn insert(&mut self, item: u64) {
        for i in 0..self.k {
            let bit = (derived_hash(item, i) % self.m_bits as u64) as usize;
            self.bits[bit / 64] |= 1u64 << (bit % 64);
        }
        self.inserted += 1;
    }

    /// Membership query. False positives possible, false negatives never.
    pub fn contains(&self, item: u64) -> bool {
        (0..self.k).all(|i| {
            let bit = (derived_hash(item, i) % self.m_bits as u64) as usize;
            self.bits[bit / 64] & (1u64 << (bit % 64)) != 0
        })
    }

    /// Remove every element (reset all bits).
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.inserted = 0;
    }

    /// Number of bits in the filter.
    pub fn m_bits(&self) -> usize {
        self.m_bits
    }

    /// Number of hash functions.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of `insert` calls since creation/clear (not deduplicated).
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Count of set bits (useful to estimate saturation).
    pub fn ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Heap footprint of the bit vector in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_rate(64, 0.001);
        for i in 0..64u64 {
            f.insert(i * 0x9e37);
        }
        for i in 0..64u64 {
            assert!(f.contains(i * 0x9e37));
        }
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::with_rate(32, 0.01);
        assert!(!f.contains(42));
        assert_eq!(f.ones(), 0);
    }

    #[test]
    fn clear_resets_membership() {
        let mut f = BloomFilter::with_rate(32, 0.01);
        f.insert(7);
        assert!(f.contains(7));
        f.clear();
        assert!(!f.contains(7));
        assert_eq!(f.inserted(), 0);
    }

    #[test]
    fn fp_rate_within_expectation() {
        // Insert the designed-for number of elements, then probe many
        // non-members; the observed FP rate must stay within ~4x of target.
        let target = 0.01;
        let n = 1000;
        let mut f = BloomFilter::with_rate(n, target);
        for i in 0..n as u64 {
            f.insert(i);
        }
        let probes = 100_000u64;
        let fps = (0..probes).filter(|p| f.contains(p + 1_000_000)).count();
        let observed = fps as f64 / probes as f64;
        assert!(
            observed < target * 4.0,
            "observed FP rate {observed} far above target {target}"
        );
    }

    #[test]
    fn optimal_bits_monotone_in_strictness() {
        assert!(optimal_bits(32, 0.001) > optimal_bits(32, 0.01));
        assert!(optimal_bits(64, 0.01) > optimal_bits(32, 0.01));
    }

    #[test]
    fn optimal_hashes_reasonable() {
        let m = optimal_bits(32, 0.001);
        let k = optimal_hashes(m, 32);
        // For p = 0.001 the optimum is ~ -log2(p) ≈ 10.
        assert!((8..=12).contains(&k), "k = {k}");
    }

    #[test]
    fn theoretical_rate_grows_with_load() {
        let m = optimal_bits(32, 0.01);
        let k = optimal_hashes(m, 32);
        let light = theoretical_fp_rate(m, k, 8);
        let heavy = theoretical_fp_rate(m, k, 64);
        assert!(light < heavy);
    }

    #[test]
    fn geometry_accessors() {
        let f = BloomFilter::with_params(128, 3);
        assert_eq!(f.m_bits(), 128);
        assert_eq!(f.k(), 3);
        assert_eq!(f.memory_bytes(), 16);
    }
}
