//! Perfect (collision-free) signature memory.
//!
//! §V-A3: "We evaluated the false positive rate under four different
//! signature sizes by implementing a perfect signature memory without any
//! collision to be the baseline for FPR comparison." This module is that
//! baseline: exact per-address reader sets and last-writer records backed by
//! sharded hash maps. Memory grows with the program's footprint — the very
//! behaviour the bounded signature avoids — which is itself measured in the
//! Figure 5 comparison.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::murmur::fmix64;
use crate::traits::{ReaderSet, WriterMap};

/// Number of lock shards; power of two so selection is a mask.
const SHARDS: usize = 64;

/// Maximum thread id representable by the compact reader bitmask.
pub const MAX_PERFECT_THREADS: u32 = 128;

#[inline]
fn shard(addr: u64) -> usize {
    (fmix64(addr) >> 56) as usize & (SHARDS - 1)
}

/// Estimated heap bytes per occupied hash-map entry (key + value + bucket
/// overhead), used for the memory-growth comparison in Figure 5.
const BYTES_PER_ENTRY: usize = 48;

/// Exact reader sets: `addr -> bitmask of reader tids` (tids < 128).
pub struct PerfectReaderSet {
    shards: Box<[Mutex<HashMap<u64, u128>>]>,
}

impl Default for PerfectReaderSet {
    fn default() -> Self {
        Self::new()
    }
}

impl PerfectReaderSet {
    /// Create an empty exact reader-set store.
    pub fn new() -> Self {
        let shards = (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect();
        Self { shards }
    }

    /// Number of distinct addresses currently tracked.
    pub fn tracked_addresses(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Snapshot every tracked address as `(addr, reader bitmask)`,
    /// addr-ascending — the checkpoint serialization contract.
    pub fn snapshot(&self) -> Vec<(u64, u128)> {
        let mut out: Vec<(u64, u128)> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().iter().map(|(&a, &m)| (a, m)).collect::<Vec<_>>())
            .collect();
        out.sort_unstable_by_key(|&(a, _)| a);
        out
    }

    /// Restore one address's reader bitmask, the inverse of
    /// [`Self::snapshot`].
    pub fn restore_mask(&self, addr: u64, mask: u128) {
        self.shards[shard(addr)].lock().insert(addr, mask);
    }
}

impl ReaderSet for PerfectReaderSet {
    fn insert(&self, addr: u64, tid: u32) {
        assert!(
            tid < MAX_PERFECT_THREADS,
            "perfect signature supports up to {MAX_PERFECT_THREADS} threads"
        );
        *self.shards[shard(addr)].lock().entry(addr).or_insert(0) |= 1u128 << tid;
    }

    fn contains(&self, addr: u64, tid: u32) -> bool {
        assert!(tid < MAX_PERFECT_THREADS);
        self.shards[shard(addr)]
            .lock()
            .get(&addr)
            .is_some_and(|m| m & (1u128 << tid) != 0)
    }

    fn clear_addr(&self, addr: u64) {
        self.shards[shard(addr)].lock().remove(&addr);
    }

    fn insert_contains_hashed(&self, addr: u64, _h: u64, tid: u32) -> bool {
        assert!(tid < MAX_PERFECT_THREADS);
        let mut m = self.shards[shard(addr)].lock();
        let e = m.entry(addr).or_insert(0);
        let present = *e & (1u128 << tid) != 0;
        *e |= 1u128 << tid;
        present
    }

    fn memory_bytes(&self) -> usize {
        self.tracked_addresses() * BYTES_PER_ENTRY
    }

    /// Exact per-address storage: `clear_addr` forgets exactly one
    /// address, so the address is its own class.
    #[inline]
    fn elision_class_hashed(&self, addr: u64, _h: u64) -> Option<u64> {
        Some(addr)
    }
}

/// Exact last-writer map: `addr -> tid`.
pub struct PerfectWriterMap {
    shards: Box<[Mutex<HashMap<u64, u32>>]>,
}

impl Default for PerfectWriterMap {
    fn default() -> Self {
        Self::new()
    }
}

impl PerfectWriterMap {
    /// Create an empty exact writer map.
    pub fn new() -> Self {
        let shards = (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect();
        Self { shards }
    }

    /// Number of distinct addresses ever written.
    pub fn tracked_addresses(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Snapshot every written address as `(addr, tid)`, addr-ascending —
    /// the checkpoint serialization contract.
    pub fn snapshot(&self) -> Vec<(u64, u32)> {
        let mut out: Vec<(u64, u32)> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().iter().map(|(&a, &t)| (a, t)).collect::<Vec<_>>())
            .collect();
        out.sort_unstable_by_key(|&(a, _)| a);
        out
    }
}

impl WriterMap for PerfectWriterMap {
    fn record(&self, addr: u64, tid: u32) {
        self.shards[shard(addr)].lock().insert(addr, tid);
    }

    fn last_writer(&self, addr: u64) -> Option<u32> {
        self.shards[shard(addr)].lock().get(&addr).copied()
    }

    fn memory_bytes(&self) -> usize {
        self.tracked_addresses() * BYTES_PER_ENTRY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_set_is_exact() {
        let rs = PerfectReaderSet::new();
        rs.insert(0x10, 1);
        rs.insert(0x10, 2);
        assert!(rs.contains(0x10, 1));
        assert!(rs.contains(0x10, 2));
        assert!(!rs.contains(0x10, 3));
        assert!(!rs.contains(0x11, 1)); // no aliasing, ever
    }

    #[test]
    fn clear_addr_is_per_address() {
        let rs = PerfectReaderSet::new();
        rs.insert(0x10, 1);
        rs.insert(0x20, 1);
        rs.clear_addr(0x10);
        assert!(!rs.contains(0x10, 1));
        assert!(rs.contains(0x20, 1));
    }

    #[test]
    fn writer_map_is_exact() {
        let wm = PerfectWriterMap::new();
        assert_eq!(wm.last_writer(0x40), None);
        wm.record(0x40, 5);
        wm.record(0x48, 6);
        assert_eq!(wm.last_writer(0x40), Some(5));
        assert_eq!(wm.last_writer(0x48), Some(6));
        assert_eq!(wm.last_writer(0x50), None);
    }

    #[test]
    fn memory_grows_with_footprint() {
        let wm = PerfectWriterMap::new();
        let before = wm.memory_bytes();
        for a in 0..1000u64 {
            wm.record(a * 8, 0);
        }
        assert!(wm.memory_bytes() >= before + 1000 * 8);
        assert_eq!(wm.tracked_addresses(), 1000);
    }

    #[test]
    #[should_panic(expected = "perfect signature supports")]
    fn rejects_oversized_tid() {
        let rs = PerfectReaderSet::new();
        rs.insert(0, MAX_PERFECT_THREADS);
    }
}
