//! Closed-form memory model of the asymmetric signature (Eq. 2).
//!
//! The paper bounds total profiler memory as
//!
//! ```text
//! SigMem(n, t) = n · (4 + (−t · ln(FPRate)) / (8 · ln²2))   bytes
//! ```
//!
//! where `n` is the slot count, `t` the thread count and `FPRate` the Bloom
//! false-positive target. The `4` is the write-signature slot (one `u32`);
//! the second term is one second-level Bloom filter per read slot
//! (`m = −t·ln p / ln²2` bits = `m/8` bytes). With `n = 10⁷`, `t = 32`,
//! `FPRate = 0.001` this gives ≈ 615 MB — the paper rounds to "around
//! 580 MB could be sufficient" (§V-A2).
//!
//! The model intentionally ignores the first-level pointer array and
//! allocator overhead; [`actual_upper_bound_bytes`] adds those, and
//! `ReadSignature::memory_bytes` reports the live footprint.

use crate::concurrent_bloom::BloomGeometry;

/// Eq. 2 verbatim: paper's predicted signature memory in bytes.
pub fn paper_sig_mem_bytes(n_slots: usize, threads: usize, fp_rate: f64) -> f64 {
    assert!(fp_rate > 0.0 && fp_rate < 1.0);
    let ln2 = core::f64::consts::LN_2;
    n_slots as f64 * (4.0 + (-(threads as f64) * fp_rate.ln()) / (8.0 * ln2 * ln2))
}

/// Bloom bits per filter implied by Eq. 2 (before word rounding).
pub fn paper_bloom_bits(threads: usize, fp_rate: f64) -> f64 {
    let ln2 = core::f64::consts::LN_2;
    -(threads as f64) * fp_rate.ln() / (ln2 * ln2)
}

/// Worst-case bytes the implementation can ever allocate for one signature
/// pair: write slots + arena segment pointers + every filter materialized,
/// using the real power-of-two/block-rounded geometry. The arena layout
/// has no per-filter header: filters are bare word runs inside segment
/// allocations, so the only overhead over Eq. 2 is one 8-byte pointer per
/// [`crate::slot::ARENA_SEGMENT_FILTERS`] slots plus geometry rounding.
pub fn actual_upper_bound_bytes(n_slots: usize, threads: usize, fp_rate: f64) -> usize {
    let geom = BloomGeometry::for_threads(threads, fp_rate);
    n_slots * 4                                    // write signature slots
        + n_slots.div_ceil(crate::slot::ARENA_SEGMENT_FILTERS) * 8 // segment pointers
        + n_slots * geom.bytes_per_filter()
}

/// Predicted memory across a sweep of slot counts — used by the Eq. 2
/// validation harness and EXPERIMENTS.md.
pub fn model_sweep(threads: usize, fp_rate: f64, slot_counts: &[usize]) -> Vec<(usize, f64)> {
    slot_counts
        .iter()
        .map(|&n| (n, paper_sig_mem_bytes(n, threads, fp_rate)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_operating_point_near_580mb() {
        // n = 10^7, t = 32, FPRate = 0.001 — §V-A2's configuration.
        let bytes = paper_sig_mem_bytes(10_000_000, 32, 0.001);
        let mb = bytes / (1024.0 * 1024.0);
        // Paper says "around 580MB could be sufficient"; the formula itself
        // evaluates to ~590-615 MB depending on MB convention. Accept the
        // band the paper's prose and formula jointly cover.
        assert!((500.0..700.0).contains(&mb), "model gives {mb} MB");
    }

    #[test]
    fn model_is_linear_in_slots() {
        let a = paper_sig_mem_bytes(1_000_000, 32, 0.001);
        let b = paper_sig_mem_bytes(2_000_000, 32, 0.001);
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn model_grows_with_threads_and_strictness() {
        let base = paper_sig_mem_bytes(1000, 16, 0.01);
        assert!(paper_sig_mem_bytes(1000, 32, 0.01) > base);
        assert!(paper_sig_mem_bytes(1000, 16, 0.001) > base);
    }

    #[test]
    fn bloom_bits_match_classic_formula() {
        // t = 32, p = 0.001: m = 32 * 6.9078 / 0.4805 ≈ 460 bits.
        let bits = paper_bloom_bits(32, 0.001);
        assert!((455.0..465.0).contains(&bits), "bits = {bits}");
    }

    #[test]
    fn actual_bound_dominates_model() {
        // The implementation bound includes pointer array + rounding, so it
        // must exceed the paper's idealized figure.
        let n = 100_000;
        let model = paper_sig_mem_bytes(n, 32, 0.001);
        let actual = actual_upper_bound_bytes(n, 32, 0.001) as f64;
        assert!(actual > model);
        // ...but within a small constant factor (no blow-up). Pointer array
        // (8 B/slot) + word rounding + filter headers roughly double it.
        assert!(actual < model * 2.5);
    }

    #[test]
    fn sweep_shape() {
        let s = model_sweep(32, 0.001, &[1_000, 10_000, 100_000]);
        assert_eq!(s.len(), 3);
        assert!(s[0].1 < s[1].1 && s[1].1 < s[2].1);
    }
}
