//! MurmurHash3 implemented from scratch (x86_32 and x64_128 variants, plus
//! the 64-bit finalizer used as a fast address hash).
//!
//! The paper selects MurmurHash for the first-level signature index because
//! it "has much lower time complexity while having less collisions in
//! comparison with other hash functions" (§IV-D2). We implement the public
//! reference algorithm by Austin Appleby; the x86_32 variant is validated
//! against the canonical test vectors, and the 64-bit finalizer (`fmix64`)
//! is the hot path used to map memory addresses to signature slots.

/// The 64-bit finalization mix of MurmurHash3.
///
/// This is a full-avalanche bijective mixer: every input bit affects every
/// output bit with probability ~1/2. Being bijective, it never introduces
/// collisions on 64-bit inputs, which makes it ideal for hashing memory
/// addresses before reduction modulo the slot count.
#[inline]
pub fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

/// The 32-bit finalization mix of MurmurHash3.
#[inline]
pub fn fmix32(mut h: u32) -> u32 {
    h ^= h >> 16;
    h = h.wrapping_mul(0x85eb_ca6b);
    h ^= h >> 13;
    h = h.wrapping_mul(0xc2b2_ae35);
    h ^= h >> 16;
    h
}

/// Hash a memory address together with a seed.
///
/// Used to derive the family of hash functions needed by the Bloom filters
/// ("a linear combination of hash functions has been devised", §IV-D2):
/// `h_i(x) = hash_addr(x, seed_a) + i * hash_addr(x, seed_b)`.
#[inline]
pub fn hash_addr(addr: u64, seed: u64) -> u64 {
    fmix64(addr ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Number of independent hash lanes [`hash_block`] interleaves.
///
/// `fmix64` is a serial chain of five data-dependent steps (~15 cycles of
/// latency), but each step is one cheap ALU op (~1 cycle of throughput).
/// Hashing one address at a time leaves the multiplier idle waiting on the
/// dependency chain; interleaving four independent chains keeps it fed and
/// approaches throughput-bound instead of latency-bound hashing. Four lanes
/// also give the autovectorizer a clean SWAR shape on targets with 64-bit
/// SIMD multiplies.
pub const HASH_BLOCK_LANES: usize = 4;

/// Four [`fmix64`] chains advanced in lockstep (software pipelining).
///
/// Bit-for-bit identical to calling [`fmix64`] on each lane — the batched
/// hot path depends on that equivalence, and `tests/batched_hot_path.rs`
/// pins it differentially.
#[inline]
pub fn fmix64_x4(k: [u64; 4]) -> [u64; 4] {
    let [mut a, mut b, mut c, mut d] = k;
    a ^= a >> 33;
    b ^= b >> 33;
    c ^= c >> 33;
    d ^= d >> 33;
    a = a.wrapping_mul(0xff51_afd7_ed55_8ccd);
    b = b.wrapping_mul(0xff51_afd7_ed55_8ccd);
    c = c.wrapping_mul(0xff51_afd7_ed55_8ccd);
    d = d.wrapping_mul(0xff51_afd7_ed55_8ccd);
    a ^= a >> 33;
    b ^= b >> 33;
    c ^= c >> 33;
    d ^= d >> 33;
    a = a.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    b = b.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    c = c.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    d = d.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    a ^= a >> 33;
    b ^= b >> 33;
    c ^= c >> 33;
    d ^= d >> 33;
    [a, b, c, d]
}

/// Hash a whole struct-of-arrays address block at once: `out[i] =
/// fmix64(addrs[i])` for every lane, with the bulk processed
/// [`HASH_BLOCK_LANES`] chains at a time and the remainder scalar.
///
/// This is the batched counterpart of the per-event slot hash — the replay
/// hot path gathers a tile of addresses from the SoA trace, hashes the tile
/// here, and then walks the precomputed hashes (also using them as prefetch
/// hints). Exact equivalence with the scalar path is load-bearing: the slot
/// an address routes to must not depend on which path hashed it.
///
/// # Panics
/// When the slices' lengths differ.
#[inline]
pub fn hash_block(addrs: &[u64], out: &mut [u64]) {
    assert_eq!(addrs.len(), out.len(), "hash_block: length mismatch");
    let mut chunks = addrs.chunks_exact(HASH_BLOCK_LANES);
    let mut outs = out.chunks_exact_mut(HASH_BLOCK_LANES);
    for (a, o) in (&mut chunks).zip(&mut outs) {
        o.copy_from_slice(&fmix64_x4([a[0], a[1], a[2], a[3]]));
    }
    for (a, o) in chunks
        .remainder()
        .iter()
        .zip(outs.into_remainder().iter_mut())
    {
        *o = fmix64(*a);
    }
}

/// MurmurHash3 x86_32 over an arbitrary byte slice.
pub fn murmur3_x86_32(data: &[u8], seed: u32) -> u32 {
    const C1: u32 = 0xcc9e_2d51;
    const C2: u32 = 0x1b87_3593;

    let mut h1 = seed;
    let nblocks = data.len() / 4;

    for block in data.chunks_exact(4) {
        let mut k1 = u32::from_le_bytes([block[0], block[1], block[2], block[3]]);
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(15);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1.rotate_left(13);
        h1 = h1.wrapping_mul(5).wrapping_add(0xe654_6b64);
    }

    let tail = &data[nblocks * 4..];
    let mut k1: u32 = 0;
    if tail.len() >= 3 {
        k1 ^= (tail[2] as u32) << 16;
    }
    if tail.len() >= 2 {
        k1 ^= (tail[1] as u32) << 8;
    }
    if !tail.is_empty() {
        k1 ^= tail[0] as u32;
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(15);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= data.len() as u32;
    fmix32(h1)
}

/// MurmurHash3 x64_128 over an arbitrary byte slice, returning the 128-bit
/// digest as two 64-bit halves.
pub fn murmur3_x64_128(data: &[u8], seed: u64) -> (u64, u64) {
    const C1: u64 = 0x87c3_7b91_1142_53d5;
    const C2: u64 = 0x4cf5_ad43_2745_937f;

    let mut h1 = seed;
    let mut h2 = seed;
    let nblocks = data.len() / 16;

    for block in data.chunks_exact(16) {
        let mut k1 = u64::from_le_bytes(block[0..8].try_into().unwrap());
        let mut k2 = u64::from_le_bytes(block[8..16].try_into().unwrap());

        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1.rotate_left(27);
        h1 = h1.wrapping_add(h2);
        h1 = h1.wrapping_mul(5).wrapping_add(0x52dc_e729);

        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
        h2 = h2.rotate_left(31);
        h2 = h2.wrapping_add(h1);
        h2 = h2.wrapping_mul(5).wrapping_add(0x3849_5ab5);
    }

    let tail = &data[nblocks * 16..];
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;
    // Process the 0-15 trailing bytes, mirroring the reference fallthrough
    // switch (bytes 15..9 feed k2, bytes 8..1 feed k1).
    for i in (8..tail.len()).rev() {
        k2 ^= (tail[i] as u64) << ((i - 8) * 8);
    }
    if tail.len() > 8 {
        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
    }
    for i in (0..tail.len().min(8)).rev() {
        k1 ^= (tail[i] as u64) << (i * 8);
    }
    if !tail.is_empty() {
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= data.len() as u64;
    h2 ^= data.len() as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    (h1, h2)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Canonical x86_32 test vectors (Appleby's reference implementation).
    #[test]
    fn x86_32_empty_input_vectors() {
        assert_eq!(murmur3_x86_32(b"", 0), 0);
        assert_eq!(murmur3_x86_32(b"", 1), 0x514e_28b7);
        assert_eq!(murmur3_x86_32(b"", 0xffff_ffff), 0x81f1_6f39);
    }

    #[test]
    fn x86_32_short_input_vectors() {
        assert_eq!(murmur3_x86_32(&[0xff, 0xff, 0xff, 0xff], 0), 0x7629_3b50);
        assert_eq!(murmur3_x86_32(&[0x21, 0x43, 0x65, 0x87], 0), 0xf55b_516b);
        assert_eq!(
            murmur3_x86_32(&[0x21, 0x43, 0x65, 0x87], 0x5082_edee),
            0x2362_f9de
        );
        assert_eq!(murmur3_x86_32(&[0x21, 0x43, 0x65], 0), 0x7e4a_8634);
        assert_eq!(murmur3_x86_32(&[0x21, 0x43], 0), 0xa0f7_b07a);
        assert_eq!(murmur3_x86_32(&[0x21], 0), 0x7266_1cf4);
        assert_eq!(murmur3_x86_32(&[0, 0, 0, 0], 0), 0x2362_f9de);
        assert_eq!(murmur3_x86_32(&[0, 0, 0], 0), 0x85f0_b427);
        assert_eq!(murmur3_x86_32(&[0, 0], 0), 0x30f4_c306);
        assert_eq!(murmur3_x86_32(&[0], 0), 0x514e_28b7);
    }

    #[test]
    fn fmix64_is_bijective_on_samples() {
        // A bijection never maps two distinct inputs to the same output;
        // sample a dense range and check injectivity.
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            assert!(seen.insert(fmix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn fmix64_zero_maps_to_zero() {
        // Known fixed point of the finalizer.
        assert_eq!(fmix64(0), 0);
    }

    #[test]
    fn hash_addr_seed_independence() {
        // Different seeds must decorrelate the same address.
        let a = hash_addr(0xdead_beef, 1);
        let b = hash_addr(0xdead_beef, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn x64_128_empty_is_zero_with_zero_seed() {
        assert_eq!(murmur3_x64_128(b"", 0), (0, 0));
    }

    #[test]
    fn x64_128_differs_across_inputs_and_seeds() {
        let h1 = murmur3_x64_128(b"hello", 0);
        let h2 = murmur3_x64_128(b"hellp", 0);
        let h3 = murmur3_x64_128(b"hello", 1);
        assert_ne!(h1, h2);
        assert_ne!(h1, h3);
    }

    #[test]
    fn x64_128_tail_lengths_all_distinct() {
        // Exercise every tail length 0..=16 and ensure no accidental
        // collisions among the prefixes of a fixed buffer.
        let buf: Vec<u8> = (0u8..33).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=buf.len() {
            assert!(seen.insert(murmur3_x64_128(&buf[..len], 7)));
        }
    }

    #[test]
    fn fmix64_x4_matches_scalar_lanes() {
        let inputs = [0u64, 1, 0xdead_beef, u64::MAX];
        let out = fmix64_x4(inputs);
        for (i, k) in inputs.iter().enumerate() {
            assert_eq!(out[i], fmix64(*k), "lane {i}");
        }
    }

    #[test]
    fn hash_block_matches_scalar_at_every_length() {
        // Every remainder shape (0..LANES-1 trailing lanes) plus empty.
        for len in 0..=(3 * HASH_BLOCK_LANES + 3) {
            let addrs: Vec<u64> = (0..len as u64)
                .map(|i| i.wrapping_mul(0x9e37) ^ 0x1000)
                .collect();
            let mut out = vec![0u64; len];
            hash_block(&addrs, &mut out);
            for (i, a) in addrs.iter().enumerate() {
                assert_eq!(out[i], fmix64(*a), "len {len} lane {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn hash_block_rejects_mismatched_slices() {
        let mut out = vec![0u64; 3];
        hash_block(&[1, 2], &mut out);
    }

    #[test]
    fn x86_32_longer_ascii_vector() {
        // "Hello, world!" with seed 0 — widely replicated vector.
        assert_eq!(murmur3_x86_32(b"Hello, world!", 0), 0xc036_3e43);
    }
}
