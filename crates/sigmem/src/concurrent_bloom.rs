//! Lock-free Bloom filter storing reader-thread sets.
//!
//! One instance of this filter hangs off each occupied first-level slot of
//! the read signature (Fig. 3a of the paper). It records *which threads*
//! have read the addresses mapping to that slot. Because the number of
//! distinct elements ever inserted is bounded by the thread count `t`, the
//! paper notes "it is guaranteed that the false positive rate does not go
//! beyond the threshold limit" (§IV-D2) — the filter is sized for exactly
//! `t` elements at the user's requested rate.

use crate::atomic_bits::AtomicBitVec;
use crate::bloom::{derived_from, hash_pair, optimal_bits, optimal_hashes};

/// Largest block size (in bits) a filter is carved into: one 64-byte cache
/// line. All `k` probes of one operation land inside a single block, so an
/// insert or query touches exactly one line of filter storage no matter how
/// large the filter grows (the cache-line-local Bloom layout; DESIGN.md §12).
pub const BLOOM_BLOCK_BITS: usize = 512;

/// Geometry shared by every second-level filter of one read signature.
///
/// Filters are **blocked**: `m_bits` is split into `m_bits / block_bits`
/// contiguous blocks of `block_bits` bits each (`block_bits` is a power of
/// two ≤ [`BLOOM_BLOCK_BITS`], so in-block reduction is a mask, not a
/// division). An item's block is chosen from the high bits of its first
/// base hash; its `k` probe bits stride within that one block
/// (Kirsch–Mitzenmacher on the base pair). Filters no larger than one
/// block (every configuration with `threads` ≲ 35 at the paper's 0.001
/// rate) degenerate to a classic single-block filter — and because the
/// in-block mask equals `% m_bits` for power-of-two sizes, those
/// geometries keep the exact bit layout of the pre-blocking
/// implementation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BloomGeometry {
    /// Bits per filter (a multiple of `block_bits`).
    pub m_bits: usize,
    /// Hash functions per query.
    pub k: usize,
    /// Bits per cache-line-local block (power of two, ≤ 512).
    pub block_bits: usize,
}

impl BloomGeometry {
    /// Size a filter for `threads` potential members at `fp_rate`.
    ///
    /// The classic optimum `m` is rounded up to a power of two while it
    /// fits one block (so the in-block mask is exact), then to whole
    /// [`BLOOM_BLOCK_BITS`] blocks beyond that. Rounding only ever *adds*
    /// bits, so the configured false-positive rate stays an upper bound on
    /// the per-block design point.
    pub fn for_threads(threads: usize, fp_rate: f64) -> Self {
        let ideal = optimal_bits(threads, fp_rate); // word-rounded, ≥ 64
        let (m_bits, block_bits) = if ideal <= BLOOM_BLOCK_BITS {
            let b = ideal.next_power_of_two();
            (b, b)
        } else {
            (
                ideal.div_ceil(BLOOM_BLOCK_BITS) * BLOOM_BLOCK_BITS,
                BLOOM_BLOCK_BITS,
            )
        };
        Self {
            m_bits,
            k: optimal_hashes(m_bits, threads),
            block_bits,
        }
    }

    /// Heap bytes one filter of this geometry occupies.
    pub fn bytes_per_filter(&self) -> usize {
        self.m_bits / 8
    }

    /// 64-bit words per filter.
    pub fn words_per_filter(&self) -> usize {
        self.m_bits / 64
    }

    /// Number of cache-line-local blocks per filter.
    pub fn blocks(&self) -> usize {
        self.m_bits / self.block_bits
    }

    /// The bit index probe `i` of an item with base hashes `(ha, hb)`
    /// tests — the single definition of the probe schedule, shared by the
    /// concurrent filter, the arena-backed read signature and the
    /// sequential blocked reference so they can never disagree.
    #[inline]
    pub fn probe_bit(&self, ha: u64, hb: u64, i: usize) -> usize {
        // High bits pick the block (decorrelated from the in-block bits,
        // which come from the low end of the derived hashes); the mask is
        // exact because block_bits is a power of two.
        let block = if self.m_bits > self.block_bits {
            (ha >> 32) as usize % self.blocks()
        } else {
            0
        };
        block * self.block_bits + (derived_from(ha, hb, i) as usize & (self.block_bits - 1))
    }
}

/// A concurrent Bloom filter over small integer items (thread ids).
#[derive(Debug)]
pub struct ConcurrentBloom {
    bits: AtomicBitVec,
    geometry: BloomGeometry,
}

impl ConcurrentBloom {
    /// Create an empty filter with the given geometry.
    pub fn new(geometry: BloomGeometry) -> Self {
        Self {
            bits: AtomicBitVec::new(geometry.m_bits),
            geometry,
        }
    }

    /// Insert an item (typically a thread id). Lock-free.
    #[inline]
    pub fn insert(&self, item: u64) {
        let (ha, hb) = hash_pair(item);
        self.insert_hashed(ha, hb);
    }

    /// [`Self::insert`] with the item's base hash pair precomputed (two
    /// `fmix64` per *item*, not per probe — see [`crate::bloom::hash_pair`]).
    #[inline]
    pub fn insert_hashed(&self, ha: u64, hb: u64) {
        for i in 0..self.geometry.k {
            self.bits.set(self.geometry.probe_bit(ha, hb, i));
        }
    }

    /// Query membership. May return false positives, never false negatives
    /// for items whose `insert` happened-before this call.
    #[inline]
    pub fn contains(&self, item: u64) -> bool {
        let (ha, hb) = hash_pair(item);
        self.contains_hashed(ha, hb)
    }

    /// [`Self::contains`] with the item's base hash pair precomputed.
    #[inline]
    pub fn contains_hashed(&self, ha: u64, hb: u64) -> bool {
        (0..self.geometry.k).all(|i| self.bits.get(self.geometry.probe_bit(ha, hb, i)))
    }

    /// Reset the filter to empty. Races with concurrent inserts are benign:
    /// an insert overlapping a clear may survive or vanish, mirroring the
    /// unsynchronized write/read ordering of the profiled program itself.
    pub fn clear(&self) {
        self.bits.clear();
    }

    /// Geometry of this filter.
    pub fn geometry(&self) -> BloomGeometry {
        self.geometry
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bits.memory_bytes()
    }

    /// Set-bit count, for saturation diagnostics.
    pub fn ones(&self) -> usize {
        self.bits.count_ones()
    }

    /// Fraction of bits set — the filter's *saturation* in `[0, 1]`.
    ///
    /// O(m/64) popcount; a scrape-time diagnostic, not a hot-path call.
    pub fn fill(&self) -> f64 {
        self.ones() as f64 / self.geometry.m_bits as f64
    }

    /// Estimated live false-positive probability from the observed
    /// saturation: a query tests `k` independent bits, so
    /// `P(false hit) ≈ fill^k`. This is the online counterpart of
    /// [`crate::bloom::theoretical_fp_rate`], driven by the actual bit
    /// state instead of the insertion count.
    pub fn est_fp_rate(&self) -> f64 {
        self.fill().powi(self.geometry.k as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn geom() -> BloomGeometry {
        BloomGeometry::for_threads(32, 0.001)
    }

    #[test]
    fn geometry_matches_sequential_sizing() {
        let g = geom();
        assert_eq!(g.m_bits, optimal_bits(32, 0.001));
        assert_eq!(g.k, optimal_hashes(g.m_bits, 32));
        assert_eq!(g.bytes_per_filter() * 8, g.m_bits);
    }

    #[test]
    fn insert_then_contains() {
        let f = ConcurrentBloom::new(geom());
        for tid in 0..32u64 {
            assert!(!f.contains(tid));
            f.insert(tid);
            assert!(f.contains(tid));
        }
    }

    #[test]
    fn clear_empties() {
        let f = ConcurrentBloom::new(geom());
        f.insert(5);
        f.clear();
        assert!(!f.contains(5));
        assert_eq!(f.ones(), 0);
    }

    #[test]
    fn concurrent_inserts_preserve_membership() {
        let f = Arc::new(ConcurrentBloom::new(geom()));
        let mut handles = Vec::new();
        for tid in 0..16u64 {
            let f = Arc::clone(&f);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    f.insert(tid);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for tid in 0..16u64 {
            assert!(f.contains(tid));
        }
    }

    #[test]
    fn fill_and_est_fp_track_saturation() {
        let f = ConcurrentBloom::new(geom());
        assert_eq!(f.fill(), 0.0);
        assert_eq!(f.est_fp_rate(), 0.0);
        for tid in 0..32u64 {
            f.insert(tid);
        }
        let fill = f.fill();
        assert!(fill > 0.0 && fill < 1.0);
        assert_eq!(
            f.ones(),
            (fill * f.geometry().m_bits as f64).round() as usize
        );
        // Sized for 32 members at 0.001: the live estimate should sit near
        // the design point (same formula, observed bits).
        let est = f.est_fp_rate();
        assert!(est > 0.0 && est < 0.01, "est {est}");
    }

    #[test]
    fn bounded_membership_keeps_fp_low() {
        // With at most t = 32 members, probing ids far outside the inserted
        // range should almost never hit at fp = 0.001.
        let f = ConcurrentBloom::new(geom());
        for tid in 0..32u64 {
            f.insert(tid);
        }
        let fps = (1000..11_000u64).filter(|p| f.contains(*p)).count();
        assert!(fps < 100, "false positives: {fps} / 10000");
    }
}
