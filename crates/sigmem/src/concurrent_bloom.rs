//! Lock-free Bloom filter storing reader-thread sets.
//!
//! One instance of this filter hangs off each occupied first-level slot of
//! the read signature (Fig. 3a of the paper). It records *which threads*
//! have read the addresses mapping to that slot. Because the number of
//! distinct elements ever inserted is bounded by the thread count `t`, the
//! paper notes "it is guaranteed that the false positive rate does not go
//! beyond the threshold limit" (§IV-D2) — the filter is sized for exactly
//! `t` elements at the user's requested rate.

use crate::atomic_bits::AtomicBitVec;
use crate::bloom::{derived_hash, optimal_bits, optimal_hashes};

/// Geometry shared by every second-level filter of one read signature.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BloomGeometry {
    /// Bits per filter.
    pub m_bits: usize,
    /// Hash functions per query.
    pub k: usize,
}

impl BloomGeometry {
    /// Size a filter for `threads` potential members at `fp_rate`.
    pub fn for_threads(threads: usize, fp_rate: f64) -> Self {
        let m_bits = optimal_bits(threads, fp_rate);
        let k = optimal_hashes(m_bits, threads);
        Self { m_bits, k }
    }

    /// Heap bytes one filter of this geometry occupies.
    pub fn bytes_per_filter(&self) -> usize {
        self.m_bits / 8
    }
}

/// A concurrent Bloom filter over small integer items (thread ids).
#[derive(Debug)]
pub struct ConcurrentBloom {
    bits: AtomicBitVec,
    geometry: BloomGeometry,
}

impl ConcurrentBloom {
    /// Create an empty filter with the given geometry.
    pub fn new(geometry: BloomGeometry) -> Self {
        Self {
            bits: AtomicBitVec::new(geometry.m_bits),
            geometry,
        }
    }

    /// Insert an item (typically a thread id). Lock-free.
    #[inline]
    pub fn insert(&self, item: u64) {
        let m = self.bits.len() as u64;
        for i in 0..self.geometry.k {
            self.bits.set((derived_hash(item, i) % m) as usize);
        }
    }

    /// Query membership. May return false positives, never false negatives
    /// for items whose `insert` happened-before this call.
    #[inline]
    pub fn contains(&self, item: u64) -> bool {
        let m = self.bits.len() as u64;
        (0..self.geometry.k).all(|i| self.bits.get((derived_hash(item, i) % m) as usize))
    }

    /// Reset the filter to empty. Races with concurrent inserts are benign:
    /// an insert overlapping a clear may survive or vanish, mirroring the
    /// unsynchronized write/read ordering of the profiled program itself.
    pub fn clear(&self) {
        self.bits.clear();
    }

    /// Geometry of this filter.
    pub fn geometry(&self) -> BloomGeometry {
        self.geometry
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bits.memory_bytes()
    }

    /// Set-bit count, for saturation diagnostics.
    pub fn ones(&self) -> usize {
        self.bits.count_ones()
    }

    /// Fraction of bits set — the filter's *saturation* in `[0, 1]`.
    ///
    /// O(m/64) popcount; a scrape-time diagnostic, not a hot-path call.
    pub fn fill(&self) -> f64 {
        self.ones() as f64 / self.geometry.m_bits as f64
    }

    /// Estimated live false-positive probability from the observed
    /// saturation: a query tests `k` independent bits, so
    /// `P(false hit) ≈ fill^k`. This is the online counterpart of
    /// [`crate::bloom::theoretical_fp_rate`], driven by the actual bit
    /// state instead of the insertion count.
    pub fn est_fp_rate(&self) -> f64 {
        self.fill().powi(self.geometry.k as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn geom() -> BloomGeometry {
        BloomGeometry::for_threads(32, 0.001)
    }

    #[test]
    fn geometry_matches_sequential_sizing() {
        let g = geom();
        assert_eq!(g.m_bits, optimal_bits(32, 0.001));
        assert_eq!(g.k, optimal_hashes(g.m_bits, 32));
        assert_eq!(g.bytes_per_filter() * 8, g.m_bits);
    }

    #[test]
    fn insert_then_contains() {
        let f = ConcurrentBloom::new(geom());
        for tid in 0..32u64 {
            assert!(!f.contains(tid));
            f.insert(tid);
            assert!(f.contains(tid));
        }
    }

    #[test]
    fn clear_empties() {
        let f = ConcurrentBloom::new(geom());
        f.insert(5);
        f.clear();
        assert!(!f.contains(5));
        assert_eq!(f.ones(), 0);
    }

    #[test]
    fn concurrent_inserts_preserve_membership() {
        let f = Arc::new(ConcurrentBloom::new(geom()));
        let mut handles = Vec::new();
        for tid in 0..16u64 {
            let f = Arc::clone(&f);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    f.insert(tid);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for tid in 0..16u64 {
            assert!(f.contains(tid));
        }
    }

    #[test]
    fn fill_and_est_fp_track_saturation() {
        let f = ConcurrentBloom::new(geom());
        assert_eq!(f.fill(), 0.0);
        assert_eq!(f.est_fp_rate(), 0.0);
        for tid in 0..32u64 {
            f.insert(tid);
        }
        let fill = f.fill();
        assert!(fill > 0.0 && fill < 1.0);
        assert_eq!(
            f.ones(),
            (fill * f.geometry().m_bits as f64).round() as usize
        );
        // Sized for 32 members at 0.001: the live estimate should sit near
        // the design point (same formula, observed bits).
        let est = f.est_fp_rate();
        assert!(est > 0.0 && est < 0.01, "est {est}");
    }

    #[test]
    fn bounded_membership_keeps_fp_low() {
        // With at most t = 32 members, probing ids far outside the inserted
        // range should almost never hit at fp = 0.001.
        let f = ConcurrentBloom::new(geom());
        for tid in 0..32u64 {
            f.insert(tid);
        }
        let fps = (1000..11_000u64).filter(|p| f.contains(*p)).count();
        assert!(fps < 100, "false positives: {fps} / 10000");
    }
}
