//! Sync-primitive facade for the concurrency core.
//!
//! With the `sched` feature the signature memory's atomics come from
//! [`lc_sched::sync`], whose operations are scheduler decision points
//! inside a deterministic simulation and plain std atomics otherwise.
//! Without the feature this module IS `std::sync::atomic` — zero cost,
//! zero behavior change. Mirrors how `shims/` stands in for crossbeam
//! and parking_lot: swap the provider, keep the call sites.

#[cfg(feature = "sched")]
pub use lc_sched::sync::{AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};

#[cfg(not(feature = "sched"))]
pub use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};
