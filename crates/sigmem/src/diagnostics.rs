//! Signature-health diagnostics — estimating the live aliasing risk.
//!
//! §IV-D2: "the accuracy of the algorithm decreases when the size of the
//! signature decreases. Hence, the size of the signature is a trade-off
//! between memory consumption and accuracy." Users tune `n_slots` against
//! an *unknown* address footprint; these estimators turn observable state
//! (slot occupancy) into the expected collision rate, so a profiling run
//! can report whether its own configuration was adequate — without a
//! perfect-signature reference run.

use crate::read_signature::ReadSignature;
use crate::write_signature::WriteSignature;

/// Expected fraction of occupied slots after hashing `items` distinct keys
/// into `slots` slots uniformly: `1 − e^(−items/slots)`.
pub fn expected_occupancy(items: usize, slots: usize) -> f64 {
    assert!(slots > 0);
    1.0 - (-(items as f64) / slots as f64).exp()
}

/// Invert [`expected_occupancy`]: estimate how many distinct addresses were
/// hashed given the observed occupied-slot fraction.
pub fn estimate_distinct_items(occupied: usize, slots: usize) -> f64 {
    assert!(slots > 0 && occupied <= slots);
    let frac = occupied as f64 / slots as f64;
    if frac >= 1.0 {
        return f64::INFINITY;
    }
    -(slots as f64) * (1.0 - frac).ln()
}

/// Probability that a *new* distinct address aliases an already-occupied
/// slot — the per-address collision (false-sharing-of-slots) risk the
/// §V-A3 sweep measures end to end.
pub fn aliasing_probability(occupied: usize, slots: usize) -> f64 {
    assert!(slots > 0);
    occupied as f64 / slots as f64
}

/// Online summary of second-level Bloom saturation across a sample of a
/// read signature's allocated filters — the live counterpart of the §V-A3
/// sweep's offline FPR measurement.
#[derive(Clone, Copy, Debug, Default)]
pub struct BloomSaturation {
    /// How many allocated filters were popcounted.
    pub filters_sampled: usize,
    /// Mean fraction of set bits across sampled filters.
    pub mean_fill: f64,
    /// Worst (largest) fill seen in the sample.
    pub max_fill: f64,
    /// Mean estimated false-positive probability (`fill^k` per filter).
    pub est_fp_rate: f64,
}

/// How many filters [`SignatureHealth::inspect`] popcounts per scrape.
/// Bounds scrape cost on huge signatures while keeping the sample
/// statistically meaningful.
pub const BLOOM_SAMPLE_CAP: usize = 256;

/// A point-in-time health report for one signature pair.
#[derive(Clone, Copy, Debug)]
pub struct SignatureHealth {
    /// First-level slots.
    pub slots: usize,
    /// Occupied write-signature slots.
    pub write_occupied: usize,
    /// Allocated read-signature filters.
    pub read_filters: usize,
    /// Estimated distinct written addresses (occupancy inversion).
    pub est_written_addresses: f64,
    /// Probability the next fresh address aliases an existing writer slot.
    pub write_aliasing: f64,
    /// Online Bloom saturation sampled from the read signature.
    pub read_bloom: BloomSaturation,
}

impl SignatureHealth {
    /// Gather health from a live signature pair.
    pub fn inspect(read: &ReadSignature, write: &WriteSignature) -> Self {
        let slots = write.n_slots();
        let write_occupied = write.occupied();
        Self {
            slots,
            write_occupied,
            read_filters: read.allocated_filters(),
            est_written_addresses: estimate_distinct_items(write_occupied, slots),
            write_aliasing: aliasing_probability(write_occupied, slots),
            read_bloom: read.bloom_saturation(BLOOM_SAMPLE_CAP),
        }
    }

    /// Rule of thumb: aliasing above this means the matrix is materially
    /// distorted (the §V-A3 sweep shows L1 error ≈ aliasing level).
    pub const ALIASING_WARN: f64 = 0.10;

    /// Should the user re-run with more slots?
    pub fn needs_more_slots(&self) -> bool {
        self.write_aliasing > Self::ALIASING_WARN
    }

    /// Suggested slot count to bring aliasing under `target` for the
    /// estimated footprint (rounded up to a power of two).
    pub fn suggested_slots(&self, target: f64) -> usize {
        assert!(target > 0.0 && target < 1.0);
        if !self.est_written_addresses.is_finite() {
            return (self.slots * 16).next_power_of_two();
        }
        // occupancy ≈ 1 − e^(−n/slots) ≤ target  ⇒  slots ≥ n / −ln(1−target)
        let needed = self.est_written_addresses / -(1.0 - target).ln();
        (needed.ceil() as usize).max(1).next_power_of_two()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{ReaderSet, WriterMap};

    #[test]
    fn occupancy_model_roundtrips() {
        let slots = 1 << 14;
        for items in [100usize, 1000, 8000] {
            let occ = (expected_occupancy(items, slots) * slots as f64) as usize;
            let est = estimate_distinct_items(occ, slots);
            let rel = (est - items as f64).abs() / items as f64;
            assert!(rel < 0.02, "items {items}: est {est}");
        }
    }

    #[test]
    fn occupancy_extremes() {
        assert_eq!(expected_occupancy(0, 64), 0.0);
        assert!(expected_occupancy(1_000_000, 64) > 0.999);
        assert_eq!(estimate_distinct_items(0, 64), 0.0);
        assert!(estimate_distinct_items(64, 64).is_infinite());
    }

    #[test]
    fn health_inspection_tracks_real_usage() {
        let slots = 1 << 12;
        let read = ReadSignature::new(slots, 8, 0.001);
        let write = WriteSignature::new(slots);
        for a in 0..300u64 {
            write.record(a * 64, 0);
            read.insert(a * 64, 1);
        }
        let h = SignatureHealth::inspect(&read, &write);
        assert!(h.write_occupied > 0 && h.write_occupied <= 300);
        // ~300 distinct addresses estimated within 15%.
        assert!(
            (h.est_written_addresses - 300.0).abs() < 45.0,
            "estimate {}",
            h.est_written_addresses
        );
        // 300/4096 ≈ 7% occupancy: comfortably under the warn threshold.
        assert!(!h.needs_more_slots(), "aliasing {}", h.write_aliasing);
        // One reader per filter: every sampled filter is lightly filled.
        assert!(h.read_bloom.filters_sampled > 0);
        assert!(h.read_bloom.mean_fill > 0.0 && h.read_bloom.mean_fill < 0.5);
        assert!(h.read_bloom.max_fill >= h.read_bloom.mean_fill);
        assert!(h.read_bloom.est_fp_rate < 0.01);
    }

    #[test]
    fn bloom_saturation_sample_cap_is_respected() {
        let read = ReadSignature::new(1 << 12, 8, 0.001);
        for a in 0..4000u64 {
            read.insert(a * 64, (a % 8) as u32);
        }
        let sat = read.bloom_saturation(16);
        assert_eq!(sat.filters_sampled, 16);
        let empty = ReadSignature::new(64, 8, 0.001).bloom_saturation(16);
        assert_eq!(empty.filters_sampled, 0);
        assert_eq!(empty.mean_fill, 0.0);
        assert_eq!(empty.est_fp_rate, 0.0);
    }

    #[test]
    fn undersized_signature_is_flagged_with_a_useful_suggestion() {
        let slots = 256;
        let read = ReadSignature::new(slots, 8, 0.01);
        let write = WriteSignature::new(slots);
        for a in 0..5_000u64 {
            write.record(a * 8, 0);
        }
        let h = SignatureHealth::inspect(&read, &write);
        assert!(h.needs_more_slots());
        let suggested = h.suggested_slots(0.05);
        assert!(suggested > slots * 8, "suggested {suggested}");
        assert!(suggested.is_power_of_two());
    }

    #[test]
    fn aliasing_probability_is_occupancy() {
        assert_eq!(aliasing_probability(32, 64), 0.5);
        assert_eq!(aliasing_probability(0, 64), 0.0);
    }
}
