//! Hash-once slot routing — the single definition of "which signature slot
//! does this address live in".
//!
//! Both signature halves index their first-level slot arrays with
//! `fmix64(addr) % n_slots` (§IV-D2's MurmurHash indexing). The parallel
//! replay partitioner must agree with that mapping *exactly*: slot-sharded
//! replay is lossless only because every event that can touch a given slot
//! is routed to the same worker (DESIGN.md §10). Centralizing the mapping
//! here makes divergence a compile-time impossibility rather than a test
//! failure, and lets callers that need both the slot and the worker derive
//! them from one `fmix64` evaluation instead of two.

use crate::murmur::fmix64;
use crate::sync::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

/// The slot an address maps to in an `n_slots`-entry signature.
///
/// This is the indexing function of both [`crate::ReadSignature`] and
/// [`crate::WriteSignature`]; they call it rather than re-deriving it.
#[inline]
pub fn slot_index(addr: u64, n_slots: usize) -> usize {
    slot_of_hash(fmix64(addr), n_slots)
}

/// The slot a *pre-hashed* address maps to: `h % n_slots` with a mask fast
/// path for power-of-two slot counts (`h & (n − 1)` equals `h % n` exactly
/// when `n` is a power of two, so the mapping is byte-identical either way).
///
/// This is the hashed half of [`slot_index`]; batched callers that already
/// paid for `fmix64` (via [`crate::murmur::hash_block`]) route through it
/// directly instead of re-hashing per consultation.
#[inline]
pub fn slot_of_hash(h: u64, n_slots: usize) -> usize {
    debug_assert!(n_slots >= 1);
    if n_slots.is_power_of_two() {
        (h & (n_slots as u64 - 1)) as usize
    } else {
        (h % n_slots as u64) as usize
    }
}

/// Hash-once router from addresses to signature slots and replay workers.
///
/// ```
/// use lc_sigmem::SlotRouter;
///
/// let router = SlotRouter::new(1 << 12);
/// let (slot, worker) = router.route(0xdead_beef, 4);
/// assert_eq!(slot, router.slot(0xdead_beef));
/// assert_eq!(worker, slot % 4);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotRouter {
    n_slots: usize,
}

impl SlotRouter {
    /// Router for an `n_slots`-entry signature pair.
    pub fn new(n_slots: usize) -> Self {
        assert!(n_slots >= 1);
        Self { n_slots }
    }

    /// First-level slot count.
    pub fn n_slots(&self) -> usize {
        self.n_slots
    }

    /// The signature slot `addr` maps to.
    #[inline]
    pub fn slot(&self, addr: u64) -> usize {
        slot_index(addr, self.n_slots)
    }

    /// The replay worker (of `jobs`) that owns `addr`'s slot. Workers own
    /// the residue classes `slot ≡ w (mod jobs)`, so all traffic to one
    /// slot lands on one worker.
    #[inline]
    pub fn worker(&self, addr: u64, jobs: usize) -> usize {
        debug_assert!(jobs >= 1);
        self.slot(addr) % jobs
    }

    /// Slot and worker from a single hash evaluation.
    #[inline]
    pub fn route(&self, addr: u64, jobs: usize) -> (usize, usize) {
        let slot = self.slot(addr);
        (slot, slot % jobs)
    }
}

/// Filters per arena segment. One segment allocation covers this many
/// consecutive slots, so a signature touching `f` slots performs at most
/// `⌈f / 64⌉`-ish allocations instead of `f`, and neighbouring slots' filter
/// bits live in one contiguous, 64-byte-aligned block of memory instead of
/// behind `f` independent heap pointers.
pub const ARENA_SEGMENT_FILTERS: usize = 64;

/// Words per 64-byte cache line of arena storage.
const WORDS_PER_LINE: usize = 8;

/// One 64-byte-aligned line of filter words. Alignment guarantees that a
/// power-of-two-sized filter (or one 512-bit block of a larger filter)
/// never straddles two cache lines — the property the blocked Bloom layout
/// exists to exploit.
#[repr(align(64))]
#[derive(Debug)]
struct Line {
    words: [AtomicU64; WORDS_PER_LINE],
}

impl Line {
    fn zeroed() -> Self {
        Self {
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Segmented arena backing the second-level filters of a read signature.
///
/// The previous layout hung one `Box<ConcurrentBloom>` off each occupied
/// slot: every filter was a separate heap object reached through a pointer
/// load, scattering the hot loop's working set across the allocator's whim
/// (DESIGN.md §12 measures the cost). The arena instead allocates filter
/// storage in segments of [`ARENA_SEGMENT_FILTERS`] consecutive slots —
/// one atomic-pointer indirection per *segment*, with every filter inside
/// a segment at a fixed, computable offset in one contiguous allocation.
///
/// Segments are allocated lazily on first insert and published with a
/// release-CAS, exactly like the per-slot pointers they replace (and
/// carrying the same `readsig-relaxed-publish` fault-mutant seam for the
/// model checker). A freshly published segment is all-zero, so an
/// untouched filter inside it behaves as an empty filter.
///
/// The trailing segment is sized to the leftover slot count (not rounded
/// up to a full segment), so `memory_bytes` stays a faithful upper bound
/// for small signatures too.
#[derive(Debug)]
pub struct FilterArena {
    segments: Box<[AtomicPtr<Line>]>,
    n_filters: usize,
    words_per_filter: usize,
    /// Filters in allocated segments — counted at segment grain on publish.
    allocated: AtomicUsize,
}

/// A borrowed view of one filter's words inside an allocated segment.
#[derive(Clone, Copy)]
pub struct FilterRef<'a> {
    lines: &'a [Line],
    first_word: usize,
    n_words: usize,
}

impl FilterRef<'_> {
    #[inline]
    fn word(&self, i: usize) -> &AtomicU64 {
        debug_assert!(i < self.n_words);
        let w = self.first_word + i;
        &self.lines[w / WORDS_PER_LINE].words[w % WORDS_PER_LINE]
    }

    /// Atomically set bit `bit` of this filter; returns the previous value.
    #[inline]
    pub fn set_bit(&self, bit: usize) -> bool {
        crate::atomic_bits::fetch_or_bit(self.word(bit / 64), 1u64 << (bit % 64))
    }

    /// Read bit `bit` of this filter.
    #[inline]
    pub fn get_bit(&self, bit: usize) -> bool {
        self.word(bit / 64).load(Ordering::Relaxed) & (1u64 << (bit % 64)) != 0
    }

    /// OR a whole probe `mask` into word `i`, skipping the RMW when every
    /// masked bit is already set. The final bit state is identical to
    /// setting each bit of the mask individually; the read-then-maybe-RMW
    /// shape trades one relaxed load for the (much more expensive) atomic
    /// on the common already-inserted path. A concurrent `clear` between
    /// the check and the skip mirrors the documented benign clear/insert
    /// race of the signature itself.
    #[inline]
    pub fn or_word_missing(&self, i: usize, mask: u64) {
        let w = self.word(i);
        if w.load(Ordering::Relaxed) & mask != mask {
            crate::atomic_bits::fetch_or_bit(w, mask);
        }
    }

    /// Whether every bit of `mask` is set in word `i`.
    #[inline]
    pub fn word_covers(&self, i: usize, mask: u64) -> bool {
        self.word(i).load(Ordering::Relaxed) & mask == mask
    }

    /// Zero every bit of this filter (and only this filter).
    pub fn clear(&self) {
        for i in 0..self.n_words {
            self.word(i).store(0, Ordering::Relaxed);
        }
    }

    /// Population count over this filter's words.
    pub fn count_ones(&self) -> usize {
        (0..self.n_words)
            .map(|i| self.word(i).load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Number of 64-bit words in this filter.
    pub fn n_words(&self) -> usize {
        self.n_words
    }

    /// Read word `i` — the checkpoint serialization path. A quiesced
    /// filter's words fully determine its membership answers.
    pub fn load_word(&self, i: usize) -> u64 {
        self.word(i).load(Ordering::Relaxed)
    }

    /// Overwrite word `i` — the checkpoint restore path (single-threaded
    /// by contract: restore happens before any profiling resumes).
    pub fn store_word(&self, i: usize, v: u64) {
        self.word(i).store(v, Ordering::Relaxed);
    }
}

impl FilterArena {
    /// Arena for `n_filters` filters of `words_per_filter` 64-bit words
    /// each. `words_per_filter` must be a power of two or a multiple of
    /// [`WORDS_PER_LINE`] words so filters never straddle a cache line
    /// boundary mid-block — both hold for every [`crate::BloomGeometry`].
    pub fn new(n_filters: usize, words_per_filter: usize) -> Self {
        assert!(n_filters > 0, "arena needs at least one filter");
        assert!(
            words_per_filter.is_power_of_two() || words_per_filter % WORDS_PER_LINE == 0,
            "filter size must be line-tileable, got {words_per_filter} words"
        );
        let n_segments = n_filters.div_ceil(ARENA_SEGMENT_FILTERS);
        let segments = (0..n_segments)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect();
        Self {
            segments,
            n_filters,
            words_per_filter,
            allocated: AtomicUsize::new(0),
        }
    }

    /// Number of filters the arena addresses.
    pub fn n_filters(&self) -> usize {
        self.n_filters
    }

    /// Filters covered by segment `seg` (the last segment may be short).
    #[inline]
    fn seg_filters(&self, seg: usize) -> usize {
        ARENA_SEGMENT_FILTERS.min(self.n_filters - seg * ARENA_SEGMENT_FILTERS)
    }

    /// Lines one segment of `filters` filters occupies.
    #[inline]
    fn seg_lines(&self, filters: usize) -> usize {
        (filters * self.words_per_filter).div_ceil(WORDS_PER_LINE)
    }

    fn alloc_segment(&self, filters: usize) -> *mut Line {
        let lines: Box<[Line]> = (0..self.seg_lines(filters))
            .map(|_| Line::zeroed())
            .collect();
        Box::into_raw(lines) as *mut Line
    }

    #[inline]
    fn filter_at<'a>(&self, lines: &'a [Line], filter: usize) -> FilterRef<'a> {
        FilterRef {
            lines,
            first_word: (filter % ARENA_SEGMENT_FILTERS) * self.words_per_filter,
            n_words: self.words_per_filter,
        }
    }

    /// The filter for slot `filter`, if its segment has been allocated.
    #[inline]
    pub fn filter(&self, filter: usize) -> Option<FilterRef<'_>> {
        debug_assert!(filter < self.n_filters);
        let seg = filter / ARENA_SEGMENT_FILTERS;
        let p = self.segments[seg].load(Ordering::Acquire);
        if p.is_null() {
            return None;
        }
        // Safety: a non-null segment pointer was published by a release-CAS
        // after full construction and is never freed before `self` drops.
        let lines = unsafe { std::slice::from_raw_parts(p, self.seg_lines(self.seg_filters(seg))) };
        Some(self.filter_at(lines, filter))
    }

    /// The filter for slot `filter`, allocating (and racing to publish) its
    /// segment if absent. The losing allocation of a publish race is freed
    /// immediately.
    pub fn filter_or_alloc(&self, filter: usize) -> FilterRef<'_> {
        debug_assert!(filter < self.n_filters);
        let seg = filter / ARENA_SEGMENT_FILTERS;
        let seg_filters = self.seg_filters(seg);
        let slot = &self.segments[seg];
        // Fault mutant for the model checker: publish and consume the
        // segment pointer with `Relaxed` instead of release/acquire. Under
        // real hardware a consumer could then observe the pointer before
        // the segment's zeroed contents; the scheduler's vector-clock birth
        // check reports exactly that missing happens-before edge
        // (DESIGN.md §11).
        #[cfg(feature = "sched")]
        if lc_sched::mutant_active("readsig-relaxed-publish") {
            let p = slot.load(Ordering::Relaxed);
            if !p.is_null() {
                // Safety: mutant mirrors the correct path's lifetime rules.
                let lines = unsafe { std::slice::from_raw_parts(p, self.seg_lines(seg_filters)) };
                return self.filter_at(lines, filter);
            }
            let fresh = self.alloc_segment(seg_filters);
            let winner = match slot.compare_exchange(
                std::ptr::null_mut(),
                fresh,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.allocated.fetch_add(seg_filters, Ordering::Relaxed);
                    fresh
                }
                Err(winner) => {
                    // Safety: `fresh` was never shared; reclaim it.
                    drop(unsafe {
                        Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                            fresh,
                            self.seg_lines(seg_filters),
                        ))
                    });
                    winner
                }
            };
            // Safety: `winner` is the published pointer.
            let lines = unsafe { std::slice::from_raw_parts(winner, self.seg_lines(seg_filters)) };
            return self.filter_at(lines, filter);
        }
        let p = slot.load(Ordering::Acquire);
        let winner = if !p.is_null() {
            p
        } else {
            let fresh = self.alloc_segment(seg_filters);
            match slot.compare_exchange(
                std::ptr::null_mut(),
                fresh,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.allocated.fetch_add(seg_filters, Ordering::Relaxed);
                    fresh
                }
                Err(winner) => {
                    // Safety: `fresh` was never shared; reclaim it.
                    drop(unsafe {
                        Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                            fresh,
                            self.seg_lines(seg_filters),
                        ))
                    });
                    winner
                }
            }
        };
        // Safety: published pointers stay valid until `self` drops.
        let lines = unsafe { std::slice::from_raw_parts(winner, self.seg_lines(seg_filters)) };
        self.filter_at(lines, filter)
    }

    /// Prefetch the first cache line of slot `filter`'s storage into L1.
    /// A hint only: a no-op for unallocated segments and on non-x86 targets.
    #[inline]
    pub fn prefetch(&self, filter: usize) {
        debug_assert!(filter < self.n_filters);
        #[cfg(target_arch = "x86_64")]
        {
            let seg = filter / ARENA_SEGMENT_FILTERS;
            let p = self.segments[seg].load(Ordering::Acquire);
            if !p.is_null() {
                let w = (filter % ARENA_SEGMENT_FILTERS) * self.words_per_filter;
                // Safety: in-bounds line of a published segment; prefetch
                // has no memory effects beyond the cache.
                unsafe {
                    std::arch::x86_64::_mm_prefetch(
                        p.add(w / WORDS_PER_LINE) as *const i8,
                        std::arch::x86_64::_MM_HINT_T0,
                    );
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = filter;
    }

    /// Filters whose segment has been allocated (segment-grain accounting:
    /// publishing one segment counts all the filters it covers, touched or
    /// not — they all consume memory from that point on).
    pub fn allocated_filters(&self) -> usize {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Heap footprint: one production-sized (8-byte) pointer per segment
    /// plus the filter words of every allocated segment. The literal 8
    /// keeps the figure matching Eq. 2 even when the `sched` feature swaps
    /// in the (physically larger) instrumented shim atomics.
    pub fn memory_bytes(&self) -> usize {
        self.segments.len() * 8 + self.allocated_filters() * self.words_per_filter * 8
    }
}

impl Drop for FilterArena {
    fn drop(&mut self) {
        for seg in 0..self.segments.len() {
            let p = self.segments[seg].swap(std::ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                let lines = self.seg_lines(self.seg_filters(seg));
                // Safety: sole owner at drop time; pointer came from
                // Box::into_raw of a `lines`-long boxed slice.
                drop(unsafe { Box::from_raw(std::ptr::slice_from_raw_parts_mut(p, lines)) });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_index_matches_signature_indexing() {
        // The canonical mapping, spelled out: any drift here breaks the
        // slot-sharded replay correctness argument.
        for addr in [0u64, 1, 0x1000, u64::MAX, 0xdead_beef] {
            assert_eq!(slot_index(addr, 1024), (fmix64(addr) % 1024) as usize);
        }
    }

    #[test]
    fn router_agrees_with_slot_index() {
        let r = SlotRouter::new(1 << 10);
        for addr in (0..1000u64).map(|i| i * 8 + 0x1000) {
            assert_eq!(r.slot(addr), slot_index(addr, 1 << 10));
            for jobs in 1..=8 {
                let (slot, worker) = r.route(addr, jobs);
                assert_eq!(slot, r.slot(addr));
                assert_eq!(worker, slot % jobs);
                assert_eq!(worker, r.worker(addr, jobs));
                assert!(worker < jobs);
            }
        }
    }

    #[test]
    fn one_job_routes_everything_to_worker_zero() {
        let r = SlotRouter::new(64);
        for addr in 0..100u64 {
            assert_eq!(r.worker(addr, 1), 0);
        }
    }

    #[test]
    fn slot_of_hash_mask_path_equals_modulo() {
        for h in [0u64, 1, 0xdead_beef, u64::MAX, 0x0123_4567_89ab_cdef] {
            for n in [1usize, 2, 64, 1 << 16, 3, 100, 1000, (1 << 16) - 1] {
                assert_eq!(
                    slot_of_hash(h, n),
                    (h % n as u64) as usize,
                    "h={h:#x} n={n}"
                );
            }
        }
    }

    #[test]
    fn arena_bits_roundtrip_within_and_across_filters() {
        let a = FilterArena::new(10, 2); // 2 words = 128-bit filters
        assert_eq!(a.allocated_filters(), 0);
        assert!(a.filter(3).is_none());
        let f3 = a.filter_or_alloc(3);
        assert!(!f3.get_bit(77));
        assert!(!f3.set_bit(77));
        assert!(f3.get_bit(77));
        assert!(f3.set_bit(77)); // second set reports previously-set
                                 // Neighbouring filter in the same segment is untouched.
        let f4 = a.filter_or_alloc(4);
        assert!(!f4.get_bit(77));
        assert_eq!(f3.count_ones(), 1);
        f3.clear();
        assert!(!f3.get_bit(77));
    }

    #[test]
    fn allocation_is_segment_grained_with_short_tail() {
        // 130 filters = two full segments + a 2-filter tail.
        let a = FilterArena::new(130, 1);
        a.filter_or_alloc(0);
        assert_eq!(a.allocated_filters(), ARENA_SEGMENT_FILTERS);
        a.filter_or_alloc(63); // same segment: no new allocation
        assert_eq!(a.allocated_filters(), ARENA_SEGMENT_FILTERS);
        a.filter_or_alloc(129); // the short tail segment
        assert_eq!(a.allocated_filters(), ARENA_SEGMENT_FILTERS + 2);
        assert_eq!(a.memory_bytes(), 3 * 8 + (ARENA_SEGMENT_FILTERS + 2) * 8);
    }

    #[test]
    fn arena_storage_is_line_aligned() {
        let a = FilterArena::new(ARENA_SEGMENT_FILTERS, 8); // 512-bit filters
        let f = a.filter_or_alloc(0);
        let base = f.word(0) as *const _ as usize;
        assert_eq!(base % 64, 0, "segment base not 64-byte aligned");
        // Filter 5 starts exactly 5 lines in: contiguous, computable
        // offsets. Stride in `size_of::<Line>()` units because the sched
        // sync shim inflates the atomics (64 B only on the real build).
        let f5 = a.filter_or_alloc(5);
        assert_eq!(
            f5.word(0) as *const _ as usize - base,
            5 * std::mem::size_of::<Line>()
        );
        #[cfg(not(feature = "sched"))]
        assert_eq!(std::mem::size_of::<Line>(), 64, "one line per cache line");
    }

    #[test]
    fn concurrent_alloc_race_publishes_one_segment() {
        use std::sync::Arc;
        let a = Arc::new(FilterArena::new(64, 1));
        let mut handles = Vec::new();
        for t in 0..8usize {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    a.filter_or_alloc(t * 7 % 64).set_bit(t);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.allocated_filters(), 64);
        for t in 0..8usize {
            assert!(a.filter(t * 7 % 64).unwrap().get_bit(t));
        }
    }
}
