//! Hash-once slot routing — the single definition of "which signature slot
//! does this address live in".
//!
//! Both signature halves index their first-level slot arrays with
//! `fmix64(addr) % n_slots` (§IV-D2's MurmurHash indexing). The parallel
//! replay partitioner must agree with that mapping *exactly*: slot-sharded
//! replay is lossless only because every event that can touch a given slot
//! is routed to the same worker (DESIGN.md §10). Centralizing the mapping
//! here makes divergence a compile-time impossibility rather than a test
//! failure, and lets callers that need both the slot and the worker derive
//! them from one `fmix64` evaluation instead of two.

use crate::murmur::fmix64;

/// The slot an address maps to in an `n_slots`-entry signature.
///
/// This is the indexing function of both [`crate::ReadSignature`] and
/// [`crate::WriteSignature`]; they call it rather than re-deriving it.
#[inline]
pub fn slot_index(addr: u64, n_slots: usize) -> usize {
    debug_assert!(n_slots >= 1);
    (fmix64(addr) % n_slots as u64) as usize
}

/// Hash-once router from addresses to signature slots and replay workers.
///
/// ```
/// use lc_sigmem::SlotRouter;
///
/// let router = SlotRouter::new(1 << 12);
/// let (slot, worker) = router.route(0xdead_beef, 4);
/// assert_eq!(slot, router.slot(0xdead_beef));
/// assert_eq!(worker, slot % 4);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotRouter {
    n_slots: usize,
}

impl SlotRouter {
    /// Router for an `n_slots`-entry signature pair.
    pub fn new(n_slots: usize) -> Self {
        assert!(n_slots >= 1);
        Self { n_slots }
    }

    /// First-level slot count.
    pub fn n_slots(&self) -> usize {
        self.n_slots
    }

    /// The signature slot `addr` maps to.
    #[inline]
    pub fn slot(&self, addr: u64) -> usize {
        slot_index(addr, self.n_slots)
    }

    /// The replay worker (of `jobs`) that owns `addr`'s slot. Workers own
    /// the residue classes `slot ≡ w (mod jobs)`, so all traffic to one
    /// slot lands on one worker.
    #[inline]
    pub fn worker(&self, addr: u64, jobs: usize) -> usize {
        debug_assert!(jobs >= 1);
        self.slot(addr) % jobs
    }

    /// Slot and worker from a single hash evaluation.
    #[inline]
    pub fn route(&self, addr: u64, jobs: usize) -> (usize, usize) {
        let slot = self.slot(addr);
        (slot, slot % jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_index_matches_signature_indexing() {
        // The canonical mapping, spelled out: any drift here breaks the
        // slot-sharded replay correctness argument.
        for addr in [0u64, 1, 0x1000, u64::MAX, 0xdead_beef] {
            assert_eq!(slot_index(addr, 1024), (fmix64(addr) % 1024) as usize);
        }
    }

    #[test]
    fn router_agrees_with_slot_index() {
        let r = SlotRouter::new(1 << 10);
        for addr in (0..1000u64).map(|i| i * 8 + 0x1000) {
            assert_eq!(r.slot(addr), slot_index(addr, 1 << 10));
            for jobs in 1..=8 {
                let (slot, worker) = r.route(addr, jobs);
                assert_eq!(slot, r.slot(addr));
                assert_eq!(worker, slot % jobs);
                assert_eq!(worker, r.worker(addr, jobs));
                assert!(worker < jobs);
            }
        }
    }

    #[test]
    fn one_job_routes_everything_to_worker_zero() {
        let r = SlotRouter::new(64);
        for addr in 0..100u64 {
            assert_eq!(r.worker(addr, 1), 0);
        }
    }
}
