//! Lock-free fixed-size bit vector built on `AtomicU64` words.
//!
//! The concurrent Bloom filters of the read signature need a bit set that
//! many application threads mutate simultaneously without locks (the paper
//! uses "C++11 lock-free primitives for implementing signature memory
//! arrays", §IV-D3). Setting a bit is a `fetch_or`; reading is a plain load.
//!
//! Memory-ordering note: all operations use `Relaxed`. The signature memory
//! is an *approximate* set — a racy read that misses a concurrent insert is
//! indistinguishable from the benign reordering the paper's design already
//! tolerates, and no other memory is published through these bits. What is
//! NOT optional is the atomicity of `fetch_or` itself: a load+store split
//! loses concurrent inserts, which the `bitvec-lost-update` mutant below
//! demonstrates under the model checker (DESIGN.md §11).

use crate::sync::{AtomicU64, Ordering};

/// Atomically OR `mask` into `word`, returning whether any masked bit was
/// already set. The single definition of "set a signature bit", shared by
/// [`AtomicBitVec`] and the arena-backed filter storage of [`crate::slot`]
/// so the `bitvec-lost-update` fault mutant covers both.
#[inline]
pub(crate) fn fetch_or_bit(word: &AtomicU64, mask: u64) -> bool {
    // Fault mutant for the model checker: replace the atomic RMW with a
    // load+store pair, losing concurrent inserts. Only reachable inside a
    // simulation that asked for it; dead code otherwise.
    #[cfg(feature = "sched")]
    if lc_sched::mutant_active("bitvec-lost-update") {
        let prev = word.load(Ordering::Relaxed);
        word.store(prev | mask, Ordering::Relaxed);
        return prev & mask != 0;
    }
    word.fetch_or(mask, Ordering::Relaxed) & mask != 0
}

/// A fixed-size concurrent bit vector.
#[derive(Debug)]
pub struct AtomicBitVec {
    words: Box<[AtomicU64]>,
    n_bits: usize,
}

impl AtomicBitVec {
    /// Create a bit vector with `n_bits` bits, all zero. `n_bits` is rounded
    /// up to a multiple of 64.
    pub fn new(n_bits: usize) -> Self {
        let n_bits = n_bits.max(1).div_ceil(64) * 64;
        let words = (0..n_bits / 64).map(|_| AtomicU64::new(0)).collect();
        Self { words, n_bits }
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.n_bits
    }

    /// True when the vector has zero capacity (never: capacity ≥ 64).
    pub fn is_empty(&self) -> bool {
        self.n_bits == 0
    }

    /// Atomically set bit `i`, returning whether it was previously set.
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        debug_assert!(i < self.n_bits);
        fetch_or_bit(&self.words[i / 64], 1u64 << (i % 64))
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.n_bits);
        self.words[i / 64].load(Ordering::Relaxed) & (1u64 << (i % 64)) != 0
    }

    /// Zero every bit.
    pub fn clear(&self) {
        for w in self.words.iter() {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Population count across the whole vector.
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn set_get_roundtrip() {
        let v = AtomicBitVec::new(130);
        assert_eq!(v.len(), 192); // rounded to word multiple
        assert!(!v.get(129));
        assert!(!v.set(129));
        assert!(v.get(129));
        assert!(v.set(129)); // second set reports previously-set
    }

    #[test]
    fn clear_zeroes_everything() {
        let v = AtomicBitVec::new(64);
        for i in 0..64 {
            v.set(i);
        }
        assert_eq!(v.count_ones(), 64);
        v.clear();
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn concurrent_sets_all_land() {
        let v = Arc::new(AtomicBitVec::new(4096));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let v = Arc::clone(&v);
            handles.push(std::thread::spawn(move || {
                for i in 0..512 {
                    v.set((t * 512 + i) as usize);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(v.count_ones(), 4096);
    }

    #[test]
    fn minimum_capacity_is_one_word() {
        let v = AtomicBitVec::new(1);
        assert_eq!(v.len(), 64);
        assert_eq!(v.memory_bytes(), 8);
    }
}
