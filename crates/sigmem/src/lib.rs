//! # lc-sigmem — asymmetric software signature memory
//!
//! The data-structure substrate of the loop-level communication profiler
//! (Mazaheri et al., ICPP 2015, §IV-D2): a pair of fixed-size, lock-free
//! "signature memories" borrowed from transactional-memory systems that
//! record memory-access history in **bounded** space:
//!
//! * [`ReadSignature`] — two-level: MurmurHash-indexed slot array whose
//!   occupied slots point to Bloom filters holding reader-thread sets.
//! * [`WriteSignature`] — one-level: slot array of last-writer thread ids.
//! * [`PerfectReaderSet`] / [`PerfectWriterMap`] — the exact baseline used
//!   to quantify the signatures' false-positive rate (§V-A3).
//! * [`mem_model`] — the closed-form footprint model (Eq. 2).
//!
//! Everything is implemented from scratch: [`murmur`] is a reference
//! MurmurHash3 with canonical test vectors, [`bloom`]/[`concurrent_bloom`]
//! are classic Bloom filters with Kirsch–Mitzenmacher derived hashes.

#![warn(missing_docs)]

pub mod atomic_bits;
pub mod bloom;
pub mod concurrent_bloom;
pub mod diagnostics;
pub mod mem_model;
pub mod murmur;
pub mod perfect;
pub mod read_signature;
pub mod slot;
pub mod sync;
pub mod traits;
pub mod write_signature;

pub use bloom::{hash_pair, BlockedBloomFilter};
pub use concurrent_bloom::{BloomGeometry, ConcurrentBloom, BLOOM_BLOCK_BITS};
pub use diagnostics::{BloomSaturation, SignatureHealth};
pub use murmur::{hash_block, HASH_BLOCK_LANES};
pub use perfect::{PerfectReaderSet, PerfectWriterMap};
pub use read_signature::ReadSignature;
pub use slot::{slot_index, slot_of_hash, FilterArena, SlotRouter, ARENA_SEGMENT_FILTERS};
pub use traits::{ReaderSet, WriterMap};
pub use write_signature::WriteSignature;

/// Configuration for one asymmetric signature pair.
///
/// ```
/// use lc_sigmem::{ReaderSet, SignatureConfig, WriterMap};
///
/// let cfg = SignatureConfig::paper_default(1 << 12, 8);
/// let (read_sig, write_sig) = cfg.build();
///
/// write_sig.record(0x1000, 3);          // thread 3 wrote 0x1000
/// assert_eq!(write_sig.last_writer(0x1000), Some(3));
///
/// read_sig.insert(0x1000, 5);           // thread 5 read it
/// assert!(read_sig.contains(0x1000, 5));
/// assert!(!read_sig.contains(0x1000, 6));
///
/// // Eq. 2 predicts the bounded footprint for this configuration.
/// assert!(cfg.predicted_bytes() > 0.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SignatureConfig {
    /// First-level slot count for both signatures (the paper's `n`).
    pub n_slots: usize,
    /// Number of application threads (sizes the per-slot Bloom filters).
    pub threads: usize,
    /// Acceptable Bloom false-positive rate (paper default 0.001).
    pub fp_rate: f64,
}

impl SignatureConfig {
    /// The paper's experimental configuration scaled by `n_slots`:
    /// `FPRate = 0.001` (§V intro).
    pub fn paper_default(n_slots: usize, threads: usize) -> Self {
        Self {
            n_slots,
            threads,
            fp_rate: 0.001,
        }
    }

    /// Build the signature pair this configuration describes.
    pub fn build(&self) -> (ReadSignature, WriteSignature) {
        (
            ReadSignature::new(self.n_slots, self.threads, self.fp_rate),
            WriteSignature::new(self.n_slots),
        )
    }

    /// Eq. 2 prediction for this configuration, in bytes.
    pub fn predicted_bytes(&self) -> f64 {
        mem_model::paper_sig_mem_bytes(self.n_slots, self.threads, self.fp_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builds_matching_pair() {
        let cfg = SignatureConfig::paper_default(1 << 12, 8);
        let (r, w) = cfg.build();
        assert_eq!(r.n_slots(), 1 << 12);
        assert_eq!(w.n_slots(), 1 << 12);
        assert!(cfg.predicted_bytes() > 0.0);
    }
}
