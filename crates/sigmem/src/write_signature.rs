//! One-level write signature (Fig. 3b of the paper).
//!
//! A fixed array of `n` 4-byte slots indexed by a MurmurHash of the address.
//! Each slot stores "the last thread number which accessed the relevant
//! memory location" (§IV-D2). Distinct addresses hashing to the same slot
//! alias each other — this is the controlled false-positive source whose
//! rate §V-A3 sweeps against signature size.

use crate::slot::slot_of_hash;
use crate::sync::{AtomicU32, Ordering};
use crate::traits::WriterMap;

/// Sentinel meaning "no writer recorded"; thread ids are stored as `tid+1`.
const EMPTY: u32 = 0;

/// The one-level concurrent write signature.
#[derive(Debug)]
pub struct WriteSignature {
    slots: Box<[AtomicU32]>,
}

impl WriteSignature {
    /// Create a signature with `n_slots` slots (the paper's `n`, 4 bytes
    /// each — the `4` term of Eq. 2).
    pub fn new(n_slots: usize) -> Self {
        assert!(n_slots > 0, "signature needs at least one slot");
        let slots = (0..n_slots).map(|_| AtomicU32::new(EMPTY)).collect();
        Self { slots }
    }

    /// Slot index for an address (the shared routing of [`crate::slot`],
    /// so the replay partitioner can never disagree).
    #[inline]
    fn slot_index(&self, addr: u64) -> usize {
        crate::slot::slot_index(addr, self.slots.len())
    }

    /// Number of slots.
    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }

    /// How many slots currently hold a writer (diagnostic; O(n)).
    pub fn occupied(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.load(Ordering::Relaxed) != EMPTY)
            .count()
    }

    /// Snapshot every occupied slot as `(slot, raw value)`, slot-ascending.
    /// Raw values (`tid + 1`) round-trip exactly; empty slots are omitted
    /// — the checkpoint serialization contract.
    pub fn snapshot_slots(&self) -> Vec<(u64, u32)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s.load(Ordering::Relaxed) {
                EMPTY => None,
                v => Some((i as u64, v)),
            })
            .collect()
    }

    /// Restore one slot's raw value, the inverse of
    /// [`Self::snapshot_slots`]. Single-threaded by contract: restore
    /// happens before profiling resumes.
    pub fn restore_slot_raw(&self, slot: usize, raw: u32) {
        self.slots[slot].store(raw, Ordering::Relaxed);
    }
}

impl WriterMap for WriteSignature {
    #[inline]
    fn record(&self, addr: u64, tid: u32) {
        debug_assert!(tid < u32::MAX, "thread id overflow");
        self.slots[self.slot_index(addr)].store(tid + 1, Ordering::Relaxed);
    }

    #[inline]
    fn last_writer(&self, addr: u64) -> Option<u32> {
        match self.slots[self.slot_index(addr)].load(Ordering::Relaxed) {
            EMPTY => None,
            v => Some(v - 1),
        }
    }

    fn memory_bytes(&self) -> usize {
        self.slots.len() * 4
    }

    #[inline]
    fn record_hashed(&self, _addr: u64, h: u64, tid: u32) {
        debug_assert!(tid < u32::MAX, "thread id overflow");
        self.slots[slot_of_hash(h, self.slots.len())].store(tid + 1, Ordering::Relaxed);
    }

    #[inline]
    fn last_writer_hashed(&self, _addr: u64, h: u64) -> Option<u32> {
        match self.slots[slot_of_hash(h, self.slots.len())].load(Ordering::Relaxed) {
            EMPTY => None,
            v => Some(v - 1),
        }
    }

    #[inline]
    fn prefetch(&self, h: u64) {
        #[cfg(target_arch = "x86_64")]
        {
            let slot = slot_of_hash(h, self.slots.len());
            // Safety: in-bounds shared reference cast; prefetch has no
            // memory effects beyond the cache.
            unsafe {
                std::arch::x86_64::_mm_prefetch(
                    std::ptr::from_ref(&self.slots[slot]) as *const i8,
                    std::arch::x86_64::_MM_HINT_T0,
                );
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = h;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn record_then_query() {
        let sig = WriteSignature::new(1024);
        assert_eq!(sig.last_writer(0xabc), None);
        sig.record(0xabc, 7);
        assert_eq!(sig.last_writer(0xabc), Some(7));
        sig.record(0xabc, 9);
        assert_eq!(sig.last_writer(0xabc), Some(9));
    }

    #[test]
    fn tid_zero_is_distinguishable_from_empty() {
        let sig = WriteSignature::new(64);
        sig.record(0x10, 0);
        assert_eq!(sig.last_writer(0x10), Some(0));
    }

    #[test]
    fn aliasing_is_possible_with_tiny_signature() {
        // One slot: every address shares the writer — the documented FP mode.
        let sig = WriteSignature::new(1);
        sig.record(0x10, 3);
        assert_eq!(sig.last_writer(0x9999), Some(3));
    }

    #[test]
    fn memory_is_four_bytes_per_slot() {
        let sig = WriteSignature::new(10_000);
        assert_eq!(sig.memory_bytes(), 40_000);
    }

    #[test]
    fn hashed_entry_points_match_plain_ones() {
        use crate::murmur::fmix64;
        let sig = WriteSignature::new(1000); // non-power-of-two: modulo path
        let pow2 = WriteSignature::new(1024); // power-of-two: mask path
        for i in 0..500u64 {
            let a = i * 56 + 0x8000;
            sig.record_hashed(a, fmix64(a), (i % 7) as u32);
            pow2.record(a, (i % 7) as u32);
        }
        for i in 0..500u64 {
            let a = i * 56 + 0x8000;
            assert_eq!(sig.last_writer_hashed(a, fmix64(a)), sig.last_writer(a));
            assert_eq!(pow2.last_writer_hashed(a, fmix64(a)), pow2.last_writer(a));
        }
    }

    #[test]
    fn concurrent_records_leave_some_valid_writer() {
        let sig = Arc::new(WriteSignature::new(256));
        let mut handles = Vec::new();
        for tid in 0..8u32 {
            let sig = Arc::clone(&sig);
            handles.push(std::thread::spawn(move || {
                for a in 0..1000u64 {
                    sig.record(a, tid);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for a in 0..1000u64 {
            let w = sig.last_writer(a).expect("writer recorded");
            assert!(w < 8);
        }
    }
}
