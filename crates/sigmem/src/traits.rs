//! Abstractions over the two halves of the asymmetric signature memory.
//!
//! Algorithm 1 of the paper consults a *read* side (which threads have read
//! an address since its last write) and a *write* side (which thread wrote
//! it last). Both the approximate signature implementation and the exact
//! "perfect signature" baseline (§V-A3) implement these traits, so the RAW
//! detector in `lc-profiler` is generic over the accuracy/memory trade-off.

/// The read side: a per-address set of reader thread ids.
pub trait ReaderSet: Send + Sync {
    /// Record that thread `tid` read `addr`.
    fn insert(&self, addr: u64, tid: u32);

    /// Has thread `tid` read `addr` since the last clear of that address?
    ///
    /// Approximate implementations may report false positives (which
    /// *suppress* duplicate communication edges — a conservative error),
    /// never false negatives.
    fn contains(&self, addr: u64, tid: u32) -> bool;

    /// Forget all readers of `addr` (invoked on every write, Algorithm 1:
    /// "clear correspondent bloom filter in read signature").
    fn clear_addr(&self, addr: u64);

    /// Current heap footprint in bytes.
    fn memory_bytes(&self) -> usize;

    /// [`Self::insert`] with `h = fmix64(addr)` precomputed by the caller
    /// (the batched replay path hashes whole address blocks up front via
    /// [`crate::murmur::hash_block`]). Implementations that index by that
    /// hash override this to skip re-hashing; the default ignores `h`, so
    /// exact implementations stay correct unchanged.
    #[inline]
    fn insert_hashed(&self, addr: u64, h: u64, tid: u32) {
        let _ = h;
        self.insert(addr, tid);
    }

    /// [`Self::contains`] with `h = fmix64(addr)` precomputed.
    #[inline]
    fn contains_hashed(&self, addr: u64, h: u64, tid: u32) -> bool {
        let _ = h;
        self.contains(addr, tid)
    }

    /// Combined membership-test-and-insert: returns whether `(addr, tid)`
    /// was already present, and ensures it is present afterwards — the
    /// read path of Algorithm 1 in one signature traversal. The default
    /// composes [`Self::contains_hashed`] and [`Self::insert_hashed`];
    /// implementations override it to resolve the slot once and fold the
    /// probe into the insert's word pass.
    #[inline]
    fn insert_contains_hashed(&self, addr: u64, h: u64, tid: u32) -> bool {
        let present = self.contains_hashed(addr, h, tid);
        self.insert_hashed(addr, h, tid);
        present
    }

    /// [`Self::clear_addr`] with `h = fmix64(addr)` precomputed.
    #[inline]
    fn clear_addr_hashed(&self, addr: u64, h: u64) {
        let _ = h;
        self.clear_addr(addr);
    }

    /// Hint that the slot for hash `h` will be consulted shortly; batched
    /// callers issue this a few events ahead so the signature's cache lines
    /// are in flight by the time the probe lands. Default: no-op.
    #[inline]
    fn prefetch(&self, h: u64) {
        let _ = h;
    }

    /// The *elision class* of `addr` — the exact granularity at which
    /// [`Self::clear_addr`] forgets readers. Two addresses share a class
    /// iff clearing one clears the other, and [`Self::insert`] is
    /// idempotent within a class (re-inserting an already-present
    /// `(class, tid)` pair changes nothing observable).
    ///
    /// The fused replay path caches "thread `tid` is a member of class
    /// `c`" and elides the whole membership-probe/insert round trip for
    /// repeat reads until a write to class `c` invalidates the entry, so a
    /// wrong (too fine) class here would let stale elisions suppress real
    /// dependences. Implementations that cannot name their clear
    /// granularity return `None` (the default), which disables elision
    /// entirely — always sound, never wrong.
    #[inline]
    fn elision_class_hashed(&self, addr: u64, h: u64) -> Option<u64> {
        let _ = (addr, h);
        None
    }
}

/// The write side: a per-address record of the last writing thread.
pub trait WriterMap: Send + Sync {
    /// Record that thread `tid` is now the last writer of `addr`.
    fn record(&self, addr: u64, tid: u32);

    /// The last recorded writer of `addr`, or `None` if the address was
    /// never written (approximate implementations may alias addresses,
    /// returning the writer of a colliding address — the false-positive
    /// source quantified in §V-A3).
    fn last_writer(&self, addr: u64) -> Option<u32>;

    /// Current heap footprint in bytes.
    fn memory_bytes(&self) -> usize;

    /// [`Self::record`] with `h = fmix64(addr)` precomputed by the caller.
    /// Same contract as [`ReaderSet::insert_hashed`].
    #[inline]
    fn record_hashed(&self, addr: u64, h: u64, tid: u32) {
        let _ = h;
        self.record(addr, tid);
    }

    /// [`Self::last_writer`] with `h = fmix64(addr)` precomputed.
    #[inline]
    fn last_writer_hashed(&self, addr: u64, h: u64) -> Option<u32> {
        let _ = h;
        self.last_writer(addr)
    }

    /// Hint that the slot for hash `h` will be consulted shortly.
    /// Default: no-op.
    #[inline]
    fn prefetch(&self, h: u64) {
        let _ = h;
    }
}
