//! Abstractions over the two halves of the asymmetric signature memory.
//!
//! Algorithm 1 of the paper consults a *read* side (which threads have read
//! an address since its last write) and a *write* side (which thread wrote
//! it last). Both the approximate signature implementation and the exact
//! "perfect signature" baseline (§V-A3) implement these traits, so the RAW
//! detector in `lc-profiler` is generic over the accuracy/memory trade-off.

/// The read side: a per-address set of reader thread ids.
pub trait ReaderSet: Send + Sync {
    /// Record that thread `tid` read `addr`.
    fn insert(&self, addr: u64, tid: u32);

    /// Has thread `tid` read `addr` since the last clear of that address?
    ///
    /// Approximate implementations may report false positives (which
    /// *suppress* duplicate communication edges — a conservative error),
    /// never false negatives.
    fn contains(&self, addr: u64, tid: u32) -> bool;

    /// Forget all readers of `addr` (invoked on every write, Algorithm 1:
    /// "clear correspondent bloom filter in read signature").
    fn clear_addr(&self, addr: u64);

    /// Current heap footprint in bytes.
    fn memory_bytes(&self) -> usize;
}

/// The write side: a per-address record of the last writing thread.
pub trait WriterMap: Send + Sync {
    /// Record that thread `tid` is now the last writer of `addr`.
    fn record(&self, addr: u64, tid: u32);

    /// The last recorded writer of `addr`, or `None` if the address was
    /// never written (approximate implementations may alias addresses,
    /// returning the writer of a colliding address — the false-positive
    /// source quantified in §V-A3).
    fn last_writer(&self, addr: u64) -> Option<u32>;

    /// Current heap footprint in bytes.
    fn memory_bytes(&self) -> usize;
}
