//! # loopcomm — loop-level communication patterns for shared memory
//!
//! A production-quality Rust reproduction of *"Characterizing Loop-Level
//! Communication Patterns in Shared Memory Applications"* (Mazaheri,
//! Jannesari, Mirzaei, Wolf — ICPP 2015): an inter-thread RAW dependency
//! profiler that produces nested, per-hotspot-loop communication matrices
//! in bounded memory using an **asymmetric signature memory**.
//!
//! ## Quickstart
//!
//! ```
//! use loopcomm::prelude::*;
//! use std::sync::Arc;
//!
//! // 1. Build the profiler (the paper's FPRate = 0.001 default).
//! let threads = 8;
//! let profiler = Arc::new(AsymmetricProfiler::asymmetric(
//!     SignatureConfig::paper_default(1 << 16, threads),
//!     ProfilerConfig::nested(threads),
//! ));
//!
//! // 2. Run an instrumented workload with the profiler as the sink.
//! let ctx = TraceCtx::new(profiler.clone(), threads);
//! let workload = lc_workloads::by_name("radix").unwrap();
//! workload.run(&ctx, &RunConfig::new(threads, InputSize::SimDev, 42));
//!
//! // 3. Inspect the communication pattern.
//! let report = profiler.report();
//! assert!(report.dependencies > 0);
//! let nested = NestedReport::build(ctx.loops(), &report.per_loop, threads);
//! assert!(lc_profiler::verify_sum_invariant(&nested).is_empty());
//! println!("{}", nested.render(3));
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`lc_sigmem`] | MurmurHash3, Bloom filters, the asymmetric signature memory, Eq. 2 |
//! | [`lc_trace`] | instrumentation substrate: events, loop UIDs, traced buffers, replay |
//! | [`lc_profiler`] | Algorithm 1, communication matrices, nested patterns, thread load, phases, classification |
//! | [`lc_baselines`] | Memcheck/Helgrind/IPM/SD3-style comparators and exact ground truth |
//! | [`lc_workloads`] | fourteen SPLASH-style kernels, engineered false-sharing kernels + synthetic topologies |
//! | [`lc_cachesim`] | §III cache/MESI simulator + the `--coherence` analysis backend and false-sharing detector |

#![warn(missing_docs)]

pub use lc_baselines;
pub use lc_cachesim;
pub use lc_profiler;
pub use lc_sigmem;
pub use lc_trace;
pub use lc_workloads;

pub mod serve;
#[cfg(feature = "sched")]
pub mod simtest;

/// Everything needed for typical profiling sessions.
pub mod prelude {
    pub use lc_profiler::{
        AccumConfig, AsymmetricProfiler, CommProfiler, DenseMatrix, NestedReport, PerfectProfiler,
        ProfileReport, ProfilerConfig, ThreadLoad,
    };
    pub use lc_sigmem::SignatureConfig;
    pub use lc_trace::{AccessKind, AccessSink, LoopId, TraceCtx, TracedBuffer};
    pub use lc_workloads::{all_workloads, by_name, InputSize, RunConfig, Workload};
}
