//! Minimal HTTP/1.0 observation surface for `loopcomm serve`.
//!
//! Read-only, dependency-free, one thread, connection-per-request:
//!
//! | path | body |
//! |---|---|
//! | `/healthz` | `ok` |
//! | `/metrics` | Prometheus exposition: server + per-tenant counters |
//! | `/tenants` | JSON tenant list |
//! | `/tenants/<t>/report` | canonical plain-text profile (`?wait=1` quiesces first) |
//! | `/tenants/<t>/matrix` | global communication matrix CSV |
//! | `/tenants/<t>/load` | Eq. 1 thread-load table |
//! | `/tenants/<t>/stats` | JSON ingest counters |
//! | `/tenants/<t>/coherence` | canonical coherence report (404 unless `--coherence`) |
//!
//! The canonical report is the server half of the differential contract:
//! byte-identical to `loopcomm analyze --report-out` on the same events.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use lc_profiler::ThreadLoad;

use super::tenant::Tenant;
use super::{Shared, POLL_INTERVAL};

/// How long `?wait=1` will poll for tenant quiescence before reporting
/// whatever is analyzed so far.
const WAIT_QUIET_DEADLINE: Duration = Duration::from_secs(30);

/// Serve requests until shutdown (listener is non-blocking).
pub(crate) fn http_loop(shared: Arc<Shared>, listener: TcpListener) {
    loop {
        if shared.shutting_down() {
            break;
        }
        match listener.accept() {
            Ok((sock, _)) => {
                // Requests are tiny and handlers cheap; serve inline so
                // shutdown has no request threads to chase.
                let _ = serve_one(&shared, sock);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

fn serve_one(shared: &Shared, sock: TcpStream) -> std::io::Result<()> {
    sock.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(sock.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers (ignored) up to the blank line.
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (405, "text/plain", "method not allowed\n".to_string())
    } else {
        route(shared, target)
    };
    respond(sock, status, content_type, &body)
}

fn respond(
    mut sock: TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    sock.write_all(head.as_bytes())?;
    sock.write_all(body.as_bytes())?;
    sock.flush()
}

fn route(shared: &Shared, target: &str) -> (u16, &'static str, String) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/healthz" => (200, "text/plain", "ok\n".to_string()),
        "/metrics" => (200, "text/plain", prometheus(shared)),
        "/tenants" => (200, "application/json", tenants_json(shared)),
        _ => {
            let Some(rest) = path.strip_prefix("/tenants/") else {
                return (404, "text/plain", format!("no such path {path}\n"));
            };
            let Some((name, what)) = rest.split_once('/') else {
                return (
                    404,
                    "text/plain",
                    "expected /tenants/<name>/<view>\n".into(),
                );
            };
            let Some(tenant) = shared.tenant(name) else {
                return (404, "text/plain", format!("no such tenant {name}\n"));
            };
            match what {
                "report" => {
                    if query.split('&').any(|kv| kv == "wait=1") {
                        tenant.wait_quiet(WAIT_QUIET_DEADLINE);
                    }
                    (200, "text/plain", tenant.canonical())
                }
                "matrix" => (200, "text/csv", tenant.report().global.to_csv()),
                "load" => {
                    let report = tenant.report();
                    (
                        200,
                        "text/plain",
                        ThreadLoad::from_matrix(&report.global).render(),
                    )
                }
                "stats" => (200, "application/json", tenant_stats_json(&tenant)),
                "coherence" => {
                    if query.split('&').any(|kv| kv == "wait=1") {
                        tenant.wait_quiet(WAIT_QUIET_DEADLINE);
                    }
                    match tenant.coherence_canonical() {
                        Some(body) => (200, "text/plain", body),
                        None => (
                            404,
                            "text/plain",
                            "coherence backend not enabled (start the server with --coherence)\n"
                                .into(),
                        ),
                    }
                }
                other => (404, "text/plain", format!("no such view {other}\n")),
            }
        }
    }
}

/// Prometheus exposition: server-wide counters plus one labelled series
/// per tenant per counter.
fn prometheus(shared: &Shared) -> String {
    let mut out = String::new();
    let server: [(&str, &str, u64); 3] = [
        (
            "loopcomm_serve_connections_accepted_total",
            "Ingest connections accepted",
            shared.conns_accepted.load(Ordering::Relaxed),
        ),
        (
            "loopcomm_serve_connections_rejected_total",
            "Ingest connections refused by the connection limit",
            shared.conns_rejected.load(Ordering::Relaxed),
        ),
        (
            "loopcomm_serve_connections_faulted_total",
            "Ingest connections that ended degraded",
            shared.conns_faulted.load(Ordering::Relaxed),
        ),
    ];
    for (name, help, v) in server {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }
    let _ = writeln!(
        out,
        "# HELP loopcomm_serve_tenants Tenants currently known\n\
         # TYPE loopcomm_serve_tenants gauge\n\
         loopcomm_serve_tenants {}",
        shared.tenants().len()
    );
    let per_tenant: [(&str, &str); 9] = [
        (
            "loopcomm_tenant_frames_received_total",
            "Valid frames decoded",
        ),
        (
            "loopcomm_tenant_events_received_total",
            "Events in valid frames",
        ),
        (
            "loopcomm_tenant_frames_lost_total",
            "Frames lost to drain faults or shutdown",
        ),
        ("loopcomm_tenant_events_lost_total", "Events in lost frames"),
        (
            "loopcomm_tenant_bytes_dropped_total",
            "Stream bytes that never formed a valid frame",
        ),
        ("loopcomm_tenant_connections_active", "Open connections"),
        (
            "loopcomm_tenant_connections_faulted_total",
            "Connections that ended degraded",
        ),
        (
            "loopcomm_tenant_frames_spilled",
            "Frames spilled to the durable spool, awaiting replay",
        ),
        (
            "loopcomm_tenant_events_spilled",
            "Events in the spilled frames",
        ),
    ];
    for (i, (name, help)) in per_tenant.iter().enumerate() {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(
            out,
            "# TYPE {name} {}",
            if i == 5 || i >= 7 { "gauge" } else { "counter" }
        );
        for t in shared.tenants() {
            let v = match i {
                0 => t.stats.frames_received.load(Ordering::Relaxed),
                1 => t.stats.events_received.load(Ordering::Relaxed),
                2 => t.stats.frames_lost.load(Ordering::Relaxed),
                3 => t.stats.events_lost.load(Ordering::Relaxed),
                4 => t.stats.bytes_dropped.load(Ordering::Relaxed),
                5 => t.stats.conns_active.load(Ordering::Relaxed),
                6 => t.stats.conns_faulted.load(Ordering::Relaxed),
                7 => t.stats.frames_spilled.load(Ordering::Relaxed),
                _ => t.stats.events_spilled.load(Ordering::Relaxed),
            };
            let _ = writeln!(out, "{name}{{tenant=\"{}\"}} {v}", t.name);
        }
    }
    let _ = writeln!(
        out,
        "# HELP loopcomm_serve_tenants_evicted Tenants evicted to durable storage\n\
         # TYPE loopcomm_serve_tenants_evicted gauge\n\
         loopcomm_serve_tenants_evicted {}",
        shared.evicted().len()
    );
    let _ = writeln!(
        out,
        "# HELP loopcomm_tenant_events_analyzed_total Events that reached the analyzer\n\
         # TYPE loopcomm_tenant_events_analyzed_total counter"
    );
    for t in shared.tenants() {
        let _ = writeln!(
            out,
            "loopcomm_tenant_events_analyzed_total{{tenant=\"{}\"}} {}",
            t.name,
            t.events_analyzed()
        );
    }
    let _ = writeln!(
        out,
        "# HELP loopcomm_tenant_memory_bytes Analyzer heap footprint (bounded)\n\
         # TYPE loopcomm_tenant_memory_bytes gauge"
    );
    for t in shared.tenants() {
        let _ = writeln!(
            out,
            "loopcomm_tenant_memory_bytes{{tenant=\"{}\"}} {}",
            t.name,
            t.memory_bytes()
        );
    }
    // Coherence series appear only when the backend is on — an absent
    // series is "not measured", not zero.
    if shared.cfg.coherence.is_some() {
        let coh: [(&str, &str); 4] = [
            (
                "loopcomm_tenant_coherence_invalidations_total",
                "Cache copies invalidated by remote writes",
            ),
            (
                "loopcomm_tenant_coherence_c2c_fills_total",
                "Line fills served cache-to-cache",
            ),
            (
                "loopcomm_tenant_coherence_false_bytes_total",
                "Bytes pulled by fills and never touched (false sharing)",
            ),
            (
                "loopcomm_tenant_coherence_true_bytes_total",
                "First-touch attributed transfer bytes (true sharing)",
            ),
        ];
        for (i, (name, help)) in coh.iter().enumerate() {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            for t in shared.tenants() {
                let Some(rep) = t.coherence_report() else {
                    continue;
                };
                let v = match i {
                    0 => rep.invalidations,
                    1 => rep.c2c_fills,
                    2 => rep.global.false_bytes,
                    _ => rep.global.true_bytes(),
                };
                let _ = writeln!(out, "{name}{{tenant=\"{}\"}} {v}", t.name);
            }
        }
    }
    out
}

fn tenants_json(shared: &Shared) -> String {
    let names: Vec<String> = shared
        .tenants()
        .iter()
        .map(|t| format!("\"{}\"", t.name))
        .collect();
    let evicted: Vec<String> = shared
        .evicted()
        .iter()
        .map(|(name, e)| {
            format!(
                "{{\"name\":\"{name}\",\"events_analyzed\":{},\"frames_analyzed\":{}}}",
                e.events_analyzed, e.frames_analyzed
            )
        })
        .collect();
    format!(
        "{{\"tenants\":[{}],\"evicted\":[{}]}}\n",
        names.join(","),
        evicted.join(",")
    )
}

fn tenant_stats_json(t: &Tenant) -> String {
    // The coherence object exists only when the backend is on, so its
    // absence is distinguishable from an idle backend.
    let coherence = match t.coherence_report() {
        Some(rep) => format!(
            ",\"coherence\":{{\"accesses\":{},\"invalidations\":{},\"c2c_fills\":{},\
             \"writebacks\":{},\"false_bytes\":{},\"true_bytes\":{},\
             \"false_sharing_events\":{}}}",
            rep.accesses,
            rep.invalidations,
            rep.c2c_fills,
            rep.writebacks,
            rep.global.false_bytes,
            rep.global.true_bytes(),
            rep.false_sharing_events()
        ),
        None => String::new(),
    };
    format!(
        "{{\"tenant\":\"{}\",\"frames_received\":{},\"events_received\":{},\
         \"frames_analyzed\":{},\"events_analyzed\":{},\"frames_lost\":{},\
         \"events_lost\":{},\"frames_spilled\":{},\"events_spilled\":{},\
         \"bytes_received\":{},\"bytes_dropped\":{},\
         \"queue_frames\":{},\"conns_active\":{},\"conns_total\":{},\
         \"conns_faulted\":{},\"memory_bytes\":{},\"dependencies\":{}{coherence}}}\n",
        t.name,
        t.stats.frames_received.load(Ordering::Relaxed),
        t.stats.events_received.load(Ordering::Relaxed),
        t.frames_analyzed(),
        t.events_analyzed(),
        t.stats.frames_lost.load(Ordering::Relaxed),
        t.stats.events_lost.load(Ordering::Relaxed),
        t.stats.frames_spilled.load(Ordering::Relaxed),
        t.stats.events_spilled.load(Ordering::Relaxed),
        t.stats.bytes_received.load(Ordering::Relaxed),
        t.stats.bytes_dropped.load(Ordering::Relaxed),
        t.queue_len(),
        t.stats.conns_active.load(Ordering::Relaxed),
        t.stats.conns_total.load(Ordering::Relaxed),
        t.stats.conns_faulted.load(Ordering::Relaxed),
        t.memory_bytes(),
        t.report().dependencies,
    )
}
