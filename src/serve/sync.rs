//! Sync-primitive facade for the ingest queue.
//!
//! With the `sched` feature the bounded frame queue's atomics and mutex
//! come from [`lc_sched::sync`], making every queue operation a scheduler
//! decision point inside a deterministic simulation (the `ingest`
//! scenario of [`crate::simtest`]) while delegating to the real
//! primitives otherwise. Without the feature this is exactly the std
//! atomics + `parking_lot::Mutex` the production build uses.

#[cfg(feature = "sched")]
pub use lc_sched::sync::{AtomicBool, AtomicU64, Mutex, Ordering};

#[cfg(not(feature = "sched"))]
pub use parking_lot::Mutex;
#[cfg(not(feature = "sched"))]
pub use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Backoff for the blocking queue paths: virtual time inside a
/// simulation, a short real sleep in production.
pub fn backoff() {
    #[cfg(feature = "sched")]
    if lc_sched::in_sim() {
        lc_sched::virtual_sleep_us(50);
        return;
    }
    std::thread::sleep(std::time::Duration::from_micros(200));
}
