//! Durable tenant state: spill spools and checkpoint/restore.
//!
//! With `--durable-dir` every tenant owns a directory
//! `<durable_dir>/t_<name>/` (the `t_` prefix keeps hostile-but-valid
//! tenant names like `..` from escaping the root) holding:
//!
//! * `state.lctn` — the tenant's last checkpoint: ingest counters plus a
//!   full [`lc_profiler::Checkpoint`] of the analyzer, written atomically
//!   (temp + fsync + rename) through the `checkpoint_write` fault seam.
//! * `spill-<gen>.lcv3` — v3 spool generations of frames that overflowed
//!   the bounded queue. Spilling replaces the backpressure stall: under
//!   memory pressure the frames go to disk instead of stalling producers,
//!   and are replayed into the analyzer when the tenant is next restored.
//!
//! The accounting contract: `received == analyzed + spilled + lost`
//! (spilled = frames currently on disk awaiting replay) holds at every
//! quiescent point, across clean eviction/restart, and across a hard
//! crash — restore reconciles the salvage-exact spill replay against the
//! checkpointed counters, so frames that arrived after the last
//! checkpoint are re-admitted to *both* sides of the ledger or neither.

use std::io::{self, Read};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use lc_faults::FaultInjector;
use lc_profiler::{write_atomic_blob, Checkpoint, IncrementalAnalyzer};
use lc_trace::{crc32, MmapTrace, SpoolV3Writer};

use super::tenant::TenantStats;

const STATE_MAGIC: [u8; 4] = *b"LCTN";
const STATE_VERSION: u32 = 1;

/// The durable directory for one tenant.
pub fn tenant_dir(root: &Path, name: &str) -> PathBuf {
    root.join(format!("t_{name}"))
}

/// The tenant's checkpoint file.
pub fn state_path(dir: &Path) -> PathBuf {
    dir.join("state.lctn")
}

fn spill_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("spill-{generation:08}.lcv3"))
}

/// Counter snapshot persisted alongside the analyzer checkpoint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PersistedStats {
    /// See [`TenantStats::frames_received`].
    pub frames_received: u64,
    /// See [`TenantStats::events_received`].
    pub events_received: u64,
    /// See [`TenantStats::frames_lost`].
    pub frames_lost: u64,
    /// See [`TenantStats::events_lost`].
    pub events_lost: u64,
    /// See [`TenantStats::frames_spilled`].
    pub frames_spilled: u64,
    /// See [`TenantStats::events_spilled`].
    pub events_spilled: u64,
    /// See [`TenantStats::bytes_received`].
    pub bytes_received: u64,
    /// See [`TenantStats::bytes_dropped`].
    pub bytes_dropped: u64,
}

impl PersistedStats {
    /// Snapshot the live counters.
    pub fn capture(s: &TenantStats) -> Self {
        Self {
            frames_received: s.frames_received.load(Ordering::Relaxed),
            events_received: s.events_received.load(Ordering::Relaxed),
            frames_lost: s.frames_lost.load(Ordering::Relaxed),
            events_lost: s.events_lost.load(Ordering::Relaxed),
            frames_spilled: s.frames_spilled.load(Ordering::Relaxed),
            events_spilled: s.events_spilled.load(Ordering::Relaxed),
            bytes_received: s.bytes_received.load(Ordering::Relaxed),
            bytes_dropped: s.bytes_dropped.load(Ordering::Relaxed),
        }
    }

    /// Seed fresh live counters from the snapshot.
    pub fn seed(&self, s: &TenantStats) {
        s.frames_received
            .store(self.frames_received, Ordering::Relaxed);
        s.events_received
            .store(self.events_received, Ordering::Relaxed);
        s.frames_lost.store(self.frames_lost, Ordering::Relaxed);
        s.events_lost.store(self.events_lost, Ordering::Relaxed);
        s.frames_spilled
            .store(self.frames_spilled, Ordering::Relaxed);
        s.events_spilled
            .store(self.events_spilled, Ordering::Relaxed);
        s.bytes_received
            .store(self.bytes_received, Ordering::Relaxed);
        s.bytes_dropped.store(self.bytes_dropped, Ordering::Relaxed);
    }

    fn fields(&self) -> [u64; 8] {
        [
            self.frames_received,
            self.events_received,
            self.frames_lost,
            self.events_lost,
            self.frames_spilled,
            self.events_spilled,
            self.bytes_received,
            self.bytes_dropped,
        ]
    }

    fn from_fields(f: [u64; 8]) -> Self {
        Self {
            frames_received: f[0],
            events_received: f[1],
            frames_lost: f[2],
            events_lost: f[3],
            frames_spilled: f[4],
            events_spilled: f[5],
            bytes_received: f[6],
            bytes_dropped: f[7],
        }
    }
}

/// Encode the tenant state file: `"LCTN" | version | crc32(body) | body`,
/// body = 8 counter u64s + checkpoint blob length + checkpoint blob.
pub fn encode_state(stats: &PersistedStats, checkpoint: &Checkpoint) -> Vec<u8> {
    let blob = checkpoint.encode();
    let mut body = Vec::with_capacity(8 * 8 + 8 + blob.len());
    for v in stats.fields() {
        body.extend_from_slice(&v.to_le_bytes());
    }
    body.extend_from_slice(&(blob.len() as u64).to_le_bytes());
    body.extend_from_slice(&blob);
    let mut out = Vec::with_capacity(12 + body.len());
    out.extend_from_slice(&STATE_MAGIC);
    out.extend_from_slice(&STATE_VERSION.to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Decode a tenant state file (CRC-checked; any damage is an error — the
/// caller falls back to a fresh tenant rather than trusting torn state).
pub fn decode_state(bytes: &[u8]) -> io::Result<(PersistedStats, Checkpoint)> {
    if bytes.len() < 12 || bytes[0..4] != STATE_MAGIC {
        return Err(bad("not a tenant state file (no LCTN magic)"));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != STATE_VERSION {
        return Err(bad(format!("unsupported tenant state version {version}")));
    }
    let crc = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let body = &bytes[12..];
    if crc32(body) != crc {
        return Err(bad("tenant state CRC mismatch (torn or corrupt)"));
    }
    if body.len() < 8 * 8 + 8 {
        return Err(bad("tenant state body truncated"));
    }
    let mut f = [0u64; 8];
    for (i, v) in f.iter_mut().enumerate() {
        *v = u64::from_le_bytes(body[i * 8..i * 8 + 8].try_into().unwrap());
    }
    let blob_len = u64::from_le_bytes(body[64..72].try_into().unwrap()) as usize;
    let blob = &body[72..];
    if blob.len() != blob_len {
        return Err(bad("tenant state checkpoint length mismatch"));
    }
    let cp = Checkpoint::decode(blob)?;
    Ok((PersistedStats::from_fields(f), cp))
}

/// Write the tenant state atomically through the `checkpoint_write` seam.
pub fn write_state(
    dir: &Path,
    stats: &PersistedStats,
    checkpoint: &Checkpoint,
    faults: Option<&Arc<FaultInjector>>,
) -> io::Result<()> {
    write_atomic_blob(
        &state_path(dir),
        &encode_state(stats, checkpoint),
        lc_faults::FaultSite::CheckpointWrite,
        faults,
    )
}

/// Load and decode the tenant state, if present.
pub fn load_state(dir: &Path) -> io::Result<Option<(PersistedStats, Checkpoint)>> {
    let path = state_path(dir);
    let mut bytes = Vec::new();
    match std::fs::File::open(&path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    decode_state(&bytes).map(Some)
}

/// The append-only spill side of a durable tenant. Each sealed generation
/// is a complete indexed v3 spool; the open generation's data pages are
/// durable per append, so a crash loses at most the unsealed index —
/// which restore rebuilds exactly from the CRC-framed segments.
pub struct SpillWriter {
    dir: PathBuf,
    faults: Option<Arc<FaultInjector>>,
    open: Option<SpoolV3Writer>,
    generation: u64,
    /// Whether any spilled frame awaits replay (open or sealed, this
    /// incarnation or a previous one). While true, `Tenant::enqueue` must
    /// keep spilling instead of re-entering the queue: a frame admitted
    /// to the queue would be analyzed *before* the spilled frames that
    /// precede it in arrival order, and replay order is the byte-identity
    /// guarantee. Cleared only by `replay_spills` deleting the files.
    pending: bool,
}

impl SpillWriter {
    /// Set up spilling into `dir`, starting after any existing generation.
    pub fn new(dir: PathBuf, faults: Option<Arc<FaultInjector>>) -> Self {
        let generation = next_generation(&dir);
        Self {
            faults,
            open: None,
            generation,
            pending: !spill_files(&dir).is_empty(),
            dir,
        }
    }

    /// True while spilled frames await replay — the tenant's signal to
    /// keep routing new frames to disk so arrival order is preserved.
    pub fn has_pending(&self) -> bool {
        self.pending
    }

    /// Recompute `pending` from disk, after a catch-up replay deleted the
    /// sealed generations it consumed. Frames appended *during* that
    /// replay live in a newer generation (open or sealed), so pending
    /// stays true until the spool directory is really empty.
    pub fn refresh_pending(&mut self) {
        self.pending = self.open.is_some() || !spill_files(&self.dir).is_empty();
    }

    /// Append one overflowed frame to the open generation.
    pub fn append(&mut self, frame: &[lc_trace::StampedEvent]) -> io::Result<()> {
        if self.open.is_none() {
            std::fs::create_dir_all(&self.dir)?;
            let path = spill_path(&self.dir, self.generation);
            self.open = Some(SpoolV3Writer::create_with(&path, self.faults.clone())?);
        }
        self.open.as_mut().unwrap().append_frame(frame)?;
        self.pending = true;
        Ok(())
    }

    /// Seal the open generation (write its index durably) and advance, so
    /// the next spill starts a fresh spool instead of truncating history.
    pub fn seal(&mut self) -> io::Result<()> {
        if let Some(w) = self.open.take() {
            w.finish()?;
            self.generation += 1;
        }
        Ok(())
    }
}

fn next_generation(dir: &Path) -> u64 {
    spill_files(dir)
        .last()
        .and_then(|p| {
            p.file_stem()?
                .to_str()?
                .strip_prefix("spill-")?
                .parse::<u64>()
                .ok()
        })
        .map(|g| g + 1)
        .unwrap_or(0)
}

/// All spill generations in `dir`, oldest first.
pub fn spill_files(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|x| x == "lcv3")
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("spill-"))
        })
        .collect();
    files.sort();
    files
}

/// Replay every spill generation into the analyzer (salvage-exact: a torn
/// tail from a crash is dropped at the first bad CRC, counted by the
/// caller), then delete the replayed files. Returns (frames, events)
/// replayed.
pub fn replay_spills(dir: &Path, analyzer: &mut IncrementalAnalyzer) -> (u64, u64) {
    let mut frames = 0u64;
    let mut events = 0u64;
    for path in spill_files(dir) {
        match MmapTrace::open(&path) {
            Ok(m) => {
                let res = m.stream_from(0, |frame| {
                    analyzer.on_frame(frame);
                    frames += 1;
                    events += frame.len() as u64;
                });
                if let Err(e) = res {
                    eprintln!(
                        "warning: spill replay of {} stopped early: {e}",
                        path.display()
                    );
                }
            }
            Err(e) => {
                eprintln!("warning: unreadable spill {}: {e}", path.display());
            }
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(lc_trace::index_path(&path)).ok();
    }
    (frames, events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_profiler::shards::AccumConfig;
    use lc_profiler::{DetectorKind, ProfilerConfig};
    use lc_sigmem::SignatureConfig;
    use lc_trace::{AccessEvent, AccessKind, FuncId, LoopId, StampedEvent};

    fn analyzer() -> IncrementalAnalyzer {
        IncrementalAnalyzer::new(
            DetectorKind::Asymmetric,
            SignatureConfig::paper_default(1 << 8, 4),
            ProfilerConfig::nested(4),
            AccumConfig::default(),
            2,
        )
    }

    fn frame(base: u64, n: u64) -> Vec<StampedEvent> {
        (0..n)
            .map(|i| StampedEvent {
                seq: base + i,
                event: AccessEvent {
                    tid: ((base + i) % 4) as u32,
                    addr: 0x100 + ((base + i) % 16) * 8,
                    size: 8,
                    kind: if (base + i) % 2 == 0 {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                    loop_id: LoopId(1),
                    parent_loop: LoopId::NONE,
                    func: FuncId::NONE,
                    site: 0,
                },
            })
            .collect()
    }

    #[test]
    fn state_round_trips_and_rejects_corruption() {
        let mut a = analyzer();
        a.on_frame(&frame(0, 32));
        let stats = PersistedStats {
            frames_received: 7,
            events_received: 99,
            frames_spilled: 2,
            events_spilled: 10,
            ..Default::default()
        };
        let cp = Checkpoint::capture(&a);
        let bytes = encode_state(&stats, &cp);
        let (back_stats, back_cp) = decode_state(&bytes).expect("decode");
        assert_eq!(back_stats, stats);
        assert_eq!(back_cp.events, 32);

        for i in [5usize, 20, bytes.len() - 3] {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(decode_state(&bad).is_err(), "flip at {i} must be rejected");
        }
        assert!(decode_state(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn spill_generations_accumulate_and_replay_in_order() {
        let dir = std::env::temp_dir().join(format!("lc_spill_gen_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        let mut w = SpillWriter::new(dir.clone(), None);
        w.append(&frame(0, 8)).unwrap();
        w.append(&frame(8, 8)).unwrap();
        w.seal().unwrap();
        // A sealed spill survives a new writer (no truncation).
        let mut w2 = SpillWriter::new(dir.clone(), None);
        w2.append(&frame(16, 8)).unwrap();
        w2.seal().unwrap();
        assert_eq!(spill_files(&dir).len(), 2);

        let mut replayed = analyzer();
        let (frames, events) = replay_spills(&dir, &mut replayed);
        assert_eq!((frames, events), (3, 24));
        assert!(spill_files(&dir).is_empty(), "replayed spills are deleted");

        // Replay equals streaming the same frames directly.
        let mut straight = analyzer();
        straight.on_frame(&frame(0, 8));
        straight.on_frame(&frame(8, 8));
        straight.on_frame(&frame(16, 8));
        assert_eq!(
            lc_profiler::canonical_report(&replayed.report(), replayed.events()),
            lc_profiler::canonical_report(&straight.report(), straight.events())
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unsealed_spill_is_replayed_via_index_rebuild() {
        let dir = std::env::temp_dir().join(format!("lc_spill_unsealed_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut w = SpillWriter::new(dir.clone(), None);
        w.append(&frame(0, 16)).unwrap();
        // No seal: simulate a crash before the index write. Data pages are
        // durable per append; replay rebuilds the index from frames.
        drop(w);
        let mut a = analyzer();
        let (frames, events) = replay_spills(&dir, &mut a);
        assert_eq!((frames, events), (1, 16));
        std::fs::remove_dir_all(&dir).ok();
    }
}
