//! Bounded frame queue between a tenant's connections and its drain.
//!
//! The backpressure seam of the ingest service: connection threads push
//! decoded frames, the tenant's single drain thread pops them into the
//! incremental analyzer. Capacity is bounded, so a tenant whose analysis
//! falls behind stalls *its own* producers' connection threads (and,
//! through TCP, the producers themselves) instead of growing server
//! memory — per-tenant isolation by construction.
//!
//! Built on the [`super::sync`] facade, so the `ingest` model-checking
//! scenario explores real interleavings of `try_push`/`try_pop` under
//! the deterministic scheduler. The armed mutant
//! `ingest-drop-contended-frame` turns a lock contention into a silently
//! dropped (but still counted) frame — the dropped-frame race the
//! scenario's FIFO oracle provably catches.

use std::collections::VecDeque;

use super::sync::{backoff, AtomicBool, AtomicU64, Mutex, Ordering};

/// Why a [`FrameQueue::try_push`] did not enqueue.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back for retry.
    Full(T),
    /// The queue was closed (tenant shutting down); the item is lost to
    /// this queue and the caller must account for it.
    Closed(T),
}

/// A bounded MPSC-style queue of decoded frames.
pub struct FrameQueue<T> {
    inner: Mutex<VecDeque<T>>,
    capacity: usize,
    closed: AtomicBool,
    pushed: AtomicU64,
    popped: AtomicU64,
}

impl<T> FrameQueue<T> {
    /// An open queue holding at most `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        Self {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            closed: AtomicBool::new(false),
            pushed: AtomicU64::new(0),
            popped: AtomicU64::new(0),
        }
    }

    /// Attempt one enqueue without blocking.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        if self.closed.load(Ordering::Acquire) {
            return Err(PushError::Closed(item));
        }
        #[cfg(feature = "sched")]
        if lc_sched::mutant_active("ingest-drop-contended-frame") {
            // Mutant: treat lock contention as success. The push counter
            // advances and the caller believes the frame is queued, but
            // it never reaches the drain — the dropped-frame race the
            // `ingest` scenario's FIFO oracle catches.
            let Some(mut buf) = self.inner.try_lock() else {
                self.pushed.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            };
            if buf.len() >= self.capacity {
                return Err(PushError::Full(item));
            }
            buf.push_back(item);
            self.pushed.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        let mut buf = self.inner.lock();
        if buf.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        buf.push_back(item);
        self.pushed.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Attempt one dequeue without blocking.
    pub fn try_pop(&self) -> Option<T> {
        let item = self.inner.lock().pop_front();
        if item.is_some() {
            self.popped.fetch_add(1, Ordering::Relaxed);
        }
        item
    }

    /// Enqueue, waiting out a full queue (the backpressure stall). Returns
    /// `false` — item dropped — only if the queue closes while waiting.
    pub fn push_blocking(&self, mut item: T) -> bool {
        loop {
            match self.try_push(item) {
                Ok(()) => return true,
                Err(PushError::Closed(_)) => return false,
                Err(PushError::Full(it)) => {
                    item = it;
                    backoff();
                }
            }
        }
    }

    /// Dequeue, waiting for a frame. Returns `None` once the queue is
    /// closed *and* drained — the drain thread's exit condition.
    pub fn pop_blocking(&self) -> Option<T> {
        loop {
            if let Some(item) = self.try_pop() {
                return Some(item);
            }
            if self.closed.load(Ordering::Acquire) {
                // Re-check after observing closed: a racing push may have
                // landed between the failed pop and the flag read.
                return self.try_pop();
            }
            backoff();
        }
    }

    /// Close the queue: future pushes fail, pops drain what remains.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// True once closed.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Frames currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Successful pushes so far.
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Successful pops so far.
    pub fn popped(&self) -> u64 {
        self.popped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let q = FrameQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert!(matches!(q.try_push(9), Err(PushError::Full(9))));
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.try_pop(), Some(i));
        }
        assert_eq!(q.try_pop(), None);
        assert_eq!((q.pushed(), q.popped()), (4, 4));
    }

    #[test]
    fn close_rejects_pushes_but_drains_pops() {
        let q = FrameQueue::new(2);
        q.try_push(1).unwrap();
        q.close();
        assert!(matches!(q.try_push(2), Err(PushError::Closed(2))));
        assert_eq!(q.pop_blocking(), Some(1));
        assert_eq!(q.pop_blocking(), None);
        assert!(!q.push_blocking(3));
    }

    #[test]
    fn blocking_producer_consumer_loses_nothing() {
        let q = Arc::new(FrameQueue::new(2));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..500u64 {
                    assert!(q.push_blocking(i));
                }
                q.close();
            })
        };
        let mut got = Vec::new();
        while let Some(v) = q.pop_blocking() {
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..500).collect::<Vec<_>>());
        assert_eq!(q.pushed(), 500);
        assert_eq!(q.popped(), 500);
    }
}
