//! `loopcomm serve` — the streaming multi-tenant ingest service.
//!
//! Long-running server accepting v2 spool streams (the on-disk format of
//! [`lc_trace::spool`] as the wire protocol, prefixed by a tenant hello —
//! see [`lc_trace::wire`]) from many concurrent producers over TCP and/or
//! Unix sockets. Each connection reassembles frames incrementally with
//! the salvage-exact [`lc_trace::FrameDecoder`]; frames flow through a
//! bounded per-tenant [`queue::FrameQueue`] (backpressure, not growth)
//! into a single-drain [`lc_profiler::IncrementalAnalyzer`] with the same
//! slot-sharded partitioning as offline `loopcomm analyze` — so the live
//! report is byte-identical to the batch one on the same events. Live
//! matrices, thread load, and Prometheus telemetry are served over HTTP
//! ([`http`]).
//!
//! Failure model: every network seam is a fault-injection site
//! ([`lc_faults::FaultSite::NetAccept`] / `NetFrameRead` / `NetWrite` /
//! `TenantFlush`), and any fault degrades exactly one connection — the
//! valid whole-frame prefix is analyzed, the rest is counted, and
//! concurrent tenants are untouched (`tests/serve_fault_matrix.rs`).
//! DESIGN.md §13 has the protocol and the failure-mode table.

pub mod durable;
pub mod http;
pub mod queue;
pub mod sync;
pub mod tenant;

use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use lc_faults::{injected_io_error, FaultAction, FaultInjector, FaultSite, FaultyReader};
use lc_profiler::shards::AccumConfig;
use lc_profiler::{DetectorKind, IncrementalAnalyzer, ProfilerConfig};
use lc_sigmem::SignatureConfig;
use lc_trace::wire::read_hello;
use lc_trace::FrameDecoder;
use parking_lot::Mutex;

use tenant::{DurableTenant, Tenant};

/// What remains visible of a tenant after eviction: enough for `/tenants`
/// to show it exists on disk and how far its analysis had progressed.
#[derive(Clone, Copy, Debug)]
pub struct EvictedTenant {
    /// Events the analyzer had processed when evicted.
    pub events_analyzed: u64,
    /// Frames the analyzer had processed when evicted.
    pub frames_analyzed: u64,
}

/// How long the accept/HTTP loops sleep between non-blocking polls.
const POLL_INTERVAL: Duration = Duration::from_millis(10);
/// How often the tenant reaper re-examines idle/memory eviction criteria.
const REAP_INTERVAL: Duration = Duration::from_millis(100);
/// Socket read buffer for the ingest path.
const READ_CHUNK: usize = 64 * 1024;

/// Server tuning.
#[derive(Clone)]
pub struct ServeConfig {
    /// Ingest endpoints: `unix:<path>` or TCP `host:port` (port 0 picks
    /// an ephemeral port, resolved in [`Server::ingest_addrs`]).
    pub listen: Vec<String>,
    /// HTTP endpoint for reports/metrics (`None` = no HTTP).
    pub http: Option<String>,
    /// Detector every tenant runs.
    pub detector: DetectorKind,
    /// Signature geometry for asymmetric tenants.
    pub sig: SignatureConfig,
    /// Profiler shape (threads = matrix dimension; phase windows are
    /// refused by the incremental analyzer).
    pub prof: ProfilerConfig,
    /// Accumulation knobs shared by all tenants.
    pub accum: AccumConfig,
    /// Analysis workers per tenant.
    pub jobs: usize,
    /// Per-tenant queue capacity in frames (the backpressure bound).
    pub queue_frames: usize,
    /// Concurrent ingest connection limit (excess connections are
    /// closed immediately and counted rejected).
    pub max_conns: usize,
    /// Tenant limit (hellos naming a new tenant beyond it are refused).
    pub max_tenants: usize,
    /// Optional fault plan covering the network seams.
    pub faults: Option<Arc<FaultInjector>>,
    /// Root directory for durable tenant state (`None` = in-memory only).
    /// With it set, queue overflow spills to per-tenant v3 spools, tenants
    /// checkpoint on eviction/shutdown, and a hello for a known name
    /// resumes from disk.
    pub durable_dir: Option<PathBuf>,
    /// Evict a quiet tenant after this much inactivity (requires
    /// `durable_dir`; `None` = never).
    pub tenant_idle: Option<Duration>,
    /// Evict a quiet tenant whose analyzer heap exceeds this many bytes
    /// (requires `durable_dir`; 0 = no cap).
    pub tenant_max_bytes: usize,
    /// Run the MESI coherence backend per tenant with this geometry
    /// (`None` = off). Coherence state is **not** checkpointed: a durable
    /// tenant's coherence report covers only the events analyzed by the
    /// current incarnation.
    pub coherence: Option<lc_cachesim::CoherenceConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            listen: vec!["127.0.0.1:0".into()],
            http: None,
            detector: DetectorKind::Asymmetric,
            sig: SignatureConfig::paper_default(1 << 16, 8),
            prof: ProfilerConfig::nested(8),
            accum: AccumConfig::default(),
            jobs: 1,
            queue_frames: 64,
            max_conns: 64,
            max_tenants: 64,
            faults: None,
            durable_dir: None,
            tenant_idle: None,
            tenant_max_bytes: 0,
            coherence: None,
        }
    }
}

/// One accepted ingest connection's transport.
pub enum Stream {
    /// TCP connection.
    Tcp(TcpStream),
    /// Unix-domain connection.
    Unix(UnixStream),
}

impl Stream {
    /// Force-close both directions (unblocks a reader blocked in `read`).
    fn force_shutdown(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
            Stream::Unix(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
    }
}

impl Read for &Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match *self {
            Stream::Tcp(ref s) => (&mut &*s).read(buf),
            Stream::Unix(ref s) => (&mut &*s).read(buf),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

/// State shared by accept loops, connection handlers, and HTTP.
pub struct Shared {
    pub(crate) cfg: ServeConfig,
    tenants: Mutex<HashMap<String, Arc<Tenant>>>,
    evicted: Mutex<HashMap<String, EvictedTenant>>,
    conns: Mutex<HashMap<u64, Arc<Stream>>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    conn_seq: AtomicU64,
    shutdown: AtomicBool,
    /// Connections accepted (post connection-limit).
    pub conns_accepted: AtomicU64,
    /// Connections refused by the connection limit.
    pub conns_rejected: AtomicU64,
    /// Connections that ended degraded before reaching a tenant (bad
    /// hello, accept fault, handler panic).
    pub conns_faulted: AtomicU64,
}

impl Shared {
    /// Snapshot of all tenants, name-sorted.
    pub fn tenants(&self) -> Vec<Arc<Tenant>> {
        let mut v: Vec<_> = self.tenants.lock().values().cloned().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Look up one tenant.
    pub fn tenant(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants.lock().get(name).cloned()
    }

    /// Tenants currently evicted to disk, name-sorted.
    pub fn evicted(&self) -> Vec<(String, EvictedTenant)> {
        let mut v: Vec<_> = self
            .evicted
            .lock()
            .iter()
            .map(|(n, e)| (n.clone(), *e))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Look up or create the tenant for a hello. With a durable root, a
    /// new incarnation first restores the last checkpoint (counters +
    /// analyzer) and replays any spilled frames, reconciling the ledger so
    /// `received == analyzed + spilled + lost` survives the round trip.
    fn tenant_or_create(&self, name: &str) -> io::Result<Arc<Tenant>> {
        let mut tenants = self.tenants.lock();
        if let Some(t) = tenants.get(name) {
            return Ok(Arc::clone(t));
        }
        if tenants.len() >= self.cfg.max_tenants {
            return Err(io::Error::other(format!(
                "tenant limit ({}) reached",
                self.cfg.max_tenants
            )));
        }
        let mut analyzer = IncrementalAnalyzer::new(
            self.cfg.detector,
            self.cfg.sig,
            self.cfg.prof,
            self.cfg.accum,
            self.cfg.jobs,
        );
        let mut durable_side = None;
        let mut seed = None;
        if let Some(root) = &self.cfg.durable_dir {
            let dir = durable::tenant_dir(root, name);
            let mut stats = durable::PersistedStats::default();
            match durable::load_state(&dir) {
                Ok(Some((persisted, cp))) => match cp.restore(self.cfg.accum) {
                    Ok(a) => {
                        analyzer = a;
                        stats = persisted;
                    }
                    Err(e) => eprintln!(
                        "warning: tenant `{name}`: cannot restore checkpoint ({e}); \
                         starting fresh"
                    ),
                },
                Ok(None) => {}
                Err(e) => {
                    eprintln!("warning: tenant `{name}`: unusable state file ({e}); starting fresh")
                }
            }
            // Replay whatever the spill spools hold (salvage-exact), then
            // reconcile: frames beyond the checkpointed spill count
            // arrived *after* the checkpoint, so they re-enter `received`
            // as well; checkpointed spills the salvage could not recover
            // become `lost`. Either way both sides of the ledger move
            // together.
            let (rf, re) = durable::replay_spills(&dir, &mut analyzer);
            stats.frames_received += rf.saturating_sub(stats.frames_spilled);
            stats.events_received += re.saturating_sub(stats.events_spilled);
            stats.frames_lost += stats.frames_spilled.saturating_sub(rf);
            stats.events_lost += stats.events_spilled.saturating_sub(re);
            stats.frames_spilled = 0;
            stats.events_spilled = 0;
            durable_side = Some(DurableTenant::new(dir, self.cfg.faults.clone()));
            seed = Some(stats);
        }
        // Coherence is per-incarnation: it is not part of the checkpoint,
        // so a restored tenant's coherence counters start from zero here.
        let coherence = self.cfg.coherence.map(|ccfg| {
            let threads = self
                .cfg
                .prof
                .threads
                .clamp(1, lc_cachesim::MAX_COHERENCE_THREADS);
            lc_cachesim::SharedCoherence::new(lc_cachesim::CoherenceBackend::new(ccfg, threads))
        });
        let t = Tenant::spawn(
            name.to_string(),
            analyzer,
            self.cfg.queue_frames,
            self.cfg.faults.clone(),
            durable_side,
            seed,
            coherence,
        );
        tenants.insert(name.to_string(), Arc::clone(&t));
        self.evicted.lock().remove(name);
        Ok(t)
    }

    /// Evict one tenant to disk: only when it is quiet with no open
    /// connections. Holds the tenant map locked across the checkpoint so a
    /// racing hello cannot recreate the tenant before its state lands.
    /// Returns whether the tenant was evicted.
    pub fn evict(&self, name: &str) -> bool {
        let mut tenants = self.tenants.lock();
        let Some(t) = tenants.get(name) else {
            return false;
        };
        if !t.is_durable() {
            // Non-durable server: eviction would discard analysis.
            eprintln!("warning: tenant `{name}`: eviction without --durable-dir refused");
            return false;
        }
        if t.stats.conns_active.load(Ordering::Acquire) != 0 || !t.quiet() {
            return false;
        }
        let t = tenants.remove(name).expect("checked above");
        t.shutdown();
        if let Err(e) = t.checkpoint_to_disk() {
            eprintln!(
                "warning: tenant `{name}`: eviction checkpoint failed ({e}); \
                 state on disk is the previous checkpoint"
            );
        }
        self.evicted.lock().insert(
            name.to_string(),
            EvictedTenant {
                events_analyzed: t.events_analyzed(),
                frames_analyzed: t.frames_analyzed(),
            },
        );
        true
    }

    /// One reaper pass: evict tenants idle past the deadline or over the
    /// per-tenant memory cap. Only quiet, connection-free tenants qualify;
    /// busy ones are re-examined next pass.
    fn reap_pass(&self) {
        let names: Vec<(String, bool)> = {
            let tenants = self.tenants.lock();
            tenants
                .values()
                .map(|t| {
                    let idle = self
                        .cfg
                        .tenant_idle
                        .is_some_and(|d| t.idle_ms() >= d.as_millis() as u64);
                    let over_cap = self.cfg.tenant_max_bytes > 0
                        && t.memory_bytes() > self.cfg.tenant_max_bytes;
                    (t.name.clone(), idle || over_cap)
                })
                .collect()
        };
        for (name, due) in names {
            if due {
                self.evict(&name);
            }
        }
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

/// Decrements a tenant's active-connection gauge on scope exit (runs
/// during unwind too, so a panicking handler never leaks the gauge).
struct ConnGuard(Arc<Tenant>);

impl ConnGuard {
    fn new(t: Arc<Tenant>) -> Self {
        t.stats.conns_active.fetch_add(1, Ordering::AcqRel);
        t.stats.conns_total.fetch_add(1, Ordering::Relaxed);
        Self(t)
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.stats.conns_active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The per-connection ingest path: accept seam, hello, frame reassembly,
/// per-frame enqueue, salvage accounting on any exit. Returns whether the
/// connection ended degraded.
fn conn_body(shared: &Shared, stream: &Stream) -> io::Result<bool> {
    // NetAccept seam: the connection being admitted at all.
    if let Some(action) = shared
        .cfg
        .faults
        .as_ref()
        .and_then(|f| f.check(FaultSite::NetAccept))
    {
        match action {
            FaultAction::Panic => panic!("injected fault: panic at net_accept"),
            FaultAction::Stall { ms } => std::thread::sleep(Duration::from_millis(ms)),
            FaultAction::IoError | FaultAction::ShortWrite { .. } | FaultAction::BitFlip { .. } => {
                return Err(injected_io_error())
            }
        }
    }
    // NetFrameRead seam: every socket read on the reassembly path.
    let mut reader: Box<dyn Read + '_> = match &shared.cfg.faults {
        Some(inj) => Box::new(FaultyReader::with_site(
            stream,
            Arc::clone(inj),
            FaultSite::NetFrameRead,
        )),
        None => Box::new(stream),
    };
    let name = read_hello(&mut reader)?;
    let tenant = shared.tenant_or_create(&name)?;
    let _guard = ConnGuard::new(Arc::clone(&tenant));

    let mut dec = FrameDecoder::new();
    let mut frames = Vec::new();
    let mut chunk = vec![0u8; READ_CHUNK];
    let mut read_error = None;
    // Catch panics out of the read loop (an injected NetFrameRead panic
    // lands here) so the salvage accounting below still runs: the bytes
    // and frames received before the panic stay exactly counted.
    let panicked = std::panic::catch_unwind(AssertUnwindSafe(|| loop {
        if shared.shutting_down() {
            break;
        }
        match reader.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                dec.feed(&chunk[..n], &mut frames);
                for frame in frames.drain(..) {
                    tenant.enqueue(frame);
                }
                // After damage, keep reading so the dropped-byte count is
                // exact (salvage counts everything after the bad frame);
                // the peer finishes its stream and closes.
            }
            Err(e) => {
                read_error = Some(e);
                break;
            }
        }
    }))
    .is_err();
    let summary = dec.finish();
    tenant
        .stats
        .bytes_received
        .fetch_add(summary.bytes_fed, Ordering::Relaxed);
    tenant
        .stats
        .bytes_dropped
        .fetch_add(summary.bytes_dropped, Ordering::Relaxed);
    let degraded = panicked || summary.error.is_some() || read_error.is_some();
    if degraded {
        tenant.stats.conns_faulted.fetch_add(1, Ordering::Relaxed);
    }
    Ok(degraded)
}

fn handle_conn(shared: Arc<Shared>, id: u64, stream: Arc<Stream>) {
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| conn_body(&shared, &stream)));
    match outcome {
        Ok(Ok(degraded)) => {
            if degraded {
                shared.conns_faulted.fetch_add(1, Ordering::Relaxed);
            }
        }
        // An error or panic before/at the hello degrades only this
        // connection; the socket closes and the producer sees a reset.
        Ok(Err(_)) | Err(_) => {
            shared.conns_faulted.fetch_add(1, Ordering::Relaxed);
        }
    }
    stream.force_shutdown();
    shared.conns.lock().remove(&id);
}

fn accept_loop(shared: Arc<Shared>, listener: Listener) {
    loop {
        if shared.shutting_down() {
            break;
        }
        let accepted: Option<Stream> = match &listener {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => Some(Stream::Tcp(s)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                Err(_) => None,
            },
            Listener::Unix(l, _) => match l.accept() {
                Ok((s, _)) => Some(Stream::Unix(s)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                Err(_) => None,
            },
        };
        let Some(stream) = accepted else {
            std::thread::sleep(POLL_INTERVAL);
            continue;
        };
        if shared.conns.lock().len() >= shared.cfg.max_conns {
            shared.conns_rejected.fetch_add(1, Ordering::Relaxed);
            stream.force_shutdown();
            continue;
        }
        shared.conns_accepted.fetch_add(1, Ordering::Relaxed);
        let id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
        let stream = Arc::new(stream);
        shared.conns.lock().insert(id, Arc::clone(&stream));
        let sh = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name(format!("lc-conn-{id}"))
            .spawn(move || handle_conn(sh, id, stream))
            .expect("spawn connection thread");
        shared.conn_threads.lock().push(handle);
    }
    if let Listener::Unix(_, path) = &listener {
        let _ = std::fs::remove_file(path);
    }
}

/// A running ingest server. Dropping it shuts it down.
pub struct Server {
    shared: Arc<Shared>,
    accept_threads: Vec<JoinHandle<()>>,
    http_thread: Option<JoinHandle<()>>,
    reaper_thread: Option<JoinHandle<()>>,
    ingest_addrs: Vec<String>,
    http_addr: Option<String>,
    stopped: bool,
}

impl Server {
    /// Bind every endpoint and start accepting.
    pub fn start(cfg: ServeConfig) -> io::Result<Self> {
        let mut listeners = Vec::new();
        let mut ingest_addrs = Vec::new();
        for addr in &cfg.listen {
            if let Some(path) = addr.strip_prefix("unix:") {
                let _ = std::fs::remove_file(path); // stale socket from a crash
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                ingest_addrs.push(format!("unix:{path}"));
                listeners.push(Listener::Unix(l, PathBuf::from(path)));
            } else {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                ingest_addrs.push(l.local_addr()?.to_string());
                listeners.push(Listener::Tcp(l));
            }
        }
        let http_listener = match &cfg.http {
            Some(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let http_addr = http_listener
            .as_ref()
            .map(|l| l.local_addr())
            .transpose()?
            .map(|a| a.to_string());
        let shared = Arc::new(Shared {
            cfg,
            tenants: Mutex::new(HashMap::new()),
            evicted: Mutex::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
            conn_threads: Mutex::new(Vec::new()),
            conn_seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            conns_accepted: AtomicU64::new(0),
            conns_rejected: AtomicU64::new(0),
            conns_faulted: AtomicU64::new(0),
        });
        let mut accept_threads = Vec::new();
        for (i, l) in listeners.into_iter().enumerate() {
            let sh = Arc::clone(&shared);
            accept_threads.push(
                std::thread::Builder::new()
                    .name(format!("lc-accept-{i}"))
                    .spawn(move || accept_loop(sh, l))
                    .expect("spawn accept thread"),
            );
        }
        let http_thread = http_listener.map(|l| {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("lc-http".into())
                .spawn(move || http::http_loop(sh, l))
                .expect("spawn http thread")
        });
        let reap = shared.cfg.durable_dir.is_some()
            && (shared.cfg.tenant_idle.is_some() || shared.cfg.tenant_max_bytes > 0);
        let reaper_thread = reap.then(|| {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("lc-reaper".into())
                .spawn(move || {
                    while !sh.shutting_down() {
                        sh.reap_pass();
                        std::thread::sleep(REAP_INTERVAL);
                    }
                })
                .expect("spawn reaper thread")
        });
        Ok(Self {
            shared,
            accept_threads,
            http_thread,
            reaper_thread,
            ingest_addrs,
            http_addr,
            stopped: false,
        })
    }

    /// Resolved ingest endpoints (ephemeral TCP ports filled in), in the
    /// order of [`ServeConfig::listen`].
    pub fn ingest_addrs(&self) -> &[String] {
        &self.ingest_addrs
    }

    /// Resolved HTTP endpoint, when one was configured.
    pub fn http_addr(&self) -> Option<&str> {
        self.http_addr.as_deref()
    }

    /// The shared state (tenants, counters) — for in-process inspection.
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Stop accepting, force-close open connections, drain every tenant,
    /// and join all threads. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        self.shared.shutdown.store(true, Ordering::Release);
        for s in self.shared.conns.lock().values() {
            s.force_shutdown();
        }
        for h in self.accept_threads.drain(..) {
            let _ = h.join();
        }
        let handles: Vec<_> = self.shared.conn_threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        for t in self.shared.tenants() {
            t.shutdown();
            // Durable shutdown is a checkpoint: the next incarnation of
            // this server resumes every tenant from here.
            if let Err(e) = t.checkpoint_to_disk() {
                eprintln!(
                    "warning: tenant `{}`: shutdown checkpoint failed ({e})",
                    t.name
                );
            }
        }
        if let Some(h) = self.reaper_thread.take() {
            let _ = h.join();
        }
        if let Some(h) = self.http_thread.take() {
            let _ = h.join();
        }
    }

    /// Block until an external stop request (used by the CLI: runs until
    /// the process is killed).
    pub fn run_forever(&self) -> ! {
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}
