//! Per-tenant ingest state: bounded queue, drain thread, live analyzer.
//!
//! One tenant = one isolated analysis domain. Connections for the tenant
//! decode frames and push them into its bounded [`FrameQueue`]; a single
//! drain thread pops frames into the tenant's
//! [`IncrementalAnalyzer`] — so the analyzer itself is single-writer and
//! the per-tenant memory bound is `jobs` signature pairs plus the loop
//! registry, regardless of connection count or stream length.
//!
//! The drain step is a fault seam ([`FaultSite::TenantFlush`]): an
//! injected panic, I/O error, or bit-flip there loses exactly that frame
//! — counted in [`TenantStats`] as lost frames/events — and nothing
//! else; a stall there exercises the backpressure path end to end.

use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lc_faults::{FaultAction, FaultInjector, FaultSite};
use lc_profiler::{canonical_report, Checkpoint, IncrementalAnalyzer, ProfileReport};
use lc_trace::StampedEvent;
use parking_lot::Mutex;

use super::durable::{self, PersistedStats, SpillWriter};
use super::queue::{FrameQueue, PushError};

/// Milliseconds since the process's first activity reading — the
/// monotonic base for idle-reaping decisions.
pub(crate) fn uptime_ms() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_millis() as u64
}

/// Live per-tenant counters — the "exact lost-frame accounting" surface.
#[derive(Default)]
pub struct TenantStats {
    /// Whole valid frames decoded off this tenant's connections.
    pub frames_received: AtomicU64,
    /// Events in those frames.
    pub events_received: AtomicU64,
    /// Frames that never reached the analyzer (queue closed under them
    /// or an injected drain fault consumed them).
    pub frames_lost: AtomicU64,
    /// Events in the lost frames.
    pub events_lost: AtomicU64,
    /// Stream bytes that never formed a valid frame (torn/corrupt
    /// suffixes, per-connection salvage accounting).
    pub bytes_dropped: AtomicU64,
    /// Total stream bytes received (hello excluded).
    pub bytes_received: AtomicU64,
    /// Connections currently open for this tenant.
    pub conns_active: AtomicU64,
    /// Connections ever opened for this tenant.
    pub conns_total: AtomicU64,
    /// Connections that ended degraded (decode damage, read fault, or
    /// handler panic).
    pub conns_faulted: AtomicU64,
    /// Frames currently spilled to the durable spool, awaiting replay at
    /// the drain's next catch-up pass or the tenant's next restore
    /// (durable tenants only).
    pub frames_spilled: AtomicU64,
    /// Events in the spilled frames.
    pub events_spilled: AtomicU64,
    /// Frames that ever took the spill path this incarnation (monotonic;
    /// not persisted — a diagnostic that overflow happened, even after
    /// catch-up replay returns `frames_spilled` to zero).
    pub frames_spilled_total: AtomicU64,
    /// Events in those frames (monotonic, not persisted).
    pub events_spilled_total: AtomicU64,
}

/// The on-disk half of a durable tenant: its directory and spill writer.
pub struct DurableTenant {
    /// `<durable_dir>/t_<name>`.
    pub dir: PathBuf,
    spill: Mutex<SpillWriter>,
    faults: Option<Arc<FaultInjector>>,
}

impl DurableTenant {
    /// Set up the durable side rooted at `dir`.
    pub fn new(dir: PathBuf, faults: Option<Arc<FaultInjector>>) -> Self {
        Self {
            spill: Mutex::new(SpillWriter::new(dir.clone(), faults.clone())),
            dir,
            faults,
        }
    }
}

/// One tenant: queue + drain thread + live analyzer + counters.
pub struct Tenant {
    /// Tenant name (validated at hello time).
    pub name: String,
    queue: Arc<FrameQueue<Vec<StampedEvent>>>,
    analyzer: Mutex<IncrementalAnalyzer>,
    /// Counters, readable at any time without touching the analyzer.
    pub stats: TenantStats,
    /// True while the drain thread is between pop and analyzer-done.
    in_flight: AtomicBool,
    drain: Mutex<Option<JoinHandle<()>>>,
    /// On-disk state, when the server runs with `--durable-dir`.
    durable: Option<DurableTenant>,
    /// Second analysis backend (`--coherence`): fed the same frames the
    /// analyzer drains. Not checkpointed — covers this incarnation only.
    coherence: Option<lc_cachesim::SharedCoherence>,
    /// Last enqueue/creation instant ([`uptime_ms`]) — the idle-reaper's
    /// clock.
    pub last_activity: AtomicU64,
}

impl Tenant {
    /// Create the tenant and start its drain thread. `durable` arms
    /// spill-to-disk overflow and checkpointing; `seed` restores the
    /// ingest ledger captured by a previous incarnation's checkpoint.
    pub fn spawn(
        name: String,
        analyzer: IncrementalAnalyzer,
        queue_frames: usize,
        faults: Option<Arc<FaultInjector>>,
        durable: Option<DurableTenant>,
        seed: Option<PersistedStats>,
        coherence: Option<lc_cachesim::SharedCoherence>,
    ) -> Arc<Self> {
        let stats = TenantStats::default();
        if let Some(s) = &seed {
            s.seed(&stats);
        }
        let tenant = Arc::new(Self {
            name: name.clone(),
            queue: Arc::new(FrameQueue::new(queue_frames)),
            analyzer: Mutex::new(analyzer),
            stats,
            in_flight: AtomicBool::new(false),
            drain: Mutex::new(None),
            durable,
            coherence,
            last_activity: AtomicU64::new(uptime_ms()),
        });
        let t = Arc::clone(&tenant);
        let handle = std::thread::Builder::new()
            .name(format!("lc-drain-{name}"))
            .spawn(move || t.drain_loop(faults))
            .expect("spawn drain thread");
        *tenant.drain.lock() = Some(handle);
        tenant
    }

    /// Count a decoded frame as received and hand it to the drain.
    ///
    /// Without durability a full queue blocks (backpressure to this
    /// tenant's producers only). A durable tenant never stalls producers:
    /// overflow frames spill to its v3 spool instead, counted spilled and
    /// replayed into the analyzer at the drain's next catch-up pass (or
    /// the tenant's next restore, if the server dies first). Spilling is
    /// **sticky**: once one frame has spilled, every later frame spills
    /// too (the spill lock serializes the decision), so the analyzer sees
    /// a live prefix and the spool holds the contiguous suffix — replay
    /// in generation order reproduces exact arrival order, which the
    /// byte-identity guarantee requires. A frame neither queued nor
    /// spilled is counted lost — so `received == analyzed + spilled +
    /// lost` at every quiescent point.
    pub fn enqueue(&self, frame: Vec<StampedEvent>) {
        let events = frame.len() as u64;
        self.stats.frames_received.fetch_add(1, Ordering::Relaxed);
        self.stats
            .events_received
            .fetch_add(events, Ordering::Relaxed);
        self.last_activity.store(uptime_ms(), Ordering::Relaxed);
        let lost = match &self.durable {
            Some(d) => {
                let mut spill = d.spill.lock();
                let overflow = if spill.has_pending() {
                    // Earlier frames are already on disk awaiting replay;
                    // admitting this one to the queue would analyze it
                    // ahead of them.
                    Some(frame)
                } else {
                    match self.queue.try_push(frame) {
                        Ok(()) => None,
                        Err(PushError::Full(frame)) | Err(PushError::Closed(frame)) => Some(frame),
                    }
                };
                match overflow {
                    None => false,
                    Some(frame) => match spill.append(&frame) {
                        Ok(()) => {
                            self.stats.frames_spilled.fetch_add(1, Ordering::Relaxed);
                            self.stats
                                .events_spilled
                                .fetch_add(events, Ordering::Relaxed);
                            self.stats
                                .frames_spilled_total
                                .fetch_add(1, Ordering::Relaxed);
                            self.stats
                                .events_spilled_total
                                .fetch_add(events, Ordering::Relaxed);
                            false
                        }
                        Err(e) => {
                            eprintln!(
                                "warning: tenant `{}`: spill write failed ({e}); frame lost",
                                self.name
                            );
                            true
                        }
                    },
                }
            }
            None => !self.queue.push_blocking(frame),
        };
        if lost {
            self.stats.frames_lost.fetch_add(1, Ordering::Relaxed);
            self.stats.events_lost.fetch_add(events, Ordering::Relaxed);
        }
    }

    /// Whether this tenant persists to disk.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Milliseconds since the last enqueue (or creation).
    pub fn idle_ms(&self) -> u64 {
        uptime_ms().saturating_sub(self.last_activity.load(Ordering::Relaxed))
    }

    /// Persist the tenant: seal the open spill generation (its index
    /// becomes durable) and atomically write the ingest ledger plus a full
    /// analyzer checkpoint. Returns `Ok(false)` for non-durable tenants.
    /// Failure leaves the previous state file intact (temp + rename).
    pub fn checkpoint_to_disk(&self) -> std::io::Result<bool> {
        let Some(d) = &self.durable else {
            return Ok(false);
        };
        d.spill.lock().seal()?;
        let cp = Checkpoint::capture(&self.analyzer.lock());
        let stats = PersistedStats::capture(&self.stats);
        durable::write_state(&d.dir, &stats, &cp, d.faults.as_ref())?;
        Ok(true)
    }

    /// Pop the next frame, interleaving spill catch-up: whenever the
    /// queue runs dry while spilled frames await replay, drain them from
    /// disk before blocking again. The queue holds only frames *older*
    /// than the oldest spill (enqueue spills sticky), so "queue first,
    /// then spool" is exact arrival order. Returns `None` once the queue
    /// is closed and drained — the drain thread's exit condition.
    fn next_frame(&self) -> Option<Vec<StampedEvent>> {
        loop {
            if let Some(frame) = self.queue.try_pop() {
                return Some(frame);
            }
            if self.queue.is_closed() {
                // Re-check after observing closed: a racing push may have
                // landed between the failed pop and the flag read. Spills
                // beyond this point stay on disk for the next restore.
                return self.queue.try_pop();
            }
            if self.spill_pending() {
                self.spill_catch_up();
                continue;
            }
            super::sync::backoff();
        }
    }

    /// Whether spilled frames await replay (always false when not
    /// durable).
    fn spill_pending(&self) -> bool {
        self.durable
            .as_ref()
            .is_some_and(|d| d.spill.lock().has_pending())
    }

    /// Replay every sealed spill generation into the live analyzer, in
    /// order, then delete the replayed files and move their counts from
    /// `spilled` to analyzed. Runs on the drain thread with the queue
    /// empty; concurrent enqueues keep spilling into a *newer* generation
    /// (sticky), so the replayed files are immutable and the order
    /// invariant holds. Crash-consistency matches restore: a file is
    /// deleted only after its frames reached the analyzer, and the
    /// checkpoint on disk still precedes those frames, so a crash between
    /// replay and the next checkpoint re-replays from the old checkpoint
    /// instead of double-counting.
    fn spill_catch_up(&self) {
        let Some(d) = &self.durable else { return };
        self.in_flight.store(true, Ordering::Release);
        let files = {
            let mut spill = d.spill.lock();
            if let Err(e) = spill.seal() {
                eprintln!(
                    "warning: tenant `{}`: cannot seal spill for catch-up ({e}); \
                     frames stay spooled for the next restore",
                    self.name
                );
                spill.refresh_pending();
                self.in_flight.store(false, Ordering::Release);
                return;
            }
            durable::spill_files(&d.dir)
        };
        for path in files {
            match lc_trace::MmapTrace::open(&path) {
                Ok(m) => {
                    let mut rf = 0u64;
                    let mut re = 0u64;
                    let res = m.stream_from(0, |frame| {
                        self.analyze_frame(frame);
                        rf += 1;
                        re += frame.len() as u64;
                    });
                    if let Err(e) = res {
                        eprintln!(
                            "warning: tenant `{}`: spill catch-up of {} stopped early: {e}",
                            self.name,
                            path.display()
                        );
                    }
                    self.stats.frames_spilled.fetch_sub(rf, Ordering::Relaxed);
                    self.stats.events_spilled.fetch_sub(re, Ordering::Relaxed);
                }
                Err(e) => {
                    eprintln!(
                        "warning: tenant `{}`: unreadable spill {}: {e}",
                        self.name,
                        path.display()
                    );
                }
            }
            std::fs::remove_file(&path).ok();
            std::fs::remove_file(lc_trace::index_path(&path)).ok();
        }
        d.spill.lock().refresh_pending();
        self.in_flight.store(false, Ordering::Release);
    }

    /// One frame into every backend: the profiler's analyzer and, when
    /// enabled, the coherence backend — both see the exact same events in
    /// the exact same order.
    fn analyze_frame(&self, frame: &[StampedEvent]) {
        self.analyzer.lock().on_frame(frame);
        if let Some(c) = &self.coherence {
            c.on_frame(frame);
        }
    }

    fn drain_loop(&self, faults: Option<Arc<FaultInjector>>) {
        while let Some(frame) = self.next_frame() {
            self.in_flight.store(true, Ordering::Release);
            let events = frame.len() as u64;
            let action = faults
                .as_ref()
                .and_then(|f| f.check(FaultSite::TenantFlush));
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                match action {
                    Some(FaultAction::Panic) => {
                        panic!("injected fault: panic at tenant_flush")
                    }
                    Some(FaultAction::Stall { ms }) => {
                        // Stall *inside* the drain: the queue fills and
                        // producers stall behind it — the backpressure
                        // path, not a loss.
                        std::thread::sleep(Duration::from_millis(ms));
                        self.analyze_frame(&frame);
                        true
                    }
                    // An I/O-flavored fault at the drain seam consumes
                    // the frame (analysis "write" failed).
                    Some(FaultAction::IoError)
                    | Some(FaultAction::ShortWrite { .. })
                    | Some(FaultAction::BitFlip { .. }) => false,
                    None => {
                        self.analyze_frame(&frame);
                        true
                    }
                }
            }));
            if !matches!(outcome, Ok(true)) {
                self.stats.frames_lost.fetch_add(1, Ordering::Relaxed);
                self.stats.events_lost.fetch_add(events, Ordering::Relaxed);
            }
            self.in_flight.store(false, Ordering::Release);
        }
    }

    /// True when no connection is open, no frame is queued or spooled,
    /// and the drain is idle — every received frame is either analyzed or
    /// counted lost.
    pub fn quiet(&self) -> bool {
        self.stats.conns_active.load(Ordering::Acquire) == 0
            && self.queue.is_empty()
            && !self.in_flight.load(Ordering::Acquire)
            && !self.spill_pending()
    }

    /// Poll until [`Tenant::quiet`] or the deadline passes. Returns
    /// whether quiescence was reached.
    pub fn wait_quiet(&self, deadline: Duration) -> bool {
        let start = Instant::now();
        while !self.quiet() {
            if start.elapsed() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// Snapshot the merged profile (non-destructive; callable live).
    pub fn report(&self) -> ProfileReport {
        self.analyzer.lock().report()
    }

    /// The canonical plain-text report over the events actually analyzed
    /// — byte-identical to offline `loopcomm analyze --report-out` on the
    /// same events.
    pub fn canonical(&self) -> String {
        let analyzer = self.analyzer.lock();
        canonical_report(&analyzer.report(), analyzer.events())
    }

    /// Snapshot the coherence report, when the backend is enabled.
    pub fn coherence_report(&self) -> Option<lc_cachesim::CoherenceReport> {
        self.coherence.as_ref().map(|c| c.report())
    }

    /// The canonical plain-text coherence report — byte-identical to
    /// offline `loopcomm analyze --coherence --coherence-out` on the same
    /// events. `None` when the backend is off.
    pub fn coherence_canonical(&self) -> Option<String> {
        self.coherence
            .as_ref()
            .map(|c| lc_cachesim::canonical_coherence_report(&c.report()))
    }

    /// Events that reached the analyzer.
    pub fn events_analyzed(&self) -> u64 {
        self.analyzer.lock().events()
    }

    /// Frames that reached the analyzer.
    pub fn frames_analyzed(&self) -> u64 {
        self.analyzer.lock().frames()
    }

    /// Analyzer heap footprint (the bounded-memory claim, live).
    pub fn memory_bytes(&self) -> usize {
        self.analyzer.lock().memory_bytes()
    }

    /// Frames currently waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Close the queue and join the drain thread (idempotent).
    pub fn shutdown(&self) {
        self.queue.close();
        if let Some(h) = self.drain.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for Tenant {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_profiler::shards::AccumConfig;
    use lc_profiler::ProfilerConfig;
    use lc_sigmem::SignatureConfig;
    use lc_trace::{AccessEvent, AccessKind, FuncId, LoopId};

    fn analyzer() -> IncrementalAnalyzer {
        IncrementalAnalyzer::asymmetric(
            SignatureConfig::paper_default(1 << 8, 4),
            ProfilerConfig::nested(4),
            AccumConfig::default(),
            2,
        )
    }

    fn frame(base: u64, n: u64) -> Vec<StampedEvent> {
        (0..n)
            .map(|i| StampedEvent {
                seq: base + i,
                event: AccessEvent {
                    tid: ((base + i) % 4) as u32,
                    addr: 0x100 + ((base + i) % 16) * 8,
                    size: 8,
                    kind: if (base + i) % 2 == 0 {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                    loop_id: LoopId(1),
                    parent_loop: LoopId::NONE,
                    func: FuncId::NONE,
                    site: 0,
                },
            })
            .collect()
    }

    #[test]
    fn frames_flow_to_analyzer_and_quiesce() {
        let t = Tenant::spawn("t".into(), analyzer(), 4, None, None, None, None);
        for i in 0..10 {
            t.enqueue(frame(i * 8, 8));
        }
        assert!(t.wait_quiet(Duration::from_secs(10)));
        assert_eq!(t.stats.frames_received.load(Ordering::Relaxed), 10);
        assert_eq!(t.events_analyzed(), 80);
        assert_eq!(t.stats.frames_lost.load(Ordering::Relaxed), 0);
        t.shutdown();
    }

    #[test]
    fn injected_drain_panic_loses_exactly_one_frame() {
        use lc_faults::{FaultPlan, FaultRule};
        let inj = Arc::new(FaultInjector::new(FaultPlan {
            seed: 0,
            rules: vec![FaultRule::once(
                FaultSite::TenantFlush,
                FaultAction::Panic,
                2,
            )],
        }));
        let t = Tenant::spawn("t".into(), analyzer(), 4, Some(inj), None, None, None);
        for i in 0..6 {
            t.enqueue(frame(i * 5, 5));
        }
        assert!(t.wait_quiet(Duration::from_secs(10)));
        assert_eq!(t.stats.frames_lost.load(Ordering::Relaxed), 1);
        assert_eq!(t.stats.events_lost.load(Ordering::Relaxed), 5);
        assert_eq!(t.events_analyzed(), 25);
        t.shutdown();
    }
}
