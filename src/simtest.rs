//! Model-checking scenarios for the concurrency core.
//!
//! Each scenario is a closed concurrent program over the signature memory
//! or the shard flush path, built to run under the [`lc_sched`]
//! deterministic scheduler: worker threads are [`lc_sched::spawn`]ed, every
//! logical operation is annotated into the runtime's serialized op log, and
//! after joining, the scenario *validates the explored interleaving against
//! the perfect oracle* ([`PerfectReaderSet`]/[`PerfectWriterMap`], driven
//! from the log) — no false negatives in reader sets, valid last writers,
//! lossless shard-delta flushing. A violated oracle panics, which the
//! explorer reports with the schedule's decision trace.
//!
//! The same scenarios back `tests/sched_model_check.rs` and the
//! `loopcomm simtest` CLI subcommand, so CI and developers explore the
//! same space. See DESIGN.md §11.

use std::sync::Arc;

use lc_profiler::shards::{AccumConfig, FlushTarget, LoopRegistry, ShardSet};
use lc_profiler::{AsymmetricProfiler, CommMatrix, FusedConfig, FusedScratch, ProfilerConfig};
use lc_sigmem::{
    BloomGeometry, ConcurrentBloom, PerfectReaderSet, PerfectWriterMap, ReadSignature, ReaderSet,
    SignatureConfig, WriteSignature, WriterMap,
};
use lc_trace::{AccessEvent, AccessKind, AccessSink, FuncId, LoopId};

/// Op-log record kinds (`data[0]` of [`lc_sched::annotate`]).
mod op {
    /// `[BLOOM_INSERT, item, 0, 0]`
    pub const BLOOM_INSERT: u64 = 1;
    /// `[READ_INSERT, addr, tid, 0]`
    pub const READ_INSERT: u64 = 2;
    /// `[WRITE_RECORD, addr, tid, 0]`
    pub const WRITE_RECORD: u64 = 3;
    /// `[DEP_RECORD, src, dst, bytes]`
    pub const DEP_RECORD: u64 = 4;
    /// `[Q_PUSH, frame_id, 0, 0]` — ingest queue accepted a frame.
    pub const Q_PUSH: u64 = 5;
    /// `[Q_FULL, frame_id, 0, 0]` — ingest queue refused a frame (full).
    pub const Q_FULL: u64 = 6;
    /// `[Q_POP, frame_id, 0, 0]` — drain popped a frame.
    pub const Q_POP: u64 = 7;
    /// `[CP_OBSERVE, which, len, 0]` — a reader observed the checkpoint
    /// file (`which`: 0 = old, 1 = new, 2 = torn/other).
    pub const CP_OBSERVE: u64 = 8;
}

/// A named model-checking scenario.
pub struct Scenario {
    /// Stable name used by `loopcomm simtest <name>` and the tests.
    pub name: &'static str,
    /// One-line description for `simtest list` output.
    pub about: &'static str,
    /// Suggested preemption bound for exhaustive exploration (`None` =
    /// unbounded is still tractable for this scenario).
    pub default_preemption_bound: Option<usize>,
    /// Mutants (see [`lc_sched::mutant_active`]) this scenario's oracle
    /// provably catches — exercised by tests and `simtest --all-mutants`.
    pub catchable_mutants: &'static [&'static str],
    run: fn(),
}

impl Scenario {
    /// Execute the scenario body once (must be called inside a simulation,
    /// i.e. from an [`lc_sched::Explorer`] run).
    pub fn run(&self) {
        (self.run)()
    }
}

/// The scenario registry.
pub fn scenarios() -> &'static [Scenario] {
    &[
        Scenario {
            name: "bloom",
            about: "2 threads x 2 inserts into one tiny concurrent Bloom filter; \
                    oracle: no false negatives after join",
            default_preemption_bound: Some(2),
            catchable_mutants: &["bitvec-lost-update"],
            run: bloom_scenario,
        },
        Scenario {
            name: "write-sig",
            about: "2 threads x 2 records into a 2-slot write signature; \
                    oracle: exact slot-aliased last writer vs the perfect map",
            default_preemption_bound: None,
            catchable_mutants: &[],
            run: write_sig_scenario,
        },
        Scenario {
            name: "read-sig",
            about: "2 threads x 2 inserts into a 2-slot read signature (lazy \
                    filter publication race); oracle: no false negatives",
            default_preemption_bound: Some(2),
            catchable_mutants: &["readsig-relaxed-publish", "bitvec-lost-update"],
            run: read_sig_scenario,
        },
        Scenario {
            name: "flush",
            about: "2 threads x 2 record_dep racing a concurrent explicit \
                    flush; oracle: lossless deltas in the global matrix",
            default_preemption_bound: Some(2),
            catchable_mutants: &["shards-drop-contended-delta"],
            run: flush_scenario,
        },
        Scenario {
            name: "ingest",
            about: "bounded serve queue: producer try_push racing a drain \
                    try_pop at capacity 2; oracle: popped ids are exactly \
                    the accepted ids, FIFO",
            default_preemption_bound: Some(2),
            catchable_mutants: &["ingest-drop-contended-frame"],
            run: ingest_scenario,
        },
        Scenario {
            name: "skipfilter",
            about: "fused consumer's idempotent-read skip filter with a \
                    write to the same address racing the re-read; oracle: \
                    differential vs the materialized per-event path over \
                    the serialized op order",
            default_preemption_bound: Some(3),
            catchable_mutants: &["skipfilter-stale-elide"],
            run: skipfilter_scenario,
        },
        Scenario {
            name: "checkpoint",
            about: "atomic checkpoint publication racing a concurrent \
                    reader; oracle: every observed file is fully-old or \
                    fully-new, never torn",
            default_preemption_bound: None,
            catchable_mutants: &["checkpoint-torn-write"],
            run: checkpoint_scenario,
        },
    ]
}

/// Look up a scenario by name.
pub fn find(name: &str) -> Option<&'static Scenario> {
    scenarios().iter().find(|s| s.name == name)
}

/// 2 threads × 2 inserts into one shared filter sized for 4 items at a
/// loose rate (one 64-bit word, so concurrent `fetch_or`s genuinely
/// collide). Every insert that completed before the join must be visible:
/// Bloom filters have false positives, never false negatives.
fn bloom_scenario() {
    // One 64-bit word, two derived hashes: every insert's `fetch_or`s land
    // in the same atomic word, so concurrent inserts genuinely collide and
    // the schedule count stays small enough for unbounded exhaustion.
    let geometry = BloomGeometry {
        m_bits: 64,
        k: 2,
        block_bits: 64,
    };
    let bloom = Arc::new(ConcurrentBloom::new(geometry));
    let mut handles = Vec::new();
    for t in 0..2u64 {
        let bloom = Arc::clone(&bloom);
        handles.push(lc_sched::spawn(move || {
            for i in 0..2u64 {
                let item = t * 2 + i;
                bloom.insert(item);
                lc_sched::annotate([op::BLOOM_INSERT, item, 0, 0]);
            }
        }));
    }
    for h in handles {
        h.join();
    }
    // Oracle: drive the perfect reader set from the serialized log (item
    // plays the role of tid at a single pseudo-address).
    let perfect = PerfectReaderSet::new();
    for (_, data) in lc_sched::op_log() {
        if data[0] == op::BLOOM_INSERT {
            perfect.insert(0, data[1] as u32);
        }
    }
    for item in 0..4u64 {
        if perfect.contains(0, item as u32) {
            assert!(
                bloom.contains(item),
                "false negative: item {item} was inserted (per the op log) \
                 but the filter does not contain it"
            );
        }
    }
}

/// 2 threads × 2 records into a 2-slot write signature. Because a record
/// and its annotation are atomic with respect to scheduling, the op log's
/// order is the execution order and the signature must agree *exactly*
/// with the last aliasing write in the log (validity of the last writer),
/// which itself must match the perfect writer map's per-address answer
/// for the address that wrote the slot last.
fn write_sig_scenario() {
    const N_SLOTS: usize = 2;
    let sig = Arc::new(WriteSignature::new(N_SLOTS));
    let addrs: [u64; 4] = [0x10, 0x11, 0x12, 0x13];
    let mut handles = Vec::new();
    for t in 0..2u32 {
        let sig = Arc::clone(&sig);
        handles.push(lc_sched::spawn(move || {
            for i in 0..2 {
                let addr = addrs[(t as usize) * 2 + i];
                sig.record(addr, t);
                lc_sched::annotate([op::WRITE_RECORD, addr, t as u64, 0]);
            }
        }));
    }
    for h in handles {
        h.join();
    }
    let log = lc_sched::op_log();
    let perfect = PerfectWriterMap::new();
    for (_, data) in &log {
        if data[0] == op::WRITE_RECORD {
            perfect.record(data[1], data[2] as u32);
        }
    }
    for &addr in &addrs {
        let slot = lc_sigmem::slot_index(addr, N_SLOTS);
        // The last log record whose address aliases this slot.
        let last = log.iter().rfind(|(_, d)| {
            d[0] == op::WRITE_RECORD && lc_sigmem::slot_index(d[1], N_SLOTS) == slot
        });
        let (last_addr, expect) = match last {
            Some((_, d)) => (d[1], Some(d[2] as u32)),
            None => (addr, None),
        };
        assert_eq!(
            sig.last_writer(addr),
            expect,
            "slot-aliased last writer for {addr:#x} must be the log's last \
             aliasing write"
        );
        if let Some(w) = expect {
            assert_eq!(
                perfect.last_writer(last_addr),
                Some(w),
                "signature answer must match the perfect map at the aliased \
                 address {last_addr:#x}"
            );
        }
    }
}

/// 2 threads × 2 inserts into a 2-slot read signature with a tiny filter
/// geometry, so the lazy filter allocation races on publication and the
/// Bloom bits race on `fetch_or`. Oracle: every insert recorded in the op
/// log is contained after the join — the signature's no-false-negative
/// contract (§IV-D2).
fn read_sig_scenario() {
    const N_SLOTS: usize = 2;
    let sig = Arc::new(ReadSignature::new(N_SLOTS, 4, 0.05));
    let addrs: [u64; 2] = [0x20, 0x21];
    let mut handles = Vec::new();
    for t in 0..2u32 {
        let sig = Arc::clone(&sig);
        handles.push(lc_sched::spawn(move || {
            for &addr in &addrs {
                sig.insert(addr, t);
                lc_sched::annotate([op::READ_INSERT, addr, t as u64, 0]);
            }
        }));
    }
    for h in handles {
        h.join();
    }
    let perfect = PerfectReaderSet::new();
    for (_, data) in lc_sched::op_log() {
        if data[0] == op::READ_INSERT {
            perfect.insert(data[1], data[2] as u32);
        }
    }
    for &addr in &addrs {
        for t in 0..2u32 {
            if perfect.contains(addr, t) {
                assert!(
                    sig.contains(addr, t),
                    "false negative: ({addr:#x}, t{t}) was inserted (per the \
                     op log) but the signature does not contain it"
                );
            }
        }
    }
    assert!(
        sig.allocated_filters() <= N_SLOTS,
        "publish race must never allocate more than one filter per slot"
    );
}

/// 2 recorder threads × 2 `record_dep` each, racing the main thread's
/// explicit `flush` (the reader-side path with the watchdog lock). After
/// joining and a final flush, the global matrix must hold *exactly* the
/// bytes the op log says were recorded — the lossless shard-delta
/// contract — and the health latch must be clean.
fn flush_scenario() {
    let cfg = AccumConfig {
        sharded: true,
        flush_epoch: 2,
        delta_slots: 4,
        loop_capacity: 4,
        flush_timeout_ms: 2000,
    };
    let set = Arc::new(ShardSet::new(2, cfg));
    let global = Arc::new(CommMatrix::new(4));
    let loops = Arc::new(LoopRegistry::new(4, 4));
    let mut handles = Vec::new();
    for t in 0..2u32 {
        let (set, global, loops) = (Arc::clone(&set), Arc::clone(&global), Arc::clone(&loops));
        handles.push(lc_sched::spawn(move || {
            for i in 0..2u64 {
                let (src, dst, bytes) = (t + 1, t, 8 + i);
                set.record_dep(
                    t,
                    lc_trace::LoopId::NONE,
                    src,
                    dst,
                    bytes,
                    FlushTarget {
                        track_nested: false,
                        global: &global,
                        loops: &loops,
                        telemetry: None,
                    },
                );
                lc_sched::annotate([op::DEP_RECORD, src as u64, dst as u64, bytes]);
            }
        }));
    }
    // Race the explicit flush against the recorders.
    set.flush(FlushTarget {
        track_nested: false,
        global: &global,
        loops: &loops,
        telemetry: None,
    });
    for h in handles {
        h.join();
    }
    set.flush(FlushTarget {
        track_nested: false,
        global: &global,
        loops: &loops,
        telemetry: None,
    });
    // Oracle: per-(src,dst) byte sums from the serialized log.
    let mut expected = std::collections::HashMap::new();
    for (_, data) in lc_sched::op_log() {
        if data[0] == op::DEP_RECORD {
            *expected
                .entry((data[1] as u32, data[2] as u32))
                .or_insert(0u64) += data[3];
        }
    }
    for src in 0..4u32 {
        for dst in 0..4u32 {
            let want = expected.get(&(src, dst)).copied().unwrap_or(0);
            assert_eq!(
                global.get(src, dst),
                want,
                "lossless flush: matrix[{src}][{dst}] must equal the op log sum"
            );
        }
    }
    assert_eq!(set.deps(), 4, "every record_dep counted");
    assert_eq!(set.health().lost_deltas(), 0, "no deltas lost");
    assert_eq!(set.health().flush_panics(), 0, "no flush panics");
}

/// The serve ingest seam: a producer `try_push`es 3 frames into a
/// capacity-2 [`FrameQueue`] while a drain thread `try_pop`s, then the
/// main thread drains the leftovers after both join. Annotations are tied
/// to the outcome each caller *observed* (accepted / full / popped), and
/// pops are serialized (one popper at a time), so the log's `Q_POP`
/// subsequence is the true dequeue order. Oracle: the popped ids are
/// exactly the accepted ids in FIFO order, and the queue's own counters
/// agree — an accepted-but-never-delivered frame (the
/// `ingest-drop-contended-frame` mutant turns lock contention into
/// exactly that) breaks it.
fn ingest_scenario() {
    use crate::serve::queue::{FrameQueue, PushError};

    let q = Arc::new(FrameQueue::new(2));
    let producer = {
        let q = Arc::clone(&q);
        lc_sched::spawn(move || {
            for id in 1..=3u64 {
                match q.try_push(id) {
                    Ok(()) => lc_sched::annotate([op::Q_PUSH, id, 0, 0]),
                    Err(PushError::Full(_)) => lc_sched::annotate([op::Q_FULL, id, 0, 0]),
                    Err(PushError::Closed(_)) => unreachable!("queue is never closed here"),
                }
            }
        })
    };
    let drain = {
        let q = Arc::clone(&q);
        lc_sched::spawn(move || {
            for _ in 0..3 {
                if let Some(id) = q.try_pop() {
                    lc_sched::annotate([op::Q_POP, id, 0, 0]);
                }
            }
        })
    };
    producer.join();
    drain.join();
    // Leftover frames drain here, with no concurrency: pop order stays
    // the true order.
    while let Some(id) = q.try_pop() {
        lc_sched::annotate([op::Q_POP, id, 0, 0]);
    }
    let log = lc_sched::op_log();
    let accepted: Vec<u64> = log
        .iter()
        .filter(|(_, d)| d[0] == op::Q_PUSH)
        .map(|(_, d)| d[1])
        .collect();
    let refused: Vec<u64> = log
        .iter()
        .filter(|(_, d)| d[0] == op::Q_FULL)
        .map(|(_, d)| d[1])
        .collect();
    let popped: Vec<u64> = log
        .iter()
        .filter(|(_, d)| d[0] == op::Q_POP)
        .map(|(_, d)| d[1])
        .collect();
    assert_eq!(
        accepted.len() + refused.len(),
        3,
        "every push attempt resolved exactly once"
    );
    assert_eq!(
        popped, accepted,
        "delivered frames must be exactly the accepted frames, in FIFO \
         order (an accepted frame that never arrives is a dropped frame)"
    );
    assert_eq!(q.pushed(), accepted.len() as u64, "push counter honest");
    assert_eq!(q.popped(), popped.len() as u64, "pop counter honest");
    assert!(q.is_empty(), "nothing left behind");
}

/// The fused skip-filter invalidation seam (DESIGN.md §15): a reader
/// thread pushes two idempotent reads of one address through a fused
/// consumer while a writer thread pushes a write of the same address.
/// The consumer is a single [`AsymmetricProfiler`] + [`FusedScratch`]
/// serialized by a scheduler-visible mutex, so exploration enumerates
/// every arrival order — exactly the serve-path situation where the
/// ingest queue decides the stream order the skip filter must survive.
///
/// The dangerous order is `read, write, read`: the first read installs a
/// skip entry ("thread 0 is in the read-sig class for `ADDR`"), the
/// write clears the class and bumps its generation stamp, and the second
/// read must *not* trust the stale entry — it carries the RAW dependence
/// `1 → 0`. The `skipfilter-stale-elide` mutant skips the generation
/// check, eliding that read and suppressing the dependence.
///
/// Oracle: differential. Annotations are made under the consumer lock,
/// so the op log *is* the serialized arrival order; replaying it through
/// the materialized per-event path must give identical dependence totals
/// and an identical global matrix — the fused engine's byte-identity
/// contract, checked per interleaving.
fn skipfilter_scenario() {
    const ADDR: u64 = 0x40;
    fn ev(tid: u32, kind: AccessKind) -> AccessEvent {
        AccessEvent {
            tid,
            addr: ADDR,
            size: 8,
            kind,
            loop_id: LoopId::NONE,
            parent_loop: LoopId::NONE,
            func: FuncId::NONE,
            site: 0,
        }
    }

    let sig = SignatureConfig::paper_default(2, 2);
    let cfg = ProfilerConfig {
        threads: 2,
        track_nested: false,
        phase_window: None,
    };
    let fused = Arc::new(AsymmetricProfiler::asymmetric(sig, cfg));
    // Tiny tables keep per-schedule allocation cheap; geometry never
    // affects semantics (DESIGN.md §15), which is rather the point.
    let scratch = Arc::new(lc_sched::sync::Mutex::new(FusedScratch::new(FusedConfig {
        memo_entries: 1 << 4,
        skip_entries: 1 << 4,
        stamp_entries: 1 << 4,
        skip_filter: true,
    })));

    let mut handles = Vec::new();
    {
        let (fused, scratch) = (Arc::clone(&fused), Arc::clone(&scratch));
        handles.push(lc_sched::spawn(move || {
            for _ in 0..2 {
                let mut s = scratch.lock();
                fused.on_block_fused(&[ev(0, AccessKind::Read)], &mut s);
                lc_sched::annotate([op::READ_INSERT, ADDR, 0, 0]);
            }
        }));
    }
    {
        let (fused, scratch) = (Arc::clone(&fused), Arc::clone(&scratch));
        handles.push(lc_sched::spawn(move || {
            let mut s = scratch.lock();
            fused.on_block_fused(&[ev(1, AccessKind::Write)], &mut s);
            lc_sched::annotate([op::WRITE_RECORD, ADDR, 1, 0]);
        }));
    }
    for h in handles {
        h.join();
    }

    let oracle = AsymmetricProfiler::asymmetric(sig, cfg);
    for (_, data) in lc_sched::op_log() {
        match data[0] {
            op::READ_INSERT => oracle.on_access(&ev(data[2] as u32, AccessKind::Read)),
            op::WRITE_RECORD => oracle.on_access(&ev(data[2] as u32, AccessKind::Write)),
            _ => {}
        }
    }
    assert_eq!(
        fused.dependencies(),
        oracle.dependencies(),
        "skip filter must never change the dependence count: a stale \
         elide after an intervening write suppresses a RAW dependence"
    );
    assert_eq!(
        fused.global_matrix(),
        oracle.global_matrix(),
        "fused consumer's matrix must be byte-identical to the \
         materialized per-event replay of the same arrival order"
    );
}

/// The checkpoint publication seam: a writer replaces an existing
/// checkpoint via [`lc_profiler::write_atomic_blob`] (temp + fsync +
/// rename, with a facade-atomic publication clock between the durable
/// write and the rename) while a reader polls the file — the
/// crash-during-checkpoint reader from the recovery story, compressed to
/// one decision window. Oracle: every observation is the *complete* old
/// blob or the *complete* new blob. The `checkpoint-torn-write` mutant
/// rewrites the file in place in two halves with a scheduling point
/// between them, and a reader interleaved there sees a torn prefix.
fn checkpoint_scenario() {
    use crate::serve::sync::{AtomicU64, Ordering};
    use lc_faults::FaultSite;
    use lc_profiler::write_atomic_blob;

    // Unique file per run: exploration re-enters this body once per
    // schedule (and concurrent tests may explore it in parallel), so each
    // run sets up and tears down its own file.
    static RUN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let run = RUN.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let path =
        std::env::temp_dir().join(format!("lc_cp_scenario_{}_{run}.lccp", std::process::id()));
    let old: Arc<Vec<u8>> = Arc::new(vec![0xAA; 64]);
    let new: Arc<Vec<u8>> = Arc::new(vec![0xBB; 64]);
    std::fs::write(&path, old.as_slice()).expect("seed old checkpoint");

    let writer = {
        let (path, new) = (path.clone(), Arc::clone(&new));
        lc_sched::spawn(move || {
            write_atomic_blob(&path, &new, FaultSite::CheckpointWrite, None)
                .expect("publish new checkpoint");
        })
    };
    let reader = {
        let (path, old, new) = (path.clone(), Arc::clone(&old), Arc::clone(&new));
        // The reader's own clock: each bump is a decision point, so the
        // explorer can place each observation anywhere in the writer's
        // publication protocol.
        let clock = AtomicU64::new(0);
        lc_sched::spawn(move || {
            for _ in 0..2 {
                clock.fetch_add(1, Ordering::SeqCst);
                let bytes = std::fs::read(&path).expect("checkpoint file exists");
                let which = if bytes == *old {
                    0
                } else if bytes == *new {
                    1
                } else {
                    2
                };
                lc_sched::annotate([op::CP_OBSERVE, which, bytes.len() as u64, 0]);
                assert!(
                    which < 2,
                    "torn checkpoint observed: {} bytes that are neither the \
                     old nor the new blob — atomic publication violated",
                    bytes.len()
                );
            }
        })
    };
    writer.join();
    reader.join();
    let final_bytes = std::fs::read(&path).expect("checkpoint file exists");
    assert_eq!(
        final_bytes, *new,
        "after the writer joins, the published checkpoint is the new blob"
    );
    let _ = std::fs::remove_file(&path);
}
