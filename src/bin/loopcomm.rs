//! `loopcomm` — command-line front end to the profiler.
//!
//! ```text
//! loopcomm list
//! loopcomm profile  <workload> [--threads N] [--size simdev|simsmall|simlarge] [--slots 2^k]
//! loopcomm nested   <workload> [--threads N] [--size ...]
//! loopcomm load     <workload> [--threads N] [--size ...]
//! loopcomm classify <workload> [--threads N] [--size ...]
//! loopcomm map      <workload> [--threads N] [--size ...]
//! loopcomm phases   <workload> [--threads N] [--size ...] [--window W]
//! loopcomm report   <workload> <out.html> [--threads N] [--size ...]
//! loopcomm record   <workload> <file.lctrace> [--threads N] [--size ...] [--spool|--v3]
//! loopcomm record   <workload> --connect HOST:PORT [--tenant NAME]
//! loopcomm synth    <file> [--events N] [--threads N] [--seed S] [--v3]
//! loopcomm analyze  <file.lctrace> [--slots 2^k] [--jobs N] [--batch N] [--no-coalesce] [--perfect]
//!                   [--checkpoint DIR [--every N]] [--resume DIR] [--mmap]
//!                   [--coherence [--line-size N] [--cache-kib N] [--assoc N] [--coherence-out P]]
//! loopcomm serve    [--listen ADDR]... [--http ADDR] [--jobs N] [--perfect] [--coherence]
//!                   [--durable-dir DIR] [--tenant-idle-secs S] [--tenant-max-bytes B]
//! loopcomm stream   <file.lctrace> --connect HOST:PORT [--tenant NAME]
//! loopcomm simulate <workload> [--threads N] [--size ...]
//! loopcomm hotsites <workload> [--threads N] [--size ...]
//! loopcomm deps     <workload> [--threads N] [--size ...]
//! loopcomm simtest  <scenario|all|list> [--explore N] [--seed S]
//!                   [--max-preemptions N|none] [--max-schedules N]
//!                   [--mutant NAME] [--trace-out PATH]
//! ```

use std::sync::Arc;

use lc_profiler::classify::{
    extract_extended, synthetic_dataset, synthetic_ext_dataset, CoherenceFeatures,
    ExtNearestCentroid, NearestCentroid,
};
use lc_profiler::{greedy_mapping, MachineTopology, NestedReport, ThreadMapping};
use loopcomm::prelude::*;

/// Upper bound for `--batch`: past this a "batch" is no longer a cache
/// tiling knob but an accidental whole-trace materialization, so absurd
/// values are rejected at parse time rather than silently clamped.
const MAX_BATCH_EVENTS: usize = 1 << 24;

struct Options {
    threads: usize,
    size: InputSize,
    slots: usize,
    window: u64,
    seed: u64,
    loop_capacity: usize,
    metrics: Option<String>,
    spool: bool,
    salvage: bool,
    jobs: usize,
    batch: usize,
    no_coalesce: bool,
    /// `analyze`: run the fused zero-materialization replay engine
    /// (default). `--no-fused` restores the materialized batched path.
    fused: bool,
    /// `analyze`: enable the idempotent-access skip filter inside the
    /// fused engine (default). `--no-skip-filter` keeps the fused
    /// pipeline but probes the detector on every read.
    skip_filter: bool,
    /// `synth`: probability in [0,1] that an event reuses an address
    /// from a small hot set instead of the uniform working set.
    addr_reuse: f64,
    /// `synth`: distinct 8-byte addresses in the uniform working set.
    working_set: u64,
    perfect: bool,
    /// `serve`: ingest endpoints (`unix:<path>` or TCP `host:port`).
    listen: Vec<String>,
    /// `serve`: HTTP endpoint for reports/metrics.
    http: Option<String>,
    /// `record`/`stream`: stream to a `loopcomm serve` endpoint instead
    /// of a file.
    connect: Option<String>,
    /// `record --connect`/`stream`: tenant name sent in the hello.
    tenant: String,
    /// `record --connect`/`stream`: events per wire frame.
    frame_events: usize,
    /// `serve`: per-tenant queue capacity in frames.
    queue_frames: usize,
    /// `serve`: concurrent ingest connection limit.
    max_conns: usize,
    /// `serve`: tenant limit.
    max_tenants: usize,
    /// `analyze`: also write the canonical plain-text report here (the
    /// byte-identical counterpart of the server's `/tenants/<t>/report`).
    report_out: Option<String>,
    /// `analyze`: checkpoint directory — the streaming analyzer writes a
    /// crash-resumable snapshot there every `--every` events.
    checkpoint: Option<String>,
    /// `analyze --checkpoint`: events between checkpoints.
    every: u64,
    /// `analyze`: resume from the checkpoint in this directory.
    resume: Option<String>,
    /// `analyze`: replay through an mmap-backed v3 view (bounded RSS,
    /// out-of-core spools).
    mmap: bool,
    /// `record`/`synth`: write the page-aligned, indexed v3 spool format.
    v3: bool,
    /// `synth`: events to generate.
    events: u64,
    /// `serve`: root directory for durable tenant state (spill spools +
    /// checkpoints). Enables restart/eviction recovery.
    durable_dir: Option<String>,
    /// `serve`: evict tenants idle for this many seconds (0 = never).
    tenant_idle_secs: u64,
    /// `serve`: per-tenant analyzer memory cap in bytes (0 = uncapped).
    tenant_max_bytes: usize,
    /// `analyze`/`serve`/`classify`: also run the MESI coherence backend
    /// (per-loop invalidation/transfer/bus matrices, false-sharing
    /// detection).
    coherence: bool,
    /// Coherence geometry: cache-line size in bytes.
    line_size: u64,
    /// Coherence geometry: per-core private cache capacity in KiB.
    cache_kib: u64,
    /// Coherence geometry: set associativity.
    assoc: usize,
    /// `analyze --coherence`: also write the canonical plain-text
    /// coherence report here (byte-identical across `--jobs`).
    coherence_out: Option<String>,
    /// Hidden test hook: a fault-plan file armed on the profiler's flush
    /// seams and the spool writer (see `lc_faults`). Deliberately absent
    /// from the usage text — it exists for the fault-matrix tests and for
    /// reproducing failures, not for routine profiling.
    fault_plan: Option<String>,
    #[cfg(feature = "sched")]
    sim: SimtestOptions,
}

/// Options specific to `loopcomm simtest` (the model-checking harness).
#[cfg(feature = "sched")]
#[derive(Default)]
struct SimtestOptions {
    /// `--explore N`: run N seeded random schedules instead of the
    /// default bounded-exhaustive DFS.
    explore: Option<u64>,
    /// `--max-preemptions N|none`: override the scenario's suggested
    /// preemption bound. Outer `None` = use the scenario default;
    /// `Some(None)` = unbounded.
    preemptions: Option<Option<usize>>,
    /// `--max-schedules N`: exhaustive-exploration safety valve.
    max_schedules: Option<u64>,
    /// `--mutant NAME` (repeatable): activate seeded mutants inside the
    /// simulation — the harness is then expected to FIND a violation.
    mutants: Vec<String>,
    /// `--trace-out PATH`: append failing decision traces here (one
    /// `scenario=...;choices=...` line each) for artifact upload.
    trace_out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: loopcomm <command> [workload] [options]\n\
         \n\
         commands:\n\
         \x20 list                   list available workloads\n\
         \x20 profile  <workload>    global communication matrix + stats\n\
         \x20 nested   <workload>    per-loop nested pattern tree (Fig. 6/7)\n\
         \x20 load     <workload>    Eq. 1 thread-load bars (Fig. 8)\n\
         \x20 classify <workload>    dominant parallel-pattern class (§VI)\n\
         \x20 map      <workload>    communication-aware thread mapping\n\
         \x20 phases   <workload>    dynamic phase detection (§V-A4)\n\
         \x20 report   <workload> <out.html>  write a full HTML report\n\
         \x20 record   <workload> <file>  record an access trace to disk\n\
         \x20                        (or `--connect HOST:PORT` to stream it\n\
         \x20                        live to a `loopcomm serve` instance)\n\
         \x20 synth    <file>        generate a deterministic synthetic trace\n\
         \x20                        spool (streamed to disk; `--v3` for the\n\
         \x20                        indexed page-aligned format)\n\
         \x20 analyze  <file>        offline analysis of a recorded trace\n\
         \x20 serve                  streaming multi-tenant ingest service:\n\
         \x20                        accepts spool streams over TCP/Unix\n\
         \x20                        sockets, analyzes incrementally, and\n\
         \x20                        serves live reports + metrics over HTTP\n\
         \x20 stream   <file>        replay a recorded trace to a server\n\
         \x20                        (`--connect HOST:PORT [--tenant NAME]`)\n\
         \x20 simulate <workload>    MESI cache simulation of mappings\n\
         \x20 hotsites <workload>    hottest source access sites\n\
         \x20 deps     <workload>    full RAW/WAR/WAW/RAR taxonomy\n\
         \x20 simtest  <scenario>    deterministic model checking of the\n\
         \x20                        concurrency core (`all` runs every\n\
         \x20                        scenario, `list` enumerates them);\n\
         \x20                        needs the default `sched` feature\n\
         \n\
         options:\n\
         \x20 --threads N      worker threads (default 8)\n\
         \x20 --size S         simdev | simsmall | simlarge (default simsmall)\n\
         \x20 --slots K        signature slots (default 1048576)\n\
         \x20 --window W       phase window in dependencies (default 2000)\n\
         \x20 --seed S         workload RNG seed (default 42)\n\
         \x20 --loop-capacity K  loop-matrix registry capacity (default 1024)\n\
         \x20 --metrics PATH   (profile) write run telemetry; `.json` gets\n\
         \x20                  JSON, anything else Prometheus text\n\
         \x20 --spool          (record) write the crash-tolerant framed v2\n\
         \x20                  format: every flushed frame survives a crash\n\
         \x20 --salvage        (analyze) recover the longest valid prefix of\n\
         \x20                  a truncated or corrupted trace instead of failing\n\
         \x20 --jobs N         (analyze) worker threads for slot-sharded\n\
         \x20                  parallel replay (default 1; results identical)\n\
         \x20 --batch N        (analyze) events per replay block, valid range\n\
         \x20                  1..=16777216 (default 1024; throughput knob,\n\
         \x20                  results identical)\n\
         \x20 --no-coalesce    (analyze) disable the run-coalescing pre-pass\n\
         \x20 --no-fused       (analyze) materialized batched replay instead\n\
         \x20                  of the fused zero-copy engine (results\n\
         \x20                  identical; the fused engine is the default)\n\
         \x20 --no-skip-filter (analyze) fused engine without the\n\
         \x20                  idempotent-access skip filter\n\
         \x20 --perfect        (analyze, serve) exact perfect-signature\n\
         \x20                  baseline detector instead of the asymmetric\n\
         \x20                  signatures\n\
         \x20 --coherence      (analyze, serve, classify) also run the MESI\n\
         \x20                  coherence backend: per-loop invalidation,\n\
         \x20                  cache-to-cache transfer, and bus-traffic\n\
         \x20                  matrices plus false-sharing detection\n\
         \x20 --line-size N    (coherence) cache-line bytes, a power of two\n\
         \x20                  in 16..=512 (default 64)\n\
         \x20 --cache-kib N    (coherence) per-core cache KiB, a power of\n\
         \x20                  two in 1..=65536 (default 16)\n\
         \x20 --assoc N        (coherence) set associativity, a power of two\n\
         \x20                  in 1..=64 (default 4)\n\
         \x20 --coherence-out P  (analyze --coherence) write the canonical\n\
         \x20                  coherence report — byte-identical for any\n\
         \x20                  --jobs value\n\
         \x20 --report-out P   (analyze) also write the canonical plain-text\n\
         \x20                  report — byte-identical to the server's\n\
         \x20                  /tenants/<t>/report on the same events\n\
         \x20 --checkpoint DIR (analyze) stream the analysis and write a\n\
         \x20                  crash-resumable snapshot (signatures, matrices,\n\
         \x20                  replay cursor) to DIR every --every events\n\
         \x20 --every N        (analyze --checkpoint) events between\n\
         \x20                  checkpoints (default 1000000)\n\
         \x20 --resume DIR     (analyze) resume from DIR's checkpoint; the\n\
         \x20                  final report is byte-identical to an\n\
         \x20                  uninterrupted run\n\
         \x20 --mmap           (analyze) replay a v3 spool through an mmap\n\
         \x20                  view: bounded RSS even for spools far larger\n\
         \x20                  than RAM\n\
         \x20 --v3             (record, synth) page-aligned indexed spool\n\
         \x20                  format v3 (O(1) seek, mmap replay, salvage)\n\
         \x20 --events N       (synth) events to generate (default 1000000)\n\
         \x20 --addr-reuse P   (synth) probability an event reuses a hot\n\
         \x20                  address (64-entry hot set; default 0.0)\n\
         \x20 --working-set N  (synth) distinct 8-byte addresses in the\n\
         \x20                  uniform working set (default 65536)\n\
         \x20 --durable-dir D  (serve) spill + checkpoint tenants under D;\n\
         \x20                  restart and eviction resume from disk\n\
         \x20 --tenant-idle-secs S  (serve) evict tenants idle >= S seconds\n\
         \x20                  through the checkpoint path (0 = never)\n\
         \x20 --tenant-max-bytes B  (serve) evict a tenant whose analyzer\n\
         \x20                  exceeds B bytes (0 = uncapped)\n\
         \x20 --listen ADDR    (serve, repeatable) ingest endpoint:\n\
         \x20                  `host:port` or `unix:<path>`\n\
         \x20                  (default 127.0.0.1:9009)\n\
         \x20 --http ADDR      (serve) HTTP endpoint for live reports,\n\
         \x20                  matrices, and Prometheus /metrics\n\
         \x20 --queue-frames N (serve) per-tenant queue bound (default 64)\n\
         \x20 --max-conns N    (serve) connection limit (default 64)\n\
         \x20 --max-tenants N  (serve) tenant limit (default 64)\n\
         \x20 --connect ADDR   (record, stream) stream to a server instead\n\
         \x20                  of writing a file\n\
         \x20 --tenant NAME    (record, stream) tenant to stream as\n\
         \x20                  (default `default`)\n\
         \x20 --frame-events N (record, stream) events per wire frame\n\
         \x20 --explore N      (simtest) N seeded random schedules instead of\n\
         \x20                  bounded-exhaustive DFS (seeded by --seed)\n\
         \x20 --max-preemptions N|none  (simtest) preemption bound override\n\
         \x20 --max-schedules N  (simtest) exhaustive-exploration safety valve\n\
         \x20 --mutant NAME    (simtest, repeatable) arm a seeded mutant; the\n\
         \x20                  run then must FIND a violation (exit 1)\n\
         \x20 --trace-out PATH (simtest) append failing decision traces here"
    );
    std::process::exit(2);
}

fn parse_options(args: &[String]) -> Options {
    let mut o = Options {
        threads: 8,
        size: InputSize::SimSmall,
        slots: 1 << 20,
        window: 2000,
        seed: 42,
        loop_capacity: 1024,
        metrics: None,
        spool: false,
        salvage: false,
        jobs: 1,
        batch: lc_trace::REPLAY_BATCH_EVENTS,
        no_coalesce: false,
        fused: true,
        skip_filter: true,
        addr_reuse: 0.0,
        working_set: 65_536,
        perfect: false,
        listen: Vec::new(),
        http: None,
        connect: None,
        tenant: "default".to_string(),
        frame_events: lc_trace::DEFAULT_FRAME_EVENTS,
        queue_frames: 64,
        max_conns: 64,
        max_tenants: 64,
        report_out: None,
        checkpoint: None,
        every: 1_000_000,
        resume: None,
        mmap: false,
        v3: false,
        events: 1_000_000,
        durable_dir: None,
        tenant_idle_secs: 0,
        tenant_max_bytes: 0,
        coherence: false,
        line_size: 64,
        cache_kib: 16,
        assoc: 4,
        coherence_out: None,
        fault_plan: None,
        #[cfg(feature = "sched")]
        sim: SimtestOptions::default(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {a}");
                    std::process::exit(2);
                })
                .clone()
        };
        match a.as_str() {
            "--threads" => o.threads = val().parse().expect("--threads N"),
            "--slots" => o.slots = val().parse().expect("--slots K"),
            "--window" => o.window = val().parse().expect("--window W"),
            "--seed" => o.seed = val().parse().expect("--seed S"),
            "--loop-capacity" => o.loop_capacity = val().parse().expect("--loop-capacity K"),
            "--metrics" => o.metrics = Some(val()),
            "--spool" => o.spool = true,
            "--salvage" => o.salvage = true,
            "--jobs" => o.jobs = val().parse().expect("--jobs N"),
            "--batch" => {
                let raw = val();
                let v: usize = raw.parse().unwrap_or_else(|_| {
                    eprintln!("error: --batch expects an integer, got `{raw}`");
                    std::process::exit(2);
                });
                if !(1..=MAX_BATCH_EVENTS).contains(&v) {
                    eprintln!(
                        "error: --batch must be in 1..={MAX_BATCH_EVENTS} (got {v}); \
                         the default is {}",
                        lc_trace::REPLAY_BATCH_EVENTS
                    );
                    std::process::exit(2);
                }
                o.batch = v;
            }
            "--no-coalesce" => o.no_coalesce = true,
            "--fused" => o.fused = true,
            "--no-fused" => o.fused = false,
            "--no-skip-filter" => o.skip_filter = false,
            "--addr-reuse" => {
                let raw = val();
                let v: f64 = raw.parse().unwrap_or_else(|_| {
                    eprintln!("error: --addr-reuse expects a probability, got `{raw}`");
                    std::process::exit(2);
                });
                if !(0.0..=1.0).contains(&v) {
                    eprintln!("error: --addr-reuse must be in 0.0..=1.0 (got {v})");
                    std::process::exit(2);
                }
                o.addr_reuse = v;
            }
            "--working-set" => {
                let raw = val();
                let v: u64 = raw.parse().unwrap_or_else(|_| {
                    eprintln!("error: --working-set expects an integer, got `{raw}`");
                    std::process::exit(2);
                });
                if v == 0 {
                    eprintln!("error: --working-set must be >= 1");
                    std::process::exit(2);
                }
                o.working_set = v;
            }
            "--perfect" => o.perfect = true,
            "--listen" => o.listen.push(val()),
            "--http" => o.http = Some(val()),
            "--connect" => o.connect = Some(val()),
            "--tenant" => o.tenant = val(),
            "--frame-events" => o.frame_events = val().parse().expect("--frame-events N"),
            "--queue-frames" => o.queue_frames = val().parse().expect("--queue-frames N"),
            "--max-conns" => o.max_conns = val().parse().expect("--max-conns N"),
            "--max-tenants" => o.max_tenants = val().parse().expect("--max-tenants N"),
            "--report-out" => o.report_out = Some(val()),
            "--checkpoint" => o.checkpoint = Some(val()),
            "--every" => o.every = val().parse().expect("--every N"),
            "--resume" => o.resume = Some(val()),
            "--mmap" => o.mmap = true,
            "--v3" => o.v3 = true,
            "--events" => o.events = val().parse().expect("--events N"),
            "--durable-dir" => o.durable_dir = Some(val()),
            "--tenant-idle-secs" => {
                o.tenant_idle_secs = val().parse().expect("--tenant-idle-secs N")
            }
            "--tenant-max-bytes" => {
                o.tenant_max_bytes = val().parse().expect("--tenant-max-bytes N")
            }
            "--coherence" => o.coherence = true,
            "--line-size" => o.line_size = parse_geometry(a, &val()),
            "--cache-kib" => o.cache_kib = parse_geometry(a, &val()),
            "--assoc" => o.assoc = parse_geometry(a, &val()) as usize,
            "--coherence-out" => o.coherence_out = Some(val()),
            "--fault-plan" => o.fault_plan = Some(val()),
            #[cfg(feature = "sched")]
            "--explore" => o.sim.explore = Some(val().parse().expect("--explore N")),
            #[cfg(feature = "sched")]
            "--max-preemptions" => {
                let v = val();
                o.sim.preemptions = Some(if v == "none" {
                    None
                } else {
                    Some(v.parse().expect("--max-preemptions N|none"))
                });
            }
            #[cfg(feature = "sched")]
            "--max-schedules" => {
                o.sim.max_schedules = Some(val().parse().expect("--max-schedules N"))
            }
            #[cfg(feature = "sched")]
            "--mutant" => o.sim.mutants.push(val()),
            #[cfg(feature = "sched")]
            "--trace-out" => o.sim.trace_out = Some(val()),
            "--size" => {
                o.size = match val().as_str() {
                    "simdev" => InputSize::SimDev,
                    "simsmall" => InputSize::SimSmall,
                    "simlarge" => InputSize::SimLarge,
                    other => {
                        eprintln!("unknown size `{other}`");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown option `{other}`");
                usage();
            }
        }
    }
    // Cache geometry is validated at parse time — a bad `--line-size`
    // must be a clean usage error, not a panic inside `CacheConfig`
    // after minutes of trace loading.
    if let Err(e) = coherence_config(&o).validate() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    o
}

/// Parse an integer value for one of the coherence geometry flags.
/// Range/power-of-two checks happen later in [`CoherenceConfig::validate`];
/// this only rejects non-numbers with the flag's name in the message.
fn parse_geometry(flag: &str, raw: &str) -> u64 {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} expects an integer, got `{raw}`");
        std::process::exit(2);
    })
}

/// The coherence geometry the CLI flags describe.
fn coherence_config(o: &Options) -> lc_cachesim::CoherenceConfig {
    lc_cachesim::CoherenceConfig {
        line_bytes: o.line_size,
        cache_kib: o.cache_kib,
        assoc: o.assoc,
    }
}

/// Arm the hidden `--fault-plan` file, if one was given. Parse errors and
/// unreadable files are usage errors (exit 2), not degraded runs.
fn fault_injector(o: &Options) -> Option<Arc<lc_faults::FaultInjector>> {
    o.fault_plan.as_ref().map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read fault plan `{path}`: {e}");
            std::process::exit(2);
        });
        let plan = lc_faults::FaultPlan::parse(&text).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        Arc::new(lc_faults::FaultInjector::new(plan))
    })
}

/// Surface a degraded run on stderr. The run still exits 0: the global
/// matrix is exact for every drained delta and the loss is bounded and
/// counted — the watchdog's whole point is that one faulty worker does not
/// cost the run (DESIGN.md §9).
fn warn_if_degraded(p: &AsymmetricProfiler) {
    let h = p.flush_health();
    if h.degraded {
        eprintln!(
            "warning: degraded run: {} caught flush panic(s), {} watchdog timeout(s), \
             {} lost delta entr(ies); global matrix exact for all drained deltas",
            h.flush_panics, h.watchdog_timeouts, h.lost_deltas
        );
    }
}

fn profile(
    name: &str,
    o: &Options,
    phase_window: Option<u64>,
) -> (Arc<AsymmetricProfiler>, Arc<TraceCtx>) {
    let workload = by_name(name).unwrap_or_else(|| {
        eprintln!("unknown workload `{name}` — try `loopcomm list`");
        std::process::exit(2);
    });
    let mut profiler = AsymmetricProfiler::from_detector_full(
        lc_profiler::AsymmetricDetector::asymmetric(SignatureConfig::paper_default(
            o.slots, o.threads,
        )),
        lc_profiler::ProfilerConfig {
            threads: o.threads,
            track_nested: true,
            phase_window,
        },
        lc_profiler::AccumConfig {
            loop_capacity: o.loop_capacity,
            ..lc_profiler::AccumConfig::default()
        },
        // Telemetry only when the run will export it: the default path
        // stays zero-cost.
        o.metrics
            .as_ref()
            .map(|_| lc_profiler::TelemetryConfig::default()),
    );
    if let Some(f) = fault_injector(o) {
        profiler = profiler.with_faults(f);
    }
    let profiler = Arc::new(profiler);
    let ctx = TraceCtx::new(profiler.clone(), o.threads);
    workload.run(&ctx, &RunConfig::new(o.threads, o.size, o.seed));
    if let Some(e) = profiler.registry_overflow() {
        registry_full_error(e, o.loop_capacity);
    }
    // Drain every shard before assessing health, so a fault scripted on
    // the final flush itself still latches before the warning is (not)
    // printed.
    profiler.flush_pending();
    warn_if_degraded(&profiler);
    (profiler, ctx)
}

/// Report a loop-registry overflow as a clean actionable error. The
/// profiler degrades per-loop attribution rather than panicking mid-run
/// (a worker panic would strand sibling threads at their next barrier), so
/// by the time this runs the workload has completed and the latched error
/// is the only thing left to surface.
fn registry_full_error(e: lc_profiler::RegistryFull, current: usize) -> ! {
    eprintln!("error: {e}");
    eprintln!(
        "hint: rerun with --loop-capacity {} or higher (current {})",
        current.saturating_mul(4),
        current
    );
    std::process::exit(1);
}

/// Write a metrics registry to `path`: `.json` selects the JSON exposition,
/// anything else the Prometheus text form.
fn write_metrics(path: &str, reg: &lc_profiler::MetricsRegistry) {
    let body = if path.ends_with(".json") {
        reg.to_json()
    } else {
        reg.to_prometheus()
    };
    std::fs::write(path, body).unwrap_or_else(|e| {
        eprintln!("cannot write metrics to `{path}`: {e}");
        std::process::exit(1);
    });
    println!("wrote metrics       : {path}");
}

/// `loopcomm simtest <scenario|all|list>` — deterministic model checking
/// of the concurrency core (see DESIGN.md §11). Exhaustive bounded DFS by
/// default, `--explore N` for seeded random schedules; prints per-scenario
/// schedule counts and, on a violation, the (minimized) decision trace.
/// Exits 1 if any scenario's oracle is violated.
#[cfg(feature = "sched")]
fn simtest_cmd(name: &str, o: &Options) {
    use loopcomm::simtest;

    if name == "list" {
        println!("model-checking scenarios:");
        for s in simtest::scenarios() {
            println!("  {:<10} {}", s.name, s.about);
            if !s.catchable_mutants.is_empty() {
                println!(
                    "             catches mutants: {}",
                    s.catchable_mutants.join(", ")
                );
            }
        }
        return;
    }
    let scenarios: Vec<&simtest::Scenario> = if name == "all" {
        simtest::scenarios().iter().collect()
    } else {
        vec![simtest::find(name).unwrap_or_else(|| {
            eprintln!("unknown scenario `{name}` — try `loopcomm simtest list`");
            std::process::exit(2);
        })]
    };

    let mut violated = false;
    for s in scenarios {
        let defaults = lc_sched::SimConfig::default();
        let cfg = lc_sched::SimConfig {
            max_preemptions: o.sim.preemptions.unwrap_or(s.default_preemption_bound),
            max_schedules: o.sim.max_schedules.unwrap_or(defaults.max_schedules),
            mutants: o.sim.mutants.clone(),
            ..defaults
        };
        let bound = match cfg.max_preemptions {
            Some(p) => format!("preemption bound {p}"),
            None => "unbounded".to_string(),
        };
        let explorer = lc_sched::Explorer::new(cfg);
        let (mode, report) = match o.sim.explore {
            Some(n) => (
                format!("random x{n} (seed {})", o.seed),
                explorer.explore_random(o.seed, n, || s.run()),
            ),
            None => (
                "exhaustive".to_string(),
                explorer.explore_exhaustive(|| s.run()),
            ),
        };
        println!(
            "{:<10} {mode}, {bound}: {} schedule(s), <={} decision point(s), <={} step(s){}",
            s.name,
            report.schedules,
            report.max_decisions,
            report.max_steps_seen,
            if report.truncated {
                "  [TRUNCATED]"
            } else {
                ""
            },
        );
        if let Some(v) = &report.violation {
            violated = true;
            eprintln!(
                "VIOLATION in `{}` at schedule #{}: {:?}: {}",
                s.name, v.schedule_index, v.kind, v.message
            );
            eprintln!("  trace     : {}", v.trace.to_line());
            if let Some(m) = &v.minimized {
                eprintln!("  minimized : {}", m.to_line());
            }
            if let Some(path) = &o.sim.trace_out {
                use std::io::Write as _;
                let mut f = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .unwrap_or_else(|e| {
                        eprintln!("cannot open trace file `{path}`: {e}");
                        std::process::exit(1);
                    });
                let repro = v.minimized.as_ref().unwrap_or(&v.trace);
                writeln!(
                    f,
                    "scenario={};kind={:?};{}",
                    s.name,
                    v.kind,
                    repro.to_line()
                )
                .expect("write trace line");
                println!("  wrote repro trace -> {path}");
            }
        }
    }
    if violated {
        std::process::exit(1);
    }
    if !o.sim.mutants.is_empty() {
        // An armed mutant that no oracle catches is itself a harness
        // defect; make the run loudly distinguishable from a clean one.
        println!(
            "note: mutant(s) [{}] armed but no violation found",
            o.sim.mutants.join(", ")
        );
    }
}

/// Load a recorded trace for `analyze`/`stream`, honoring `--salvage`.
fn load_or_salvage(name: &str, o: &Options) -> lc_trace::Trace {
    if o.salvage {
        let (trace, rep) =
            lc_trace::salvage_trace(std::path::Path::new(name)).unwrap_or_else(|e| {
                eprintln!("cannot salvage `{name}`: {e}");
                std::process::exit(1);
            });
        println!(
            "salvage: format v{}, {} frame(s), {} event(s) recovered, {} byte(s) dropped",
            rep.version, rep.frames, rep.events, rep.bytes_dropped
        );
        trace
    } else {
        lc_trace::load_trace(std::path::Path::new(name)).unwrap_or_else(|e| {
            eprintln!("cannot read `{name}`: {e}");
            eprintln!("hint: `--salvage` recovers what is intact");
            std::process::exit(1);
        })
    }
}

/// Capture and atomically publish a checkpoint. Failure degrades
/// durability (warn and continue), never the analysis: an injected
/// `io_error`/`short_write` leaves the previous checkpoint in place, and a
/// `bit_flip` is caught by the CRC at the next load.
fn write_checkpoint(
    analyzer: &lc_profiler::IncrementalAnalyzer,
    dir: &std::path::Path,
    faults: Option<&Arc<lc_faults::FaultInjector>>,
) {
    let cp = lc_profiler::Checkpoint::capture(analyzer);
    let path = lc_profiler::checkpoint_path(dir);
    if let Err(e) = cp.write_atomic(&path, faults) {
        eprintln!("warning: checkpoint write failed ({e}); analysis continues without durability");
    }
}

/// Max tid + 1 over a v3 spool. The side-car index records it as a
/// replay hint; the full streaming pass below is the fallback for
/// indexes that predate the hint or were rebuilt from headers alone.
/// The hint matters for crash recovery: a fresh (un-resumed) run must
/// reach its first checkpoint quickly, not spend seconds pre-scanning
/// a multi-gigabyte spool it will then replay anyway.
fn mmap_threads(m: &lc_trace::MmapTrace) -> usize {
    let hint = m.index().threads;
    if hint > 0 {
        return hint as usize;
    }
    let mut max_tid = 0u32;
    let mut any = false;
    m.stream_from(0, |frame| {
        for e in frame {
            any = true;
            max_tid = max_tid.max(e.event.tid);
        }
    })
    .unwrap_or_else(|e| {
        eprintln!("error: cannot scan spool for thread count: {e}");
        std::process::exit(1);
    });
    if any {
        max_tid as usize + 1
    } else {
        1
    }
}

/// Resume must run with the configuration the checkpoint echoes —
/// anything else would silently change the analysis semantics mid-trace.
fn check_resume_config(cp: &lc_profiler::Checkpoint, o: &Options, jobs: usize) {
    let want_kind = if o.perfect {
        lc_profiler::DetectorKind::Perfect
    } else {
        lc_profiler::DetectorKind::Asymmetric
    };
    if cp.kind != want_kind {
        eprintln!(
            "error: checkpoint was taken with the {:?} detector; rerun {} --perfect",
            cp.kind,
            if o.perfect { "without" } else { "with" }
        );
        std::process::exit(2);
    }
    if cp.jobs != jobs {
        eprintln!(
            "error: checkpoint was taken with --jobs {}; resume with the same value",
            cp.jobs
        );
        std::process::exit(2);
    }
    if let Some(sig) = &cp.sig {
        if sig.n_slots != o.slots {
            eprintln!(
                "error: checkpoint was taken with --slots {}; resume with the same value",
                sig.n_slots
            );
            std::process::exit(2);
        }
    }
}

/// `loopcomm analyze --checkpoint/--resume/--mmap` — the streaming
/// analysis path. Frames are fed through the same [`IncrementalAnalyzer`]
/// the server uses, whose merged report is byte-identical to the offline
/// parallel path on the same events; `--mmap` sources them from an
/// mmap-backed v3 view (bounded RSS for out-of-core spools), and
/// `--checkpoint`/`--resume` make the run crash-resumable.
fn analyze_streaming(name: &str, o: &Options) {
    let spool = std::path::Path::new(name);
    let faults = fault_injector(o);
    let jobs = o.jobs.max(1);
    let accum = lc_profiler::AccumConfig {
        loop_capacity: o.loop_capacity,
        ..lc_profiler::AccumConfig::default()
    };

    enum Source {
        Mmap(lc_trace::MmapTrace),
        Mem(lc_trace::Trace),
    }
    let source = if o.mmap {
        let mm = lc_trace::MmapTrace::open(spool).unwrap_or_else(|e| {
            eprintln!("cannot mmap `{name}`: {e}");
            eprintln!("hint: --mmap needs the v3 spool format (`record --v3` / `synth --v3`)");
            std::process::exit(1);
        });
        println!(
            "mmap: {} event(s) in {} segment(s), index {}",
            mm.events(),
            mm.segments(),
            if mm.index_rebuilt() {
                "rebuilt from segment headers"
            } else {
                "loaded"
            }
        );
        Source::Mmap(mm)
    } else {
        Source::Mem(load_or_salvage(name, o))
    };
    let total = match &source {
        Source::Mmap(m) => m.events(),
        Source::Mem(t) => t.len() as u64,
    };
    let threads = match &source {
        Source::Mmap(m) => mmap_threads(m),
        Source::Mem(t) => t.stats().threads.max(1),
    };

    // Resume, if a usable checkpoint exists. A missing or corrupt
    // checkpoint degrades to a from-scratch run (with a warning), never a
    // wrong one — the CRC rules out trusting torn state.
    let mut restored: Option<lc_profiler::IncrementalAnalyzer> = None;
    if let Some(dir) = &o.resume {
        let cp_file = lc_profiler::checkpoint_path(std::path::Path::new(dir));
        match lc_profiler::Checkpoint::load(&cp_file) {
            Ok(cp) => {
                check_resume_config(&cp, o, jobs);
                match cp.restore(accum) {
                    Ok(a) => {
                        println!(
                            "resume: checkpoint at event {} / {total} ({} frame(s) analyzed)",
                            a.events(),
                            a.frames()
                        );
                        restored = Some(a);
                    }
                    Err(e) => {
                        eprintln!("warning: cannot restore checkpoint ({e}); starting from scratch")
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                println!("resume: no checkpoint in `{dir}` yet; starting from scratch");
            }
            Err(e) => {
                eprintln!("warning: unusable checkpoint in `{dir}` ({e}); starting from scratch")
            }
        }
    }
    let mut analyzer = restored.unwrap_or_else(|| {
        lc_profiler::IncrementalAnalyzer::new(
            if o.perfect {
                lc_profiler::DetectorKind::Perfect
            } else {
                lc_profiler::DetectorKind::Asymmetric
            },
            SignatureConfig::paper_default(o.slots, threads),
            lc_profiler::ProfilerConfig {
                threads,
                track_nested: true,
                phase_window: None,
            },
            accum,
            jobs,
        )
    });

    if !o.fused {
        analyzer.set_fused(None);
    } else if !o.skip_filter {
        analyzer.set_fused(Some(lc_profiler::FusedConfig {
            skip_filter: false,
            ..lc_profiler::FusedConfig::default()
        }));
    }

    let cp_dir = o.checkpoint.as_deref().map(std::path::Path::new);
    let every = o.every.max(1);
    let start = analyzer.events().min(total);
    let mut last_cp = analyzer.events();
    // The coherence backend is not part of the checkpoint: on a resumed
    // run it only sees the events replayed here, so flag the shortfall.
    let mut coh = o.coherence.then(|| {
        lc_cachesim::CoherenceBackend::new(coherence_config(o), coherence_threads(threads))
    });
    if coh.is_some() && start > 0 {
        eprintln!(
            "warning: --coherence state is not checkpointed; the coherence report \
             covers only the {} event(s) replayed in this run",
            total - start
        );
    }
    match &source {
        Source::Mmap(m) => {
            m.stream_from(start, |frame| {
                analyzer.on_frame(frame);
                if let Some(c) = &mut coh {
                    c.on_block(frame);
                }
                if let Some(dir) = cp_dir {
                    if analyzer.events() - last_cp >= every {
                        write_checkpoint(&analyzer, dir, faults.as_ref());
                        last_cp = analyzer.events();
                    }
                }
            })
            .unwrap_or_else(|e| {
                eprintln!("error: mmap replay failed: {e}");
                std::process::exit(1);
            });
        }
        Source::Mem(t) => {
            for frame in t.events()[start as usize..].chunks(o.batch) {
                analyzer.on_frame(frame);
                if let Some(c) = &mut coh {
                    c.on_block(frame);
                }
                if let Some(dir) = cp_dir {
                    if analyzer.events() - last_cp >= every {
                        write_checkpoint(&analyzer, dir, faults.as_ref());
                        last_cp = analyzer.events();
                    }
                }
            }
        }
    }
    // Always leave a final checkpoint: a completed run is itself
    // resumable, and resume-after-complete replays nothing.
    if let Some(dir) = cp_dir {
        write_checkpoint(&analyzer, dir, faults.as_ref());
    }
    if let Some(e) = analyzer.overflow() {
        registry_full_error(e, o.loop_capacity);
    }
    if analyzer.degraded() {
        eprintln!("warning: degraded run (caught flush panic or watchdog timeout)");
    }
    let r = analyzer.report();
    println!(
        "streamed analysis: {} event(s) in {} frame(s), {} job(s)",
        analyzer.events(),
        analyzer.frames(),
        jobs
    );
    println!(
        "RAW dependencies: {}  profiler memory: {}",
        r.dependencies,
        lc_profiler::report::fmt_bytes(r.memory_bytes as u64)
    );
    println!("\ncommunication matrix:\n{}", r.global.heatmap());
    if let Some(path) = &o.report_out {
        let body = lc_profiler::canonical_report(&r, analyzer.events());
        std::fs::write(path, body).unwrap_or_else(|e| {
            eprintln!("cannot write report to `{path}`: {e}");
            std::process::exit(1);
        });
        println!("wrote canonical report: {path}");
    }
    if let Some(c) = &coh {
        print_coherence(&c.report(), 1, o);
    }
}

/// Cap the coherence backend's matrix dimension, with a clean error when
/// the trace has more threads than the full-map directory supports.
fn coherence_threads(threads: usize) -> usize {
    if threads > lc_cachesim::MAX_COHERENCE_THREADS {
        eprintln!(
            "error: --coherence supports up to {} threads (input has {threads})",
            lc_cachesim::MAX_COHERENCE_THREADS
        );
        std::process::exit(2);
    }
    threads.max(1)
}

/// Print a [`lc_cachesim::CoherenceReport`] and honour `--coherence-out`.
fn print_coherence(rep: &lc_cachesim::CoherenceReport, jobs: usize, o: &Options) {
    println!(
        "\ncoherence [{} B lines, {} KiB/core, {}-way MESI] x {} job(s):",
        rep.config.line_bytes, rep.config.cache_kib, rep.config.assoc, jobs
    );
    println!(
        "accesses {}  hits {}  fills {} (mem {}, c2c {})  invalidations {}  writebacks {}",
        rep.accesses,
        rep.hits,
        rep.fills,
        rep.mem_fills,
        rep.c2c_fills,
        rep.invalidations,
        rep.writebacks
    );
    let (inval_rate, fs_ratio, locality) = rep.features();
    println!(
        "invalidations/access {inval_rate:.4}  false-sharing ratio {fs_ratio:.3}  \
         transfer locality {locality:.3}"
    );
    println!(
        "false sharing: {} event(s), {} false byte(s) vs {} true byte(s)",
        rep.false_sharing_events(),
        rep.global.false_bytes,
        rep.global.true_bytes()
    );
    if !rep.global.transfers.is_zero() {
        println!(
            "\ntransfer matrix (bytes):\n{}",
            rep.global.transfers.heatmap()
        );
    }
    if !rep.global.invalidations.is_zero() {
        println!(
            "\ninvalidation matrix:\n{}",
            rep.global.invalidations.heatmap()
        );
    }
    // Only lines that actually false-shared; tracked-but-clean lines
    // would read as noise here.
    let mut flagged: Vec<_> = rep
        .global
        .lines
        .iter()
        .filter(|(_, fs)| fs.events > 0)
        .collect();
    flagged.sort_by_key(|(line, fs)| (std::cmp::Reverse(fs.false_bytes), **line));
    if !flagged.is_empty() {
        println!("\nfalse-sharing lines (top {}):", flagged.len().min(8));
        for (line, fs) in flagged.into_iter().take(8) {
            println!(
                "  line {:#x}: {} event(s), {} false / {} true byte(s), threads {:#x}",
                line, fs.events, fs.false_bytes, fs.true_bytes, fs.threads
            );
        }
    }
    if let Some(path) = &o.coherence_out {
        let body = lc_cachesim::canonical_coherence_report(rep);
        std::fs::write(path, body).unwrap_or_else(|e| {
            eprintln!("cannot write coherence report to `{path}`: {e}");
            std::process::exit(1);
        });
        println!("wrote coherence report: {path}");
    }
}

/// `loopcomm analyze --coherence` — the second backend over the same
/// trace: set-sharded across `--jobs` workers with a deterministic merge,
/// so the canonical report is byte-identical for any job count.
fn run_coherence(trace: &lc_trace::Trace, threads: usize, o: &Options) {
    let threads = coherence_threads(threads);
    let jobs = o.jobs.max(1);
    let rep = lc_cachesim::analyze_trace_coherence(trace, coherence_config(o), threads, jobs);
    print_coherence(&rep, jobs, o);
}

use lc_trace::synth_event;

/// `loopcomm synth <file>` — stream a deterministic synthetic spool to
/// disk without ever materializing it in memory, so CI can fabricate
/// spools far larger than RAM for the out-of-core replay checks.
fn synth_cmd(name: &str, o: &Options) {
    let path = std::path::Path::new(name);
    let threads = o.threads.max(1) as u32;
    let frame = o.frame_events.max(1);
    let mut buf: Vec<lc_trace::StampedEvent> = Vec::with_capacity(frame);
    let mut i = 0u64;
    let stats = if o.v3 {
        let mut w =
            lc_trace::SpoolV3Writer::create_with(path, fault_injector(o)).unwrap_or_else(|e| {
                eprintln!("cannot create `{name}`: {e}");
                std::process::exit(1);
            });
        while i < o.events {
            buf.clear();
            while buf.len() < frame && i < o.events {
                buf.push(synth_event(i, o.seed, threads, o.working_set, o.addr_reuse));
                i += 1;
            }
            w.append_frame(&buf).unwrap_or_else(|e| {
                eprintln!("error: spool write failed: {e}");
                std::process::exit(1);
            });
        }
        w.finish().unwrap_or_else(|e| {
            eprintln!("error: spool finish failed: {e}");
            std::process::exit(1);
        })
    } else {
        let file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create `{name}`: {e}");
            std::process::exit(1);
        });
        let mut w = lc_trace::SpoolWriter::new(file, frame).unwrap_or_else(|e| {
            eprintln!("cannot start spool `{name}`: {e}");
            std::process::exit(1);
        });
        while i < o.events {
            buf.clear();
            while buf.len() < frame && i < o.events {
                buf.push(synth_event(i, o.seed, threads, o.working_set, o.addr_reuse));
                i += 1;
            }
            w.append_frame(&buf).unwrap_or_else(|e| {
                eprintln!("error: spool write failed: {e}");
                std::process::exit(1);
            });
        }
        w.finish().unwrap_or_else(|e| {
            eprintln!("error: spool finish failed: {e}");
            std::process::exit(1);
        })
    };
    println!(
        "synthesized {} event(s) in {} frame(s) ({} bytes, format v{}) -> {name}",
        stats.events,
        stats.frames,
        stats.bytes,
        if o.v3 { 3 } else { 2 }
    );
}

/// `loopcomm serve` — start the streaming multi-tenant ingest service
/// and run until the process is killed (see DESIGN.md §13).
fn serve_cmd(o: &Options) -> ! {
    let listen = if o.listen.is_empty() {
        vec!["127.0.0.1:9009".to_string()]
    } else {
        o.listen.clone()
    };
    let cfg = loopcomm::serve::ServeConfig {
        listen,
        http: o.http.clone(),
        detector: if o.perfect {
            lc_profiler::DetectorKind::Perfect
        } else {
            lc_profiler::DetectorKind::Asymmetric
        },
        sig: SignatureConfig::paper_default(o.slots, o.threads),
        prof: lc_profiler::ProfilerConfig {
            threads: o.threads,
            track_nested: true,
            phase_window: None,
        },
        accum: lc_profiler::AccumConfig {
            loop_capacity: o.loop_capacity,
            ..lc_profiler::AccumConfig::default()
        },
        jobs: o.jobs.max(1),
        queue_frames: o.queue_frames.max(1),
        max_conns: o.max_conns.max(1),
        max_tenants: o.max_tenants.max(1),
        faults: fault_injector(o),
        durable_dir: o.durable_dir.as_ref().map(std::path::PathBuf::from),
        tenant_idle: (o.tenant_idle_secs > 0)
            .then(|| std::time::Duration::from_secs(o.tenant_idle_secs)),
        tenant_max_bytes: o.tenant_max_bytes,
        coherence: o.coherence.then(|| {
            coherence_threads(o.threads);
            coherence_config(o)
        }),
    };
    if cfg.durable_dir.is_none() && (cfg.tenant_idle.is_some() || cfg.tenant_max_bytes > 0) {
        eprintln!(
            "warning: --tenant-idle-secs/--tenant-max-bytes need --durable-dir \
             (eviction checkpoints to disk); ignoring"
        );
    }
    let server = loopcomm::serve::Server::start(cfg).unwrap_or_else(|e| {
        eprintln!("cannot start server: {e}");
        std::process::exit(1);
    });
    for addr in server.ingest_addrs() {
        println!("ingest : {addr}");
    }
    if let Some(addr) = server.http_addr() {
        println!(
            "http   : http://{addr}/  (/metrics, /tenants, /tenants/<t>/report{})",
            if o.coherence {
                ", /tenants/<t>/coherence"
            } else {
                ""
            }
        );
    }
    if let Some(first) = server.ingest_addrs().first() {
        println!("stream with: loopcomm stream <file.lctrace> --connect {first} --tenant NAME");
    }
    server.run_forever()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };

    if cmd == "list" {
        println!("available workloads:");
        for w in all_workloads() {
            println!("  {:<14} {}", w.name(), w.description());
        }
        return;
    }

    // `serve` takes no positional at all: options only.
    if cmd == "serve" {
        let o = parse_options(&args[1..]);
        serve_cmd(&o);
    }

    let Some(name) = args.get(1) else { usage() };
    // `record` and `report` take an extra positional (the output file)
    // before options — except `record --connect`, where the trace goes to
    // a server and there is no file.
    let opt_start = match cmd.as_str() {
        "report" => 3,
        "record" => {
            if args.get(2).is_none_or(|a| a.starts_with("--")) {
                2
            } else {
                3
            }
        }
        _ => 2,
    };
    let o = parse_options(&args[opt_start.min(args.len())..]);
    run(cmd, name, &args, &o)
}

fn run(cmd: &str, name: &str, args: &[String], o: &Options) {
    match cmd {
        "profile" => {
            let (p, _ctx) = profile(name, o, None);
            let r = p.report();
            println!("workload            : {name}");
            println!("threads             : {}", o.threads);
            println!("accesses            : {}", r.accesses);
            println!("RAW dependencies    : {}", r.dependencies);
            println!(
                "profiler memory     : {}",
                lc_profiler::report::fmt_bytes(r.memory_bytes as u64)
            );
            let health = p.signature_health();
            println!(
                "signature health    : {:.1}% slot aliasing (~{:.0} written addrs)",
                health.write_aliasing * 100.0,
                health.est_written_addresses
            );
            if health.needs_more_slots() {
                println!(
                    "                      warning: rerun with --slots {} for <5% aliasing",
                    health.suggested_slots(0.05)
                );
            }
            println!("\ncommunication matrix (bytes):\n{}", r.global.heatmap());
            if let Some(path) = &o.metrics {
                write_metrics(path, &p.metrics_with_health());
            }
        }
        "nested" => {
            let (p, ctx) = profile(name, o, None);
            let r = p.report();
            let nested = NestedReport::build(ctx.loops(), &r.per_loop, o.threads);
            println!("{}", nested.render(4));
            let bad = lc_profiler::verify_sum_invariant(&nested);
            assert!(bad.is_empty(), "sum invariant violated: {bad:?}");
        }
        "load" => {
            let (p, ctx) = profile(name, o, None);
            let r = p.report();
            let nested = NestedReport::build(ctx.loops(), &r.per_loop, o.threads);
            for (node, total) in nested.hotspots().into_iter().take(3) {
                if total == 0 {
                    break;
                }
                let load = ThreadLoad::from_matrix(&node.aggregate);
                println!("hotspot `{}` ({} B):", node.name, total);
                println!("{}", load.render());
                println!(
                    "imbalance {:.2}  active {}/{}\n",
                    load.imbalance(),
                    load.active_threads(0.05),
                    o.threads
                );
            }
        }
        "classify" => {
            if o.coherence {
                // Extended 13-feature classification: the RAW matrix alone
                // cannot tell a false-sharing variant from its padded twin,
                // so record the trace once and feed both backends.
                let workload = by_name(name).unwrap_or_else(|| {
                    eprintln!("unknown workload `{name}` — try `loopcomm list`");
                    std::process::exit(2);
                });
                let threads = coherence_threads(o.threads);
                let rec = Arc::new(lc_trace::RecordingSink::new());
                let prof = Arc::new(lc_profiler::PerfectProfiler::perfect(
                    lc_profiler::ProfilerConfig {
                        threads,
                        track_nested: false,
                        phase_window: None,
                    },
                ));
                let fork = Arc::new(lc_trace::ForkSink::new(vec![
                    rec.clone() as Arc<dyn lc_trace::AccessSink>,
                    prof.clone(),
                ]));
                let ctx = TraceCtx::new(fork, threads);
                workload.run(&ctx, &RunConfig::new(threads, o.size, o.seed));
                let trace = rec.finish();
                let rep = lc_cachesim::analyze_trace_coherence(
                    &trace,
                    coherence_config(o),
                    threads,
                    o.jobs.max(1),
                );
                let (inval, fs, loc) = rep.features();
                let feats = extract_extended(
                    &prof.global_matrix(),
                    &CoherenceFeatures::new(inval, fs, loc),
                );
                let train = synthetic_ext_dataset(threads.max(8), 30, &[0.0, 0.05, 0.1], 1);
                let model = ExtNearestCentroid::train(&train);
                println!(
                    "pattern/sharing variant of `{name}`: {}",
                    model.predict(&feats)
                );
                println!(
                    "coherence features: invalidations/access {inval:.4}  \
                     false-sharing ratio {fs:.3}  transfer locality {loc:.3}"
                );
                return;
            }
            let (p, _ctx) = profile(name, o, None);
            let train = synthetic_dataset(o.threads.max(8), 30, &[0.0, 0.05, 0.1], 1);
            let model = NearestCentroid::train(&train);
            println!(
                "dominant pattern class of `{name}`: {}",
                model.predict(&p.global_matrix())
            );
        }
        "map" => {
            let (p, _ctx) = profile(name, o, None);
            let topo = MachineTopology::dual_socket_xeon();
            if o.threads > topo.cores() {
                eprintln!("machine model has only {} cores", topo.cores());
                std::process::exit(2);
            }
            let m = p.global_matrix();
            let greedy = greedy_mapping(&m, &topo);
            println!(
                "identity cost : {}",
                ThreadMapping::identity(o.threads).cost(&m, &topo)
            );
            println!("greedy cost   : {}", greedy.cost(&m, &topo));
            println!("assignment    : {:?}", greedy.assignment);
        }
        "report" => {
            let Some(path) = args.get(2) else { usage() };
            let (p, ctx) = profile(name, o, Some(o.window));
            let html =
                lc_profiler::html_report(&format!("loopcomm: {name}"), &p.report(), ctx.loops());
            std::fs::write(path, html).expect("write report");
            println!("wrote {path}");
        }
        "record" => {
            let workload = by_name(name).unwrap_or_else(|| {
                eprintln!("unknown workload `{name}`");
                std::process::exit(2);
            });
            if let Some(addr) = &o.connect {
                // Live streaming: same recording path as `--spool`, but
                // the writer thread ships frames to a `loopcomm serve`
                // endpoint instead of a file.
                let sink = Arc::new(
                    lc_trace::NetSink::connect(
                        addr,
                        &o.tenant,
                        o.frame_events.max(1),
                        fault_injector(o),
                    )
                    .unwrap_or_else(|e| {
                        eprintln!("cannot connect to `{addr}`: {e}");
                        std::process::exit(1);
                    }),
                );
                let ctx = TraceCtx::new(sink.clone(), o.threads);
                workload.run(&ctx, &RunConfig::new(o.threads, o.size, o.seed));
                match sink.finish() {
                    Ok(stats) => println!(
                        "streamed {} events in {} frames ({} bytes) as tenant `{}` -> {addr}",
                        stats.events, stats.frames, stats.bytes, o.tenant
                    ),
                    Err(e) => {
                        eprintln!("error: stream failed: {e}");
                        eprintln!(
                            "hint: whole frames already sent were analyzed; \
                             the server's /tenants/{}/stats counts the loss",
                            o.tenant
                        );
                        std::process::exit(1);
                    }
                }
                return;
            }
            let Some(path) = args.get(2) else { usage() };
            if o.spool {
                // Crash-tolerant v2: frames hit disk as the run progresses,
                // so a crash (or an injected I/O fault) loses at most the
                // unframed tail — everything else stays salvageable.
                let sink = Arc::new(
                    lc_trace::SpoolSink::create_with(
                        std::path::Path::new(path),
                        lc_trace::DEFAULT_FRAME_EVENTS,
                        fault_injector(o),
                    )
                    .unwrap_or_else(|e| {
                        eprintln!("cannot create spool `{path}`: {e}");
                        std::process::exit(1);
                    }),
                );
                let ctx = TraceCtx::new(sink.clone(), o.threads);
                workload.run(&ctx, &RunConfig::new(o.threads, o.size, o.seed));
                match sink.finish() {
                    Ok(stats) => println!(
                        "spooled {} events in {} frames ({} bytes, format v2) -> {path}",
                        stats.events, stats.frames, stats.bytes
                    ),
                    Err(e) => {
                        eprintln!("error: trace spool failed: {e}");
                        eprintln!(
                            "hint: completed frames survive — \
                             `loopcomm analyze {path} --salvage`"
                        );
                        std::process::exit(1);
                    }
                }
                return;
            }
            let rec = Arc::new(lc_trace::RecordingSink::new());
            let ctx = TraceCtx::new(rec.clone(), o.threads);
            workload.run(&ctx, &RunConfig::new(o.threads, o.size, o.seed));
            let trace = rec.finish();
            if o.v3 {
                // Indexed page-aligned format: mmap-replayable with O(1)
                // seek (`analyze --mmap`), crash-resumable like --spool.
                let stats = lc_trace::write_trace_spool_v3(
                    &trace,
                    std::path::Path::new(path),
                    o.frame_events.max(1),
                )
                .unwrap_or_else(|e| {
                    eprintln!("cannot write v3 spool `{path}`: {e}");
                    std::process::exit(1);
                });
                println!(
                    "spooled {} events in {} frames ({} bytes, format v3) -> {path}",
                    stats.events, stats.frames, stats.bytes
                );
                return;
            }
            lc_trace::save_trace(&trace, std::path::Path::new(path)).expect("write trace");
            let stats = trace.stats();
            println!(
                "recorded {} events ({} reads, {} writes, {} addresses, {} threads) -> {path}",
                trace.len(),
                stats.reads,
                stats.writes,
                stats.distinct_addrs,
                stats.threads
            );
        }
        "synth" => {
            // `name` is the output path here.
            synth_cmd(name, o);
        }
        "stream" => {
            // `name` is the trace path here.
            let Some(addr) = &o.connect else {
                eprintln!("`loopcomm stream` needs --connect HOST:PORT (or unix:<path>)");
                std::process::exit(2);
            };
            let trace = load_or_salvage(name, o);
            match lc_trace::stream_trace(
                &trace,
                addr,
                &o.tenant,
                o.frame_events.max(1),
                fault_injector(o),
            ) {
                Ok(stats) => println!(
                    "streamed {} events in {} frames ({} bytes) as tenant `{}` -> {addr}",
                    stats.events, stats.frames, stats.bytes, o.tenant
                ),
                Err(e) => {
                    eprintln!("error: stream failed: {e}");
                    eprintln!(
                        "hint: whole frames already sent were analyzed; \
                         the server's /tenants/{}/stats counts the loss",
                        o.tenant
                    );
                    std::process::exit(1);
                }
            }
        }
        "analyze" => {
            // Checkpointed, resumed, or out-of-core runs go through the
            // streaming analyzer (byte-identical report, bounded RSS).
            if o.checkpoint.is_some() || o.resume.is_some() || o.mmap {
                analyze_streaming(name, o);
                return;
            }
            // `name` is the trace path here.
            let trace = load_or_salvage(name, o);
            let stats = trace.stats();
            let threads = stats.threads.max(1);
            println!(
                "trace: {} events, {} distinct addresses, {} threads",
                trace.len(),
                stats.distinct_addrs,
                stats.threads
            );
            println!(
                "trace: {} reads, {} writes, {} bytes touched",
                stats.reads, stats.writes, stats.bytes
            );
            let prof_cfg = lc_profiler::ProfilerConfig {
                threads,
                track_nested: true,
                phase_window: None,
            };
            let accum = lc_profiler::AccumConfig {
                loop_capacity: o.loop_capacity,
                ..lc_profiler::AccumConfig::default()
            };
            let par = lc_profiler::ParReplayConfig {
                jobs: o.jobs.max(1),
                coalesce: !o.no_coalesce,
                batch_events: o.batch,
                fused: o.fused,
                skip_filter: o.skip_filter,
            };
            let analysis = if o.perfect {
                lc_profiler::analyze_trace_perfect(&trace, prof_cfg, accum, &par)
            } else {
                lc_profiler::analyze_trace_asymmetric(
                    &trace,
                    SignatureConfig::paper_default(o.slots, threads),
                    prof_cfg,
                    accum,
                    &par,
                )
            };
            if let Some(e) = analysis.overflow {
                registry_full_error(e, o.loop_capacity);
            }
            if analysis.degraded {
                eprintln!("warning: degraded run (caught flush panic or watchdog timeout)");
            }
            let rep = &analysis.replay;
            println!(
                "replay[{}]: {} job(s), {} batch(es), {} event(s) analyzed \
                 ({} folded away in {} coalesced run(s))",
                if o.fused { "fused" } else { "batched" },
                rep.jobs,
                rep.batches,
                rep.replayed_events,
                rep.coalesce.events_folded,
                rep.coalesce.runs_folded
            );
            let r = &analysis.report;
            println!(
                "RAW dependencies: {}  profiler memory: {}",
                r.dependencies,
                lc_profiler::report::fmt_bytes(r.memory_bytes as u64)
            );
            println!("\ncommunication matrix:\n{}", r.global.heatmap());
            if let Some(path) = &o.metrics {
                let mut reg = lc_profiler::MetricsRegistry::new();
                reg.counter(
                    "loopcomm_accesses_total",
                    "Events the detectors processed",
                    r.accesses,
                );
                reg.counter(
                    "loopcomm_dependences_total",
                    "RAW dependences recorded",
                    r.dependencies,
                );
                analysis.export_into(&mut reg);
                write_metrics(path, &reg);
            }
            if let Some(path) = &o.report_out {
                // Canonical plain-text form: byte-identical to what a
                // `loopcomm serve` tenant reports for the same events,
                // regardless of --jobs/--batch/--no-coalesce.
                let body = lc_profiler::canonical_report(r, trace.len() as u64);
                std::fs::write(path, body).unwrap_or_else(|e| {
                    eprintln!("cannot write report to `{path}`: {e}");
                    std::process::exit(1);
                });
                println!("wrote canonical report: {path}");
            }
            if o.coherence {
                run_coherence(&trace, threads, o);
            }
        }
        "simulate" => {
            let topo = MachineTopology::dual_socket_xeon();
            if o.threads > topo.cores() {
                eprintln!("machine model has only {} cores", topo.cores());
                std::process::exit(2);
            }
            let workload = by_name(name).unwrap_or_else(|| {
                eprintln!("unknown workload `{name}`");
                std::process::exit(2);
            });
            let rec = Arc::new(lc_trace::RecordingSink::new());
            let prof = Arc::new(lc_profiler::PerfectProfiler::perfect(
                lc_profiler::ProfilerConfig {
                    threads: o.threads,
                    track_nested: false,
                    phase_window: None,
                },
            ));
            let fork = Arc::new(lc_trace::ForkSink::new(vec![
                rec.clone() as Arc<dyn lc_trace::AccessSink>,
                prof.clone(),
            ]));
            let ctx = TraceCtx::new(fork, o.threads);
            workload.run(&ctx, &RunConfig::new(o.threads, o.size, o.seed));
            let trace = rec.finish();
            let matrix = prof.global_matrix();
            let cfg = lc_cachesim::CacheConfig::small_l1();
            println!(
                "MESI simulation of `{name}` ({} events, {} threads on 2x8 cores):\n",
                trace.len(),
                o.threads
            );
            for (label, mapping) in [
                ("identity", ThreadMapping::identity(o.threads)),
                ("scrambled", ThreadMapping::scrambled(o.threads, 4242)),
                ("greedy", greedy_mapping(&matrix, &topo)),
            ] {
                let r = lc_cachesim::simulate(&trace, &mapping, &topo, cfg);
                println!(
                    "{label:<10} miss {:.1}%  local/remote transfers {}/{}  cost {}",
                    r.stats.miss_ratio() * 100.0,
                    r.stats.local_transfers,
                    r.stats.remote_transfers,
                    r.stats.transfer_cost
                );
            }
        }
        "deps" => {
            let workload = by_name(name).unwrap_or_else(|| {
                eprintln!("unknown workload `{name}`");
                std::process::exit(2);
            });
            let det = Arc::new(lc_profiler::FullDetector::new(
                o.threads,
                lc_profiler::DepConfig::all(),
            ));
            let ctx = TraceCtx::new(det.clone(), o.threads);
            workload.run(&ctx, &RunConfig::new(o.threads, o.size, o.seed));
            println!("inter-thread dependence taxonomy of `{name}` (bytes):\n");
            for kind in lc_profiler::DepKind::ALL {
                let m = det.matrix(kind);
                println!("{}: {} B total", kind.name(), m.total());
                if m.total() > 0 {
                    println!("{}", m.heatmap());
                }
            }
        }
        "hotsites" => {
            let workload = by_name(name).unwrap_or_else(|| {
                eprintln!("unknown workload `{name}`");
                std::process::exit(2);
            });
            let counter = Arc::new(lc_trace::SiteCounter::new());
            let ctx = TraceCtx::new(counter.clone(), o.threads);
            workload.run(&ctx, &RunConfig::new(o.threads, o.size, o.seed));
            println!(
                "hottest access sites of `{name}` ({} events, {} sites):\n",
                counter.total(),
                counter.distinct_sites()
            );
            for (loc, t) in counter.hottest(15) {
                println!(
                    "{:>12} B  {:>9} r {:>9} w  {loc}",
                    t.bytes, t.reads, t.writes
                );
            }
        }
        #[cfg(feature = "sched")]
        "simtest" => simtest_cmd(name, o),
        #[cfg(not(feature = "sched"))]
        "simtest" => {
            eprintln!(
                "`loopcomm simtest` requires the `sched` feature (on by default; \
                 this binary was built with --no-default-features)"
            );
            std::process::exit(2);
        }
        "phases" => {
            let (p, _ctx) = profile(name, o, Some(o.window));
            let r = p.report();
            let phases = r.phases(0.5).expect("phase tracking enabled");
            println!(
                "{} phase(s) over {} windows of {} dependencies:",
                phases.len(),
                r.phase_windows.as_ref().map(|w| w.len()).unwrap_or(0),
                o.window
            );
            for (i, ph) in phases.iter().enumerate() {
                println!(
                    "\nphase {i}: windows {}..{} ({} B)\n{}",
                    ph.start_window,
                    ph.end_window,
                    ph.matrix.total(),
                    ph.matrix.heatmap()
                );
            }
        }
        _ => usage(),
    }
}
